//! Vendored stand-in for the subset of the `rand` crate API this workspace
//! uses (`Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, `seq::SliceRandom::shuffle`/`choose`).
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal implementation instead of depending on crates.io. `StdRng` is a
//! xoshiro256++ generator seeded through SplitMix64 — not the crates.io
//! `StdRng` (ChaCha12), so seeded streams differ from upstream `rand`, but
//! determinism and statistical quality are more than adequate for the
//! learners and tests here.

/// A source of randomness: everything is derived from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a supported type (`u8`–`u64`, `usize`,
    /// `bool`, `f32`, `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value within `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw bits (the stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire); span == 0 means the
                // full 2^64 range of a u64-wide type.
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                (self.start as u64).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                (start as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (self.end - self.start) * rng.gen::<$t>()
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02);
    }
}
