//! Vendored stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small wall-clock benchmarking harness with the same call-site API:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], `criterion_group!`, and `criterion_main!`.
//! Measurements are median ns/iteration over `sample_size` samples, each
//! sample auto-calibrated to run long enough for a stable clock reading.
//! Results accumulate in [`Criterion::results`] so callers can export them
//! (e.g. `BENCH_columnar.json`).

use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest observed sample (ns/iteration).
    pub min_ns: f64,
    /// Slowest observed sample (ns/iteration).
    pub max_ns: f64,
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batching is always per-iteration here).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        // Warm-up + calibration pass.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = (self.target_sample_time.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u32::MAX as u128) as u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let result = BenchResult {
            name: name.to_owned(),
            median_ns,
            min_ns: samples_ns[0],
            max_ns: samples_ns[samples_ns.len() - 1],
        };
        println!(
            "{name:<50} time: [{} .. {} .. {}]",
            fmt_ns(result.min_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.max_ns)
        );
        self.results.push(result);
        self
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration inputs built by `setup` (setup
    /// time is excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a group of benchmark functions (both the plain and the
/// `name/config/targets` forms of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].median_ns >= 0.0);
        assert_eq!(c.results()[1].name, "batched");
    }
}
