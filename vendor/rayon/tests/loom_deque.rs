//! Model-checked races on the Chase–Lev deque (and the injector shape).
//!
//! Only built under `RUSTFLAGS="--cfg lsml_loom"` — the CI `model-check`
//! leg. Each test explores every interleaving (up to the preemption bound)
//! of a classic work-stealing race and prints the explored-interleaving
//! count. Failures print a seed replayable via `LSML_LOOM_REPLAY`.
#![cfg(lsml_loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::{model, model_expect_failure, thread};
use rayon::deque::{Deque, Steal};
use rayon::job::{Job, JobRef};
use std::collections::VecDeque;
use std::sync::Arc;

/// A job that counts how many times it has been executed (shadow atomic, so
/// double-execution is caught across any interleaving).
struct CounterJob {
    hits: AtomicUsize,
}

impl CounterJob {
    fn new() -> Self {
        CounterJob {
            hits: AtomicUsize::new(0),
        }
    }

    fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// # Safety
    ///
    /// The returned `JobRef` must be executed at most once while `self` is
    /// still alive (the `Arc`s in these tests outlive every thread).
    unsafe fn job_ref(&self) -> JobRef {
        JobRef::new(self)
    }
}

impl Job for CounterJob {
    unsafe fn execute(this: *const Self) {
        // SAFETY (caller contract): `this` is live for the whole model body.
        (*this).hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Execute a steal result; returns 1 if a job was taken.
fn run_steal(s: Steal) -> usize {
    match s {
        // SAFETY: a successful steal transfers exclusive ownership of the
        // (still-live) job to this thief.
        Steal::Success(job) => {
            unsafe { job.execute() };
            1
        }
        _ => 0,
    }
}

/// The classic size-1 race: the owner's `pop` and a thief's `steal` contend
/// for the last element via the CAS on `top`. Exactly one must win, across
/// every explored interleaving.
#[test]
fn size1_take_vs_steal() {
    let report = model(|| {
        let deque = Arc::new(Deque::new());
        let job = Arc::new(CounterJob::new());
        // SAFETY: `job` is kept alive by the Arc until after both threads join.
        deque.push(unsafe { job.job_ref() });

        let thief = {
            let deque = Arc::clone(&deque);
            thread::spawn(move || run_steal(deque.steal()))
        };
        let popped = match deque.pop() {
            // SAFETY: a successful pop transfers exclusive ownership.
            Some(j) => {
                unsafe { j.execute() };
                1
            }
            None => 0,
        };
        let stolen = thief.join().unwrap();
        assert_eq!(
            popped + stolen,
            1,
            "size-1 element taken {}x",
            popped + stolen
        );
        assert_eq!(job.hits(), 1);
    });
    println!(
        "size1_take_vs_steal: {} interleavings explored (max depth {})",
        report.iterations, report.max_depth
    );
    assert!(report.iterations > 1);
}

/// Two concurrent stealers (bounded retries) against an owner that drains
/// the rest: every job executes exactly once, no job is lost.
#[test]
fn two_concurrent_stealers() {
    let report = model(|| {
        let deque = Arc::new(Deque::new());
        let jobs: Vec<Arc<CounterJob>> = (0..2).map(|_| Arc::new(CounterJob::new())).collect();
        for j in &jobs {
            // SAFETY: the Arcs outlive every thread in this model body.
            deque.push(unsafe { j.job_ref() });
        }
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let deque = Arc::clone(&deque);
                thread::spawn(move || {
                    // Bounded retry: exhaustive scheduling would otherwise
                    // explore unbounded Retry loops.
                    for _ in 0..3 {
                        match deque.steal() {
                            Steal::Success(job) => {
                                // SAFETY: successful steal = exclusive ownership.
                                unsafe { job.execute() };
                                return 1;
                            }
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                    0
                })
            })
            .collect();
        let mut taken: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
        // Owner drains whatever the thieves gave up on.
        while let Some(j) = deque.pop() {
            // SAFETY: successful pop = exclusive ownership.
            unsafe { j.execute() };
            taken += 1;
        }
        assert_eq!(taken, 2, "expected both jobs taken exactly once");
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.hits(), 1, "job {i} executed {}x", j.hits());
        }
    });
    println!(
        "two_concurrent_stealers: {} interleavings explored (max depth {})",
        report.iterations, report.max_depth
    );
    assert!(report.iterations > 1);
}

/// The owner pops *concurrently* with two stealers over two elements. This
/// is the schedule the SeqCst fence in `pop` exists for: without it the
/// owner can read a doubly-stale `top`, conclude `t < b`, and fast-path
/// (CAS-free) take an element a second thief already stole — a double
/// execution. Weakening that fence to Acquire makes this test fail.
#[test]
fn owner_pop_races_two_stealers() {
    let report = model(|| {
        let deque = Arc::new(Deque::new());
        let jobs: Vec<Arc<CounterJob>> = (0..2).map(|_| Arc::new(CounterJob::new())).collect();
        for j in &jobs {
            // SAFETY: the Arcs outlive every thread in this model body.
            deque.push(unsafe { j.job_ref() });
        }
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let deque = Arc::clone(&deque);
                thread::spawn(move || run_steal(deque.steal()))
            })
            .collect();
        // Owner pops while the thieves run — no join barrier first.
        let mut taken = 0;
        while let Some(j) = deque.pop() {
            // SAFETY: successful pop = exclusive ownership.
            unsafe { j.execute() };
            taken += 1;
        }
        for t in thieves {
            taken += t.join().unwrap();
        }
        // Thieves never retry here, so a lost race can leave an element
        // behind — but nothing may ever be taken twice.
        while let Some(j) = deque.pop() {
            // SAFETY: successful pop = exclusive ownership.
            unsafe { j.execute() };
            taken += 1;
        }
        assert_eq!(taken, 2);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.hits(), 1, "job {i} executed {}x", j.hits());
        }
    });
    println!(
        "owner_pop_races_two_stealers: {} interleavings explored (max depth {})",
        report.iterations, report.max_depth
    );
    assert!(report.iterations > 1);
}

/// Buffer growth + retired-buffer reclamation: the owner overflows the
/// (model-tiny) initial buffer while a thief holds the stale buffer
/// pointer. The stale read must stay valid — the shadow ownership tracker
/// flags a use-after-free if growth ever frees instead of retiring — and
/// the final drop must free every buffer exactly once (leak check).
#[test]
fn growth_retires_old_buffer_for_stale_thief() {
    let report = model(|| {
        let deque = Arc::new(Deque::new());
        let jobs: Vec<Arc<CounterJob>> = (0..3).map(|_| Arc::new(CounterJob::new())).collect();
        // Fill the capacity-2 model buffer.
        for j in &jobs[..2] {
            // SAFETY: the Arcs outlive every thread in this model body.
            deque.push(unsafe { j.job_ref() });
        }
        let thief = {
            let deque = Arc::clone(&deque);
            thread::spawn(move || {
                let mut got = 0;
                for _ in 0..3 {
                    match deque.steal() {
                        Steal::Success(job) => {
                            // SAFETY: successful steal = exclusive ownership.
                            unsafe { job.execute() };
                            got += 1;
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
                got
            })
        };
        // Third push overflows capacity: grow() replaces the buffer while
        // the thief may be mid-steal on the old pointer.
        // SAFETY: as above — Arc-held job.
        deque.push(unsafe { jobs[2].job_ref() });
        let mut taken = thief.join().unwrap();
        while let Some(j) = deque.pop() {
            // SAFETY: successful pop = exclusive ownership.
            unsafe { j.execute() };
            taken += 1;
        }
        assert_eq!(taken, 3);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.hits(), 1, "job {i} executed {}x", j.hits());
        }
    });
    println!(
        "growth_retires_old_buffer: {} interleavings explored (max depth {})",
        report.iterations, report.max_depth
    );
}

/// The injector shape (a mutex-guarded FIFO, as in the registry): items
/// from one producer drain in order, across all interleavings with a
/// concurrent producer.
#[test]
fn injector_fifo_order() {
    let report = model(|| {
        let q = Arc::new(loom::sync::Mutex::new(VecDeque::new()));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.lock().unwrap().push_back(1u32);
                q.lock().unwrap().push_back(2u32);
            })
        };
        q.lock().unwrap().push_back(100u32);
        producer.join().unwrap();
        let drained: Vec<u32> = q.lock().unwrap().drain(..).collect();
        assert_eq!(drained.len(), 3);
        let pos1 = drained.iter().position(|&x| x == 1).unwrap();
        let pos2 = drained.iter().position(|&x| x == 2).unwrap();
        assert!(pos1 < pos2, "per-producer FIFO violated: {drained:?}");
    });
    println!(
        "injector_fifo_order: {} interleavings explored",
        report.iterations
    );
}

/// A panicking job on a stealing thread fails the model with the panic
/// message (the pool's panic-propagation contract at the deque layer).
#[test]
fn stolen_job_panic_is_reported() {
    struct PanicJob;
    impl Job for PanicJob {
        // SAFETY contract is vacuous: the pointer is never dereferenced.
        unsafe fn execute(_this: *const Self) {
            panic!("stolen job exploded");
        }
    }
    let msg = model_expect_failure(|| {
        let deque = Arc::new(Deque::new());
        let job = Arc::new(PanicJob);
        // SAFETY: the Arc keeps the job alive; executed at most once.
        deque.push(unsafe { JobRef::new(&*job as *const PanicJob) });
        let thief = {
            let deque = Arc::clone(&deque);
            thread::spawn(move || run_steal(deque.steal()))
        };
        let _ = deque.pop().map(|j| {
            // SAFETY: successful pop = exclusive ownership.
            unsafe { j.execute() };
        });
        let _ = thief.join();
    });
    assert!(msg.contains("stolen job exploded"), "got: {msg}");
}
