//! Type-erased jobs and completion latches.
//!
//! A [`StackJob`] lives on the stack of the thread that called
//! [`crate::join`]; worker threads only ever see a [`JobRef`] — a raw
//! pointer plus a monomorphized execute function — so the runtime moves no
//! closures and allocates nothing per task. The caller guarantees the job
//! outlives its execution by waiting on the job's [`Latch`] before
//! returning (this is the same contract real rayon uses).

use crate::sync::{AtomicBool, Ordering};
#[cfg(not(lsml_loom))]
use std::any::Any;
#[cfg(not(lsml_loom))]
use std::cell::UnsafeCell;
#[cfg(not(lsml_loom))]
use std::panic::{self, AssertUnwindSafe};

#[cfg(not(lsml_loom))]
use crate::registry::Registry;

/// Something a worker can execute exactly once through a raw pointer.
pub trait Job {
    /// Runs the job.
    ///
    /// # Safety
    ///
    /// `this` must point to a live job that has not been executed yet, and
    /// no other thread may execute it concurrently.
    unsafe fn execute(this: *const Self);
}

/// A type-erased pointer to a pending job. `Copy` so it can sit in the
/// lock-free deques as two machine words.
#[derive(Copy, Clone)]
pub struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef crosses threads by design; the `Job::execute` contract
// (execute exactly once, before the owner's stack frame dies) is upheld by
// `join`, which waits on the latch before returning.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erases a job pointer.
    ///
    /// # Safety
    ///
    /// `data` must stay valid until the job has been executed.
    pub unsafe fn new<T: Job>(data: *const T) -> JobRef {
        unsafe fn execute_erased<T: Job>(ptr: *const ()) {
            T::execute(ptr as *const T)
        }
        JobRef {
            data: data as *const (),
            execute: execute_erased::<T>,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    ///
    /// See [`Job::execute`]; additionally every `JobRef` must be executed
    /// at most once across all of its copies.
    pub unsafe fn execute(self) {
        (self.execute)(self.data)
    }

    /// The two words a deque slot stores.
    pub fn to_words(self) -> (usize, usize) {
        (self.data as usize, self.execute as usize)
    }

    /// Rebuilds a `JobRef` from deque-slot words.
    ///
    /// # Safety
    ///
    /// The words must come from [`JobRef::to_words`] on a still-pending job.
    pub unsafe fn from_words(data: usize, execute: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            execute: std::mem::transmute::<usize, unsafe fn(*const ())>(execute),
        }
    }
}

/// A one-shot completion flag.
///
/// Deliberately *just* an atomic: the instant `set` stores the flag, the
/// `join` caller polling [`Latch::probe`] may take the result and destroy
/// the stack frame holding this latch, so `set` must never touch `self`
/// afterwards — in particular it cannot own a Mutex/Condvar for waiter
/// wakeups. Parked waiters sleep on the *registry's* condvar instead
/// (which outlives every job), notified by [`Job::execute`] after the
/// flag store.
///
/// `set` happens-after the result write in [`Job::execute`] (release
/// store), so a waiter that observes `probe()` (acquire load) may read the
/// result without further synchronization.
pub struct Latch {
    set: AtomicBool,
}

impl Latch {
    pub fn new() -> Latch {
        Latch {
            set: AtomicBool::new(false),
        }
    }

    /// Whether the latch has been set.
    #[inline]
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Sets the latch. After this store returns, `self` may already be
    /// freed by the waiter — the caller must not dereference the job again.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// Outcome of a job: the closure's value or its panic payload.
#[cfg(not(lsml_loom))]
pub(crate) enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A `join` arm awaiting execution, allocated on the caller's stack. Holds
/// a reference to its registry so the executor can wake parked waiters
/// through registry-owned state (which outlives the job) after the latch
/// flips.
#[cfg(not(lsml_loom))]
pub(crate) struct StackJob<'r, F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    pub(crate) latch: Latch,
    registry: &'r Registry,
}

// SAFETY: the job is handed to at most one executor at a time (enforced by
// the deque/injector: a JobRef is popped or stolen exactly once), so the
// UnsafeCell accesses never overlap; the latch orders the result hand-off.
#[cfg(not(lsml_loom))]
unsafe impl<F: Send, R: Send> Sync for StackJob<'_, F, R> {}

#[cfg(not(lsml_loom))]
impl<'r, F, R> StackJob<'r, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, registry: &'r Registry) -> StackJob<'r, F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            latch: Latch::new(),
            registry,
        }
    }

    /// Erases this job.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive until the latch is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Extracts the result after the latch has been observed set.
    ///
    /// # Safety
    ///
    /// Must only be called once, after `latch.probe()` returned true.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        std::ptr::replace(self.result.get(), JobResult::Pending)
    }
}

#[cfg(not(lsml_loom))]
impl<F, R> Job for StackJob<'_, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        // SAFETY (trait contract): `this` points at a live StackJob, executed
        // at most once; the owner keeps the stack frame alive until the
        // latch below is set.
        let this = &*this;
        let func = (*this.func.get())
            .take()
            .expect("StackJob executed more than once");
        // Copy the registry reference out *before* setting the latch: the
        // instant the latch flips, the waiter may free the job's stack
        // frame, so nothing may touch `this` afterwards.
        let registry = this.registry;
        // Capture the panic instead of unwinding through the worker's call
        // stack: the payload is re-raised on the join caller by
        // `resume_unwind`, preserving real-rayon semantics (and the original
        // assertion message).
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = result;
        this.latch.set();
        // `this` is dead to us now; wake waiters via registry-owned state.
        registry.notify_sleepers();
    }
}
