//! The synchronization facade for the pool.
//!
//! # Contract
//!
//! Every atomic and lock in `vendor/rayon/src` is imported from this module
//! (never directly from `std::sync`) — a rule enforced by the repo's source
//! lint (`cargo run -p lsml-bench --bin lint`). The facade compiles to the
//! real `std::sync` primitives in normal builds and to the model-checked
//! shadow primitives of the vendored `loom` crate under
//! `RUSTFLAGS="--cfg lsml_loom"` (the CI `model-check` leg), so the exact
//! code that ships is the code the model checker explores.
//!
//! `Ordering` is always the real `std::sync::atomic::Ordering`, so call
//! sites are byte-identical under both configurations. `Condvar`/`OnceLock`
//! are not modeled; the registry (which parks on a condvar) is compiled out
//! under `lsml_loom` and only the deque/job layer is model-checked.
//!
//! The `trace_*` functions report raw-pointer ownership transitions to the
//! model's shadow allocation tracker (use-after-free / double-free / leak
//! detection). In normal builds they are empty `#[inline(always)]` stubs the
//! optimizer deletes.

pub(crate) use loom::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize, Ordering,
};
pub(crate) use loom::sync::Mutex;

#[cfg(not(lsml_loom))]
pub(crate) use loom::sync::{Condvar, OnceLock};

/// Report a heap allocation handed to a raw pointer (e.g. `Box::into_raw`).
#[inline(always)]
pub(crate) fn trace_alloc(addr: usize) {
    #[cfg(lsml_loom)]
    loom::alloc::trace_alloc(addr);
    #[cfg(not(lsml_loom))]
    let _ = addr;
}

/// Report that a raw-pointer allocation is being freed.
#[inline(always)]
pub(crate) fn trace_free(addr: usize) {
    #[cfg(lsml_loom)]
    loom::alloc::trace_free(addr);
    #[cfg(not(lsml_loom))]
    let _ = addr;
}

/// Report a dereference of a raw-pointer allocation.
#[inline(always)]
pub(crate) fn trace_access(addr: usize) {
    #[cfg(lsml_loom)]
    loom::alloc::trace_access(addr);
    #[cfg(not(lsml_loom))]
    let _ = addr;
}
