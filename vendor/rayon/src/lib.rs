//! Vendored stand-in for the subset of `rayon` this workspace uses, backed
//! by a real work-stealing runtime.
//!
//! The build environment has no registry access, so this crate provides the
//! `rayon` API surface the workspace needs — `par_iter()` /
//! `into_par_iter()`, `map`, `enumerate`, `collect`, `for_each`, and
//! [`join`] — on top of a persistent worker pool instead of ad-hoc scoped
//! threads.
//!
//! # The pool
//!
//! A process-wide pool is spawned lazily on first use and lives for the
//! rest of the process. Its size is **`LSML_NUM_THREADS`** when that
//! environment variable is set to a positive integer, otherwise
//! `available_parallelism()`. The variable is read once, when the pool
//! starts; `LSML_NUM_THREADS=1` disables the pool entirely and every
//! operation runs strictly inline on the caller — a fully deterministic
//! schedule, which CI uses to separate logic bugs from scheduling bugs.
//!
//! # Stealing discipline
//!
//! Each worker owns a Chase–Lev deque (see [`mod@deque`] for the memory-model
//! details). Work is pushed and popped at the *bottom* by the owner (LIFO:
//! nested tasks run depth-first and cache-hot) and stolen from the *top* by
//! other workers (FIFO: thieves take the oldest, typically largest, pending
//! task — exactly the splits that amortize a steal). An idle worker scans
//! in the order *own deque → shared injector → steal round-robin from
//! siblings*, spins briefly when everything is dry, then parks on a condvar
//! that pushes notify (a 1 ms park timeout bounds the only lost-wakeup
//! race). Threads from outside the pool hand work to the *injector* — a
//! shared FIFO the workers poll between deque scans — and help execute pool
//! work while they wait for their own results, so a blocked external caller
//! never idles the machine.
//!
//! # Nested `join`
//!
//! [`join`] is the only spawning primitive, and it composes: `join(a, b)`
//! pushes `b` onto the calling worker's own deque, runs `a` inline, then
//! *pops* — when nobody stole `b` it executes inline straight off the
//! deque (no synchronization beyond the pop), and when it was stolen the
//! caller executes other pending jobs while it waits for the thief's
//! latch. Because waiting threads always prefer draining work over
//! blocking, arbitrarily deep nests (portfolio → benchmark → learner
//! internals) use the same fixed set of pool threads: parallelism composes
//! without oversubscription, and a `join` issued from a non-pool thread
//! simply injects its second closure and helps out. (Chained stolen
//! executions pile frames onto the waiter's stack, so each thread caps
//! them and parks past the cap; workers get 16 MiB stacks on top.) Worker panics are
//! caught, carried back, and re-raised on the `join` caller via
//! [`std::panic::resume_unwind`], preserving the original payload (real
//! `rayon` semantics — assertion messages from parallel tests survive).
//! When the first closure panics, `join` still waits for the second to
//! finish before unwinding, so no worker is left running a job whose stack
//! frame died.
//!
//! Parallel-iterator `collect`s are driven by recursive binary splitting
//! over [`join`] into a preallocated output buffer, so they inherit the
//! same nesting and panic behavior and preserve item order.
//!
//! # Adaptive granularity
//!
//! The drive's split grain is not static: it starts coarse (four chunks
//! per worker, derived from item count × worker count) so an uncontended
//! `collect` pays almost no deque traffic, and *re-splits under observed
//! steal pressure* — a chunk that executes on a different worker than the
//! one that split it was necessarily stolen, which proves a thief was
//! idle, so it halves its grain before deciding to run serially. Imbalanced
//! schedules therefore break into progressively finer chunks exactly where
//! the imbalance is, while uniform ones stay coarse. (A chunk that has
//! already begun serial execution can never be re-split, which is why the
//! starting grain stays a fraction of a worker's fair share: pathological
//! per-item skew inside one chunk is bounded by that fraction.)

// Under `--cfg lsml_loom` (the model-check build) the deque/job layer is
// public so `tests/loom_deque.rs` can drive it directly, and the registry —
// which parks on an unmodeled condvar — is compiled out. The public API
// below stays available with strictly sequential fallbacks (equivalent to
// `LSML_NUM_THREADS=1`), so downstream crates compile unchanged in the
// model-check leg. See `sync.rs` for the facade contract.
#[cfg(lsml_loom)]
pub mod deque;
#[cfg(not(lsml_loom))]
mod deque;
#[cfg(lsml_loom)]
pub mod job;
#[cfg(not(lsml_loom))]
mod job;
#[cfg(not(lsml_loom))]
mod registry;
pub(crate) mod sync;

/// Number of worker threads the pool runs (`LSML_NUM_THREADS` or
/// `available_parallelism`; see the crate docs). Starts the pool if it is
/// not yet running.
pub fn current_num_threads() -> usize {
    #[cfg(not(lsml_loom))]
    {
        registry::Registry::global().num_threads()
    }
    #[cfg(lsml_loom)]
    {
        1
    }
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// The second closure is published to the work-stealing pool while the
/// first runs on the caller; if no other worker steals it, the caller
/// executes it inline. Panics in either closure propagate to the caller
/// with their original payload (after both closures have come to rest).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    #[cfg(not(lsml_loom))]
    {
        registry::Registry::global().join(a, b)
    }
    #[cfg(lsml_loom)]
    {
        (a(), b())
    }
}

/// Evaluates every index of `source`, in order. The pool path fans out via
/// the adaptive splitter; the model-check build runs strictly inline.
fn drive<S: ParallelSource>(source: S) -> Vec<S::Item> {
    #[cfg(not(lsml_loom))]
    {
        registry::drive(source)
    }
    #[cfg(lsml_loom)]
    {
        (0..source.len()).map(|i| source.eval(i)).collect()
    }
}

/// An indexable source of parallel work: adapters compose by wrapping the
/// evaluation of one index.
pub trait ParallelSource: Sync + Sized {
    /// The per-index item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates item `i` (called from worker threads).
    fn eval(&self, i: usize) -> Self::Item;
}

/// Adapters and drivers available on every parallel iterator.
pub trait ParallelIterator: ParallelSource {
    /// Maps each item through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Materializes all items in order, fanning evaluation out over the
    /// work-stealing pool.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(drive(self))
    }

    /// Runs `f` on every item (parallel, no result).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        drive(Map {
            base: self,
            f: |x| f(x),
        });
    }
}

impl<S: ParallelSource> ParallelIterator for S {}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from items already in order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync + Send> ParallelSource for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn eval(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelSource for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn eval(&self, i: usize) -> usize {
        self.start + i
    }
}

/// The adapter returned by [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: ParallelSource, U: Send, F: Fn(S::Item) -> U + Sync> ParallelSource for Map<S, F> {
    type Item = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval(&self, i: usize) -> U {
        (self.f)(self.base.eval(i))
    }
}

/// The adapter returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<S> {
    base: S,
}

impl<S: ParallelSource> ParallelSource for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval(&self, i: usize) -> (usize, S::Item) {
        (i, self.base.eval(i))
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing iterator type.
    type Iter: ParallelIterator;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.into_par_iter()` on owned values (ranges here).
pub trait IntoParallelIterator {
    /// The produced iterator type.
    type Iter: ParallelIterator;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSource,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn enumerate_matches_index() {
        let items = vec!["a", "b", "c"];
        let tagged: Vec<(usize, &&str)> = items.par_iter().enumerate().collect();
        assert_eq!(tagged[2].0, 2);
        assert_eq!(*tagged[0].1, "a");
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_propagates_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            super::join(|| 7, || panic!("kept message"));
        })
        .expect_err("worker panic must surface");
        let text = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned());
        assert_eq!(text.as_deref(), Some("kept message"));
    }

    #[test]
    fn nested_joins_through_collect() {
        // collect drives through join; each item issues its own join, so
        // this nests portfolio-style without oversubscribing.
        let sums: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let (a, b) = super::join(
                    || (0..=i as u64).sum::<u64>(),
                    || (0..=i as u64).map(|x| x * 2).sum::<u64>(),
                );
                a + b
            })
            .collect();
        for (i, &s) in sums.iter().enumerate() {
            let tri = (i as u64) * (i as u64 + 1) / 2;
            assert_eq!(s, 3 * tri);
        }
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn skewed_workload_collects_every_item_once() {
        // Severely imbalanced per-item cost, both front-loaded (lands in
        // the first chunk the caller starts serially) and end-loaded
        // (lands in ranges that get stolen and re-split): the adaptive
        // splitter must keep the pool busy — and still write every index
        // exactly once, in order.
        let cost = |i: usize| -> u64 {
            if (96..4000).contains(&i) {
                10
            } else {
                20_000
            }
        };
        let out: Vec<u64> = (0..4096usize)
            .into_par_iter()
            .map(|i| (0..cost(i)).fold(i as u64, |acc, x| acc.wrapping_add(x * x)))
            .collect();
        assert_eq!(out.len(), 4096);
        for (i, &v) in out.iter().enumerate() {
            let expect = (0..cost(i)).fold(i as u64, |acc, x| acc.wrapping_add(x * x));
            assert_eq!(v, expect, "item {i}");
        }
    }
}
