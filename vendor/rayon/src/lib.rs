//! Vendored stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides an
//! order-preserving parallel map over slices and ranges on top of
//! `std::thread::scope`: `par_iter()` / `into_par_iter()`, `map`, `collect`,
//! `for_each`, and [`join`]. There is no work-stealing pool — each `collect`
//! fans work out over `available_parallelism` scoped threads pulling
//! fixed-size chunks off a shared atomic counter, which is plenty for the
//! coarse-grained fan-outs here (portfolio candidates, benchmark suites).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// An indexable source of parallel work: adapters compose by wrapping the
/// evaluation of one index.
pub trait ParallelSource: Sync + Sized {
    /// The per-index item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates item `i` (called from worker threads).
    fn eval(&self, i: usize) -> Self::Item;
}

/// Adapters and drivers available on every parallel iterator.
pub trait ParallelIterator: ParallelSource {
    /// Maps each item through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Materializes all items in order, fanning evaluation out over threads.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(drive(self))
    }

    /// Runs `f` on every item (parallel, no result).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        drive(Map {
            base: self,
            f: |x| f(x),
        });
    }
}

impl<S: ParallelSource> ParallelIterator for S {}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from items already in order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Evaluates every index of `src` across worker threads, preserving order.
fn drive<S: ParallelSource>(src: S) -> Vec<S::Item> {
    let n = src.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return (0..n).map(|i| src.eval(i)).collect();
    }
    // Chunked dynamic scheduling: small enough chunks to balance, large
    // enough to keep the atomic counter off the hot path.
    let chunk = (n / (workers * 4)).max(1);
    let next = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<S::Item>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let items: Vec<S::Item> = (start..end).map(|i| src.eval(i)).collect();
                parts
                    .lock()
                    .expect("rayon worker poisoned")
                    .push((start, items));
            });
        }
    });
    let mut parts = parts.into_inner().expect("rayon worker poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, items) in parts {
        out.extend(items);
    }
    out
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync + Send> ParallelSource for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn eval(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelSource for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn eval(&self, i: usize) -> usize {
        self.start + i
    }
}

/// The adapter returned by [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: ParallelSource, U: Send, F: Fn(S::Item) -> U + Sync> ParallelSource for Map<S, F> {
    type Item = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval(&self, i: usize) -> U {
        (self.f)(self.base.eval(i))
    }
}

/// The adapter returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<S> {
    base: S,
}

impl<S: ParallelSource> ParallelSource for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval(&self, i: usize) -> (usize, S::Item) {
        (i, self.base.eval(i))
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing iterator type.
    type Iter: ParallelIterator;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.into_par_iter()` on owned values (ranges here).
pub trait IntoParallelIterator {
    /// The produced iterator type.
    type Iter: ParallelIterator;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSource,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn enumerate_matches_index() {
        let items = vec!["a", "b", "c"];
        let tagged: Vec<(usize, &&str)> = items.par_iter().enumerate().collect();
        assert_eq!(tagged[2].0, 2);
        assert_eq!(*tagged[0].1, "a");
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
