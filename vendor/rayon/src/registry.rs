//! The persistent worker pool: registry, stealing discipline, `join`, and
//! the parallel-iterator drive.
//!
//! See the crate docs for the user-facing contract. Internally:
//!
//! * [`Registry::global`] lazily spawns `LSML_NUM_THREADS` (or
//!   `available_parallelism`) detached workers, each owning one Chase–Lev
//!   [`Deque`]; a mutex-protected FIFO *injector* receives jobs from
//!   threads outside the pool.
//! * A worker looks for work in the order: own deque (LIFO) → injector →
//!   steal from siblings (FIFO, round-robin starting after itself). Idle
//!   workers spin briefly, then park on a condvar with a 1 ms timeout —
//!   pushes notify the condvar when sleepers are registered, and the
//!   timeout bounds the latency of the one benign lost-wakeup race.
//! * `join(a, b)` on a worker pushes `b`, runs `a` inline, then *pops* —
//!   if `b` was not stolen it executes inline right off the deque (no
//!   synchronization beyond the pop), otherwise the worker keeps executing
//!   other jobs while it waits for the thief's latch. Callers outside the
//!   pool inject `b` and help drain pool work while they wait.

use crate::sync::{AtomicUsize, Condvar, Mutex, OnceLock, Ordering};
use std::cell::Cell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::deque::{Deque, Steal};
use crate::job::{JobRef, JobResult, Latch, StackJob};
use crate::ParallelSource;

/// Base park interval for threads re-checking for work on their own.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);
/// Park-timeout doubling cap for continuously idle workers: 1 ms << 6 =
/// 64 ms, dropping steady-state idle wakeups from 1 kHz to ~16 Hz per
/// worker while keeping worst-case work-discovery latency bounded.
const MAX_PARK_BACKOFF: u32 = 6;
/// Yield-spin iterations before an idle worker parks.
const SPINS_BEFORE_PARK: usize = 8;
/// Worker stack size. Stolen jobs execute on top of the waiting frame, so
/// worker stacks run deeper than the logical join nesting; make them roomy.
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;
/// Cap on *chained* stolen-job executions per thread: a thread waiting in
/// `join` may execute a stolen job, whose own waits may steal again, and so
/// on — each link adds the full frame chain of a task to the host stack.
/// Popping the thread's own deque stays uncapped (bounded by its own join
/// nesting); past this depth a waiter parks instead of stealing, and the
/// depth-0 worker loops keep the system draining.
const MAX_STEAL_DEPTH: usize = 32;

/// Reads the configured pool size: `LSML_NUM_THREADS` if set to a positive
/// integer, otherwise `available_parallelism`.
fn configured_num_threads() -> usize {
    if let Ok(value) = std::env::var("LSML_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker pool. One global instance serves the whole process (tests may
/// build private instances to exercise specific pool sizes).
pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Lock-free length mirror of `injector`, for cheap emptiness probes.
    injected: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    sleepers: AtomicUsize,
    num_threads: usize,
}

thread_local! {
    /// (registry address, worker index) when the current thread is a pool
    /// worker. The address disambiguates private test registries from the
    /// global one.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// How many stolen-job executions are live on this thread's stack.
    static STEAL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Executes a stolen job with the chained-steal accounting that
/// [`MAX_STEAL_DEPTH`] checks against.
///
/// # Safety
///
/// Same contract as [`JobRef::execute`].
unsafe fn execute_stolen(job: JobRef) {
    STEAL_DEPTH.with(|d| d.set(d.get() + 1));
    job.execute();
    STEAL_DEPTH.with(|d| d.set(d.get() - 1));
}

/// Whether this thread may grow its stack with another stolen execution.
fn may_steal_deeper() -> bool {
    STEAL_DEPTH.with(|d| d.get()) < MAX_STEAL_DEPTH
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

impl Registry {
    /// The process-wide pool, spawning its workers on first use.
    pub(crate) fn global() -> &'static Arc<Registry> {
        GLOBAL.get_or_init(|| Registry::new(configured_num_threads()))
    }

    /// Builds a pool with `num_threads` workers. With one thread no workers
    /// are spawned at all: `join` and `drive` run strictly inline, which
    /// gives the `LSML_NUM_THREADS=1` CI leg fully deterministic scheduling.
    ///
    /// Workers run until process exit — there is no shutdown path, so each
    /// pool permanently pins its threads (and their deques). That is the
    /// intended contract for the one process-wide pool this crate serves;
    /// tests build small private pools and accept the leak. Grow a real
    /// teardown before using this for anything per-request.
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry {
            deques: (0..num_threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injected: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            num_threads,
        });
        if num_threads > 1 {
            for index in 0..num_threads {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("lsml-worker-{index}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn(move || worker_main(&registry, index))
                    .expect("failed to spawn pool worker");
            }
        }
        registry
    }

    #[inline]
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The current thread's worker index in *this* registry, if any.
    fn current_worker(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((registry, index)) if registry == self as *const Registry as usize => Some(index),
            _ => None,
        })
    }

    /// Queues a job from outside the pool.
    fn inject(&self, job: JobRef) {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.notify_sleepers();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.injected.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let job = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        if job.is_some() {
            self.injected.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    /// Finds work for `thief` (a worker index, or `usize::MAX` for an
    /// external helper): injector first, then steal round-robin from the
    /// other deques, retrying while any steal races.
    fn find_work(&self, thief: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_injected() {
            return Some(job);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        let start = if thief == usize::MAX { 0 } else { thief + 1 };
        loop {
            let mut contended = false;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == thief {
                    continue;
                }
                match self.deques[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Racy check used before parking; a stale answer is corrected by the
    /// park timeout.
    fn has_pending_work(&self) -> bool {
        self.injected.load(Ordering::SeqCst) > 0 || self.deques.iter().any(|d| !d.looks_empty())
    }

    /// Wakes parked threads after new work was made visible or a job
    /// completed. Job executors call this *after* the job's latch flipped —
    /// it touches registry-owned state only, because the job's stack frame
    /// may already be gone.
    pub(crate) fn notify_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleep_cond.notify_all();
        }
    }

    /// Parks a thread waiting on `latch` until a job-completion (or new
    /// work) notification arrives or the base timeout elapses; callers
    /// re-check the latch in a loop. Registering in `sleepers` under the
    /// lock makes the executor's post-set notify reliable; the timeout
    /// bounds the one remaining registration race.
    fn wait_latch(&self, latch: &Latch) {
        let guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        if latch.probe() {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let _ = self.sleep_cond.wait_timeout(guard, PARK_TIMEOUT);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks the calling worker until notified or a backed-off timeout
    /// elapses (`backoff` doubles the base interval, capped).
    fn park(&self, backoff: u32) {
        let guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        // Register before the pending-work re-check so a pusher that sees
        // an empty `sleepers` either preceded our check (we find its work)
        // or will see our registration and notify.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if !self.has_pending_work() {
            let timeout = PARK_TIMEOUT.saturating_mul(1 << backoff.min(MAX_PARK_BACKOFF));
            let _ = self.sleep_cond.wait_timeout(guard, timeout);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// `join` against this registry. Public API entry is [`crate::join`].
    pub(crate) fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.num_threads <= 1 {
            // Inline execution must keep the pooled path's panic contract
            // (the second closure always runs to completion; the first
            // closure's payload wins), or the deterministic
            // LSML_NUM_THREADS=1 CI leg would diverge from the pooled legs
            // on panic paths.
            let ra = panic::catch_unwind(AssertUnwindSafe(a));
            let rb = panic::catch_unwind(AssertUnwindSafe(b));
            let ra = match ra {
                Ok(value) => value,
                Err(payload) => panic::resume_unwind(payload),
            };
            return match rb {
                Ok(value) => (ra, value),
                Err(payload) => panic::resume_unwind(payload),
            };
        }
        let job_b = StackJob::new(b, self);
        // SAFETY: we wait on `job_b.latch` below before returning, so the
        // stack job outlives every JobRef pointing at it.
        let job_ref = unsafe { job_b.as_job_ref() };
        let ra = match self.current_worker() {
            Some(index) => {
                self.deques[index].push(job_ref);
                self.notify_sleepers();
                let ra = panic::catch_unwind(AssertUnwindSafe(a));
                // Drain our own deque while waiting: the LIFO pop returns
                // `b` itself when nobody stole it (inline execution), or
                // jobs pushed by enclosing joins — executing those here is
                // what lets nested parallelism compose without extra
                // threads. Only when our deque is dry do we steal.
                while !job_b.latch.probe() {
                    if let Some(job) = self.deques[index].pop() {
                        // SAFETY: popped jobs are pending and exclusively
                        // ours; own-deque work adds at most our own join
                        // nesting to the stack.
                        unsafe { job.execute() };
                    } else if may_steal_deeper() {
                        if let Some(job) = self.find_work(index) {
                            // SAFETY: stolen jobs are pending and exclusively
                            // ours once the steal CAS succeeds.
                            unsafe { execute_stolen(job) };
                        } else {
                            self.wait_latch(&job_b.latch);
                        }
                    } else {
                        self.wait_latch(&job_b.latch);
                    }
                }
                ra
            }
            None => {
                // A thread outside the pool: hand `b` to the workers and
                // help drain the pool while it is in flight.
                self.inject(job_ref);
                let ra = panic::catch_unwind(AssertUnwindSafe(a));
                while !job_b.latch.probe() {
                    if may_steal_deeper() {
                        if let Some(job) = self.find_work(usize::MAX) {
                            // SAFETY: as above.
                            unsafe { execute_stolen(job) };
                        } else {
                            self.wait_latch(&job_b.latch);
                        }
                    } else {
                        self.wait_latch(&job_b.latch);
                    }
                }
                ra
            }
        };
        // SAFETY: the latch is set; the result is published.
        let rb = unsafe { job_b.take_result() };
        // `b` has fully completed, so unwinding `a`'s panic can no longer
        // leave a worker reading our dead stack frame.
        let ra = match ra {
            Ok(value) => value,
            Err(payload) => panic::resume_unwind(payload),
        };
        match rb {
            JobResult::Ok(value) => (ra, value),
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("latch set but join result still pending"),
        }
    }
}

/// The worker main loop: run own work, else injected work, else steal, else
/// spin briefly and park.
fn worker_main(registry: &Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(registry) as usize, index))));
    let mut idle = 0usize;
    loop {
        match registry.deques[index]
            .pop()
            .or_else(|| registry.find_work(index))
        {
            Some(job) => {
                idle = 0;
                // SAFETY: popped/stolen jobs are pending and exclusively ours.
                unsafe { job.execute() };
            }
            None => {
                idle += 1;
                if idle <= SPINS_BEFORE_PARK {
                    std::thread::yield_now();
                } else {
                    registry.park((idle - SPINS_BEFORE_PARK - 1) as u32);
                }
            }
        }
    }
}

/// A raw output pointer that may cross threads: every parallel task writes
/// a disjoint index range, so the aliasing is safe by construction.
struct OutPtr<T>(*mut T);

impl<T> Clone for OutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for OutPtr<T> {}
// SAFETY: see the type docs — every task writes a disjoint index range, and
// `drive` only reads the buffer after all tasks complete.
unsafe impl<T: Send> Send for OutPtr<T> {}
// SAFETY: as above; shared access never writes overlapping indices.
unsafe impl<T: Send> Sync for OutPtr<T> {}

/// The adaptive splitting state threaded through `split_eval`, rayon-style.
///
/// The starting grain is coarse — `items / workers` — so an uncontended
/// drive produces one task per worker and keeps deque traffic off the
/// per-item path. *Observed steal pressure* refines it: a task discovers it
/// was stolen when it executes on a different worker than the one that
/// split it (`owner` mismatch), which proves some thief was idle; it then
/// halves its grain so both halves of the migrated range can be re-stolen,
/// converging toward fine-grained chunks exactly where the schedule is
/// imbalanced and staying coarse everywhere else.
#[derive(Copy, Clone)]
struct Splitter {
    /// Ranges at most this long evaluate serially.
    grain: usize,
    /// Worker index (or `None` for an external thread) that created this
    /// splitter; a mismatch on execution means the task was stolen.
    owner: Option<usize>,
}

impl Splitter {
    /// Re-derives the grain if this task migrated since it was split off.
    /// A drive issued from outside the pool starts with no owner — its
    /// first placement on a worker is mandatory injection, not theft, so
    /// it only claims ownership; halving is reserved for genuine
    /// worker-to-worker migration.
    fn adapt(&mut self, registry: &Registry) {
        let here = registry.current_worker();
        if here != self.owner {
            if self.owner.is_some() {
                self.grain = (self.grain / 2).max(1);
            }
            self.owner = here;
        }
    }
}

/// Evaluates every index of `src` across the pool via recursive binary
/// splitting over `join` with steal-adaptive granularity (see [`Splitter`]),
/// preserving order.
///
/// If a closure panics, the panic propagates to the caller once in-flight
/// tasks have completed; items already produced are leaked (not dropped),
/// which is safe but loses their heap storage — acceptable for this
/// vendored stand-in.
pub(crate) fn drive<S: ParallelSource>(src: S) -> Vec<S::Item> {
    let n = src.len();
    if n == 0 {
        return Vec::new();
    }
    let registry = Registry::global();
    if registry.num_threads() <= 1 {
        return (0..n).map(|i| src.eval(i)).collect();
    }
    let mut out: Vec<MaybeUninit<S::Item>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; length tracks capacity.
    unsafe { out.set_len(n) };
    let ptr = OutPtr(out.as_mut_ptr());
    // Four chunks per worker uncontended: coarse enough to keep deque
    // traffic off the per-item path, fine enough that a chunk which starts
    // executing serially (and therefore can never be re-split, however
    // skewed its items turn out to be) holds at most 1/4 of a worker's
    // fair share. Steal pressure refines from there.
    let splitter = Splitter {
        grain: (n / (registry.num_threads() * 4)).max(1),
        owner: registry.current_worker(),
    };
    split_eval(registry, &src, 0, n, splitter, ptr);
    // SAFETY: split_eval wrote every index exactly once.
    let mut out = std::mem::ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut S::Item, n, out.capacity()) }
}

fn split_eval<S: ParallelSource>(
    registry: &Registry,
    src: &S,
    lo: usize,
    hi: usize,
    mut splitter: Splitter,
    out: OutPtr<MaybeUninit<S::Item>>,
) {
    splitter.adapt(registry);
    if hi - lo <= splitter.grain {
        for i in lo..hi {
            // SAFETY: disjoint indices, each written exactly once.
            unsafe { (*out.0.add(i)).write(src.eval(i)) };
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    registry.join(
        || split_eval(registry, src, lo, mid, splitter, out),
        || split_eval(registry, src, mid, hi, splitter, out),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom::sync::atomic::AtomicU64;

    /// Recursive parallel sum over a private registry, to exercise pushes,
    /// inline pops, and steals at a controlled pool size regardless of the
    /// host's core count.
    fn par_sum(registry: &Registry, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = registry.join(|| par_sum(registry, lo, mid), || par_sum(registry, mid, hi));
        a + b
    }

    #[test]
    fn private_pool_joins_nest() {
        for threads in [1, 2, 4] {
            let registry = Registry::new(threads);
            let total = par_sum(&registry, 0, 100_000);
            assert_eq!(total, 100_000 * 99_999 / 2, "threads = {threads}");
        }
    }

    #[test]
    fn external_thread_helps_instead_of_deadlocking() {
        // Every join below is issued from this (non-worker) thread against
        // a 2-worker pool; the caller must help drain the injector.
        let registry = Registry::new(2);
        for round in 0..50 {
            let (a, b) = registry.join(|| round * 2, || round * 2 + 1);
            assert_eq!((a, b), (round * 2, round * 2 + 1));
        }
    }

    #[test]
    fn deep_nesting_completes() {
        let registry = Registry::new(3);
        fn depth(registry: &Registry, d: usize) -> usize {
            if d == 0 {
                return 0;
            }
            let (a, b) = registry.join(|| depth(registry, d - 1), || depth(registry, d - 1));
            1 + a.max(b)
        }
        assert_eq!(depth(&registry, 10), 10);
    }

    #[test]
    fn side_effects_run_exactly_once() {
        let registry = Registry::new(4);
        let counter = AtomicU64::new(0);
        fn spray(registry: &Registry, counter: &AtomicU64, n: u64) {
            if n == 0 {
                counter.fetch_add(1, Ordering::Relaxed);
                return;
            }
            registry.join(
                || spray(registry, counter, n - 1),
                || spray(registry, counter, n - 1),
            );
        }
        spray(&registry, &counter, 12);
        assert_eq!(counter.load(Ordering::Relaxed), 1 << 12);
    }

    #[test]
    fn worker_panic_payload_survives() {
        let registry = Registry::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            registry.join(|| 1, || panic!("original assertion text"));
        }))
        .expect_err("join should propagate the worker panic");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("original assertion text"),
            "payload lost: {message:?}"
        );
    }

    #[test]
    fn first_closure_panic_waits_for_second() {
        // `a` panics while `b` is potentially stolen; join must not unwind
        // until `b` completed, and must then re-raise `a`'s payload.
        let registry = Registry::new(2);
        let b_ran = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            registry.join(
                || panic!("a exploded"),
                || {
                    std::thread::sleep(Duration::from_millis(5));
                    b_ran.fetch_add(1, Ordering::SeqCst);
                },
            );
        }))
        .expect_err("a's panic must propagate");
        assert_eq!(b_ran.load(Ordering::SeqCst), 1, "b must have completed");
        assert!(caught
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("a exploded")));
    }

    #[test]
    fn inline_pool_keeps_pooled_panic_contract() {
        // The strictly-inline single-thread path must behave like the
        // pooled path on panics: b still runs to completion, a's payload
        // wins.
        let registry = Registry::new(1);
        let b_ran = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            registry.join(
                || panic!("inline a"),
                || {
                    b_ran.fetch_add(1, Ordering::SeqCst);
                },
            );
        }))
        .expect_err("a's panic must propagate");
        assert_eq!(b_ran.load(Ordering::SeqCst), 1, "b must have completed");
        assert!(caught
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("inline a")));
    }

    #[test]
    fn both_closures_panicking_reports_first() {
        let registry = Registry::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            registry.join(|| panic!("first"), || panic!("second"));
        }))
        .expect_err("panic must propagate");
        assert!(caught
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("first")));
    }

    #[test]
    fn configured_thread_count_prefers_env_parsing() {
        // Exercise the parser only: mutating the process environment would
        // race other tests, and the global pool latches its size anyway.
        assert!(configured_num_threads() >= 1);
    }
}
