//! A Chase–Lev work-stealing deque specialized to [`JobRef`].
//!
//! One deque per worker: the owning worker pushes and pops at the *bottom*
//! (LIFO, so nested `join`s run cache-hot and depth-first), thieves steal
//! from the *top* (FIFO, so they take the oldest — typically largest —
//! pending task). The implementation follows Chase & Lev, "Dynamic Circular
//! Work-Stealing Deque" (SPAA '05), with the C11 memory orderings of Lê,
//! Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
//! Weak Memory Models" (PPoPP '13).
//!
//! All atomics come from [`crate::sync`], so the exact orderings below are
//! model-checked by `tests/loom_deque.rs` under `--cfg lsml_loom` (size-1
//! take-vs-steal, concurrent stealers, growth + retired-buffer reclamation).
//!
//! Two Rust-specific points:
//!
//! * Slots store the two words of a [`JobRef`] as relaxed atomics. The
//!   classic algorithm lets a thief read a slot that the owner may
//!   concurrently overwrite (the thief's CAS on `top` then fails and the
//!   value is discarded); making the accesses atomic keeps that benign race
//!   defined behavior. A torn read across the two words can only be
//!   observed on a failed CAS, never used.
//! * Growing replaces the buffer but *retires* the old one instead of
//!   freeing it (a stalled thief may still hold the stale pointer; its CAS
//!   will fail, but the read must stay valid). Retired buffers are freed
//!   when the deque drops; total retired memory is bounded by twice the
//!   final capacity.

use crate::sync::{
    fence, trace_access, trace_alloc, trace_free, AtomicIsize, AtomicPtr, AtomicUsize, Mutex,
    Ordering,
};

use crate::job::JobRef;

// Tiny under the model checker so buffer growth (and retired-buffer
// reclamation) is reachable within a tractable interleaving space.
#[cfg(lsml_loom)]
const MIN_CAPACITY: usize = 2;
#[cfg(not(lsml_loom))]
const MIN_CAPACITY: usize = 32;

/// One deque slot: the two words of a `JobRef`, individually atomic.
struct Slot {
    data: AtomicUsize,
    execute: AtomicUsize,
}

/// A circular buffer of slots; capacity is always a power of two.
struct Buffer {
    slots: Box<[Slot]>,
}

impl Buffer {
    fn new(capacity: usize) -> Box<Buffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| Slot {
                data: AtomicUsize::new(0),
                execute: AtomicUsize::new(0),
            })
            .collect();
        Box::new(Buffer { slots })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, index: isize) -> &Slot {
        // Power-of-two capacity: the circular index is a mask.
        &self.slots[index as usize & (self.capacity() - 1)]
    }

    #[inline]
    fn read(&self, index: isize) -> (usize, usize) {
        let slot = self.slot(index);
        (
            slot.data.load(Ordering::Relaxed),
            slot.execute.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn write(&self, index: isize, words: (usize, usize)) {
        let slot = self.slot(index);
        slot.data.store(words.0, Ordering::Relaxed);
        slot.execute.store(words.1, Ordering::Relaxed);
    }
}

/// Result of a steal attempt.
pub enum Steal {
    /// The deque looked empty.
    Empty,
    /// Lost a race; the thief may retry.
    Retry,
    /// Took the oldest job.
    Success(JobRef),
}

/// The work-stealing deque. `push`/`pop` must only be called by the owning
/// worker thread (the registry upholds this); `steal` is safe from any
/// thread.
pub struct Deque {
    /// Next index the owner pushes at. Only the owner writes it.
    bottom: AtomicIsize,
    /// Next index thieves steal from. Monotonically increasing.
    top: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth, kept alive for stale thief reads. The
    /// boxes are load-bearing: thieves hold raw pointers to these exact
    /// allocations, so the buffers must stay pinned, not be moved into the
    /// Vec's storage.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
}

// SAFETY: the raw buffer pointer is managed entirely inside this module —
// it always points at a `Buffer` kept alive by `buffer`/`retired` until
// drop, and `Slot` contents are atomics, so cross-thread access is defined.
unsafe impl Send for Deque {}
// SAFETY: as above; shared access only touches atomics and the retired
// Mutex.
unsafe impl Sync for Deque {}

impl Deque {
    pub fn new() -> Deque {
        let buffer = Box::into_raw(Buffer::new(MIN_CAPACITY));
        trace_alloc(buffer as usize);
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(buffer),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Cheap emptiness probe for sleep/wake decisions (racy by nature; a
    /// false "non-empty" just costs a failed steal).
    #[inline]
    pub fn looks_empty(&self) -> bool {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        t >= b
    }

    /// Pushes a job at the bottom. Owner only.
    pub fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buffer = self.buffer.load(Ordering::Relaxed);
        trace_access(buffer as usize);
        // SAFETY: `buffer` came from `Box::into_raw` in `new`/`grow` and is
        // only freed in `drop`, which requires `&mut self` — it is live here.
        if b - t >= unsafe { (*buffer).capacity() } as isize {
            buffer = self.grow(t, b, buffer);
        }
        // SAFETY: live as above (or freshly grown); the owner is the only
        // thread writing slots, and slot words are atomics.
        unsafe { (*buffer).write(b, job.to_words()) };
        // Publish the slot before the new bottom becomes visible to thieves.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Doubles the buffer, copying the live range `top..bottom`. Owner only.
    fn grow(&self, top: isize, bottom: isize, old: *mut Buffer) -> *mut Buffer {
        trace_access(old as usize);
        // SAFETY: `old` is the current buffer pointer, live until retired
        // below; only the owner calls `grow`, so no concurrent owner writes.
        let old_ref = unsafe { &*old };
        let new = Buffer::new(old_ref.capacity() * 2);
        for i in top..bottom {
            new.write(i, old_ref.read(i));
        }
        let new_ptr = Box::into_raw(new);
        trace_alloc(new_ptr as usize);
        self.buffer.store(new_ptr, Ordering::Release);
        // A thief holding the stale pointer may still read from `old`; its
        // CAS on `top` decides ownership, so the memory just has to stay
        // alive. Retire it; freed on drop.
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            // SAFETY: `old` came from `Box::into_raw` and is relinquished
            // here exactly once — `self.buffer` now points at `new_ptr`, so
            // nothing else will reconstitute it.
            .push(unsafe { Box::from_raw(old) });
        new_ptr
    }

    /// Pops the most recently pushed job. Owner only.
    pub fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement against the top read: a concurrent
        // thief must either see the reservation or we must see its steal.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            trace_access(buffer as usize);
            // SAFETY: the owner's `buffer` load above is the current (or a
            // just-replaced-by-self) buffer; buffers are only freed in
            // `drop`. Slot words are atomics, so the read is defined even if
            // it races a thief.
            let words = unsafe { (*buffer).read(b) };
            if t == b {
                // Last element: race the thieves for it via `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            // SAFETY: `words` was written by `push` from a real `JobRef`,
            // and winning the size-1 CAS (or `t < b`) means the owner has
            // exclusive claim to this element — no thief can also return it.
            Some(unsafe { JobRef::from_words(words.0, words.1) })
        } else {
            // Already empty; undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Attempts to steal the oldest job. Any thread.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let buffer = self.buffer.load(Ordering::Acquire);
            trace_access(buffer as usize);
            // Read before the CAS: after a successful CAS the owner may
            // reuse the slot. The read value is only used if the CAS wins
            // (a concurrent overwrite implies the CAS loses — see module
            // docs).
            // SAFETY: `buffer` may be stale (the owner can grow
            // concurrently), but stale buffers are retired, not freed, until
            // the deque drops — the allocation is guaranteed live. Slot
            // words are atomics, so racing reads are defined.
            let words = unsafe { (*buffer).read(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS on `top` won, so this thief owns element
                // `t` exclusively and `words` is the intact pair written by
                // `push` (an owner overwrite would have advanced `top` first
                // and failed this CAS).
                Steal::Success(unsafe { JobRef::from_words(words.0, words.1) })
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        let buffer = self.buffer.load(Ordering::Relaxed);
        trace_free(buffer as usize);
        // SAFETY: `&mut self` means no owner or thief is active; `buffer`
        // came from `Box::into_raw` and is reconstituted exactly once here.
        drop(unsafe { Box::from_raw(buffer) });
        // `retired` boxes drop with the Mutex; tell the shadow tracker.
        for b in self
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            trace_free(&**b as *const Buffer as usize);
        }
    }
}
