//! Self-tests for the vendored model checker. These run in the normal tier-1
//! `cargo test` (no `--cfg lsml_loom` needed): the shadow runtime is always
//! compiled; only the `loom::sync` facade switches on the cfg.

use loom::shadow::{AtomicUsize, Condvar, Mutex, Ordering};
use loom::{alloc, model, model_expect_failure, thread, Builder};
use std::sync::Arc;

/// A torn load/store counter increment is a lost-update bug; the explorer
/// must find a schedule where two increments produce 1.
#[test]
fn lost_update_found() {
    let msg = model_expect_failure(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let h: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    let v = a.load(Ordering::Relaxed);
                    a.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in h {
            t.join().unwrap();
        }
        assert_eq!(a.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

/// The same increment via fetch_add is race-free across every interleaving.
#[test]
fn fetch_add_exhaustive() {
    let report = model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let h: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in h {
            t.join().unwrap();
        }
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    println!(
        "fetch_add_exhaustive: {} interleavings explored (max depth {})",
        report.iterations, report.max_depth
    );
    assert!(report.iterations > 1, "expected more than one interleaving");
}

/// Store-buffering litmus test, SeqCst flavor: r1 == r2 == 0 must be
/// impossible — this pins the global SC-clock semantics.
#[test]
fn store_buffer_seqcst_forbidden() {
    let report = model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let t1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        let t2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                y.store(1, Ordering::SeqCst);
                x.load(Ordering::SeqCst)
            })
        };
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(!(r1 == 0 && r2 == 0), "SeqCst store-buffering violated");
    });
    println!(
        "store_buffer_seqcst: {} interleavings explored",
        report.iterations
    );
}

/// The Relaxed flavor of the same litmus must *observe* r1 == r2 == 0 in
/// some interleaving — this pins the stale-read (value nondeterminism) path.
#[test]
fn store_buffer_relaxed_observed() {
    let msg = model_expect_failure(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let t1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                x.store(1, Ordering::Relaxed);
                y.load(Ordering::Relaxed)
            })
        };
        let t2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                y.store(1, Ordering::Relaxed);
                x.load(Ordering::Relaxed)
            })
        };
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(!(r1 == 0 && r2 == 0), "relaxed SB outcome observed");
    });
    assert!(msg.contains("relaxed SB outcome observed"), "got: {msg}");
}

/// Message passing: a Release-published flag must make the payload visible
/// to an Acquire reader (conservative store clocks + acquire join).
#[test]
fn message_passing_acquire_release() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join().unwrap();
    });
}

/// The shadow mutex provides real exclusion across every interleaving.
#[test]
fn mutex_exclusion() {
    let report = model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let h: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for t in h {
            t.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
    println!("mutex_exclusion: {} interleavings", report.iterations);
}

/// Condvar handoff: a waiter parked on the condvar is always woken by the
/// producer's notify — across every interleaving, including the one where
/// the notify fires before the waiter ever locks (the predicate then short-
/// circuits the wait). This pins the atomic release-and-park step: a notify
/// can never fall between the waiter's unlock and its park.
#[test]
fn condvar_handoff_no_lost_wakeup() {
    let report = model(|| {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let t = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let (m, cv) = &*slot;
                let mut g = m.lock().unwrap();
                *g = Some(7);
                cv.notify_one();
            })
        };
        {
            let (m, cv) = &*slot;
            let mut g = m.lock().unwrap();
            while g.is_none() {
                g = cv.wait(g).unwrap();
            }
            assert_eq!(*g, Some(7));
        }
        t.join().unwrap();
    });
    println!(
        "condvar_handoff: {} interleavings explored",
        report.iterations
    );
    assert!(report.iterations > 1, "expected more than one interleaving");
}

/// A producer that flips the predicate but *forgets to notify* deadlocks in
/// the schedule where the waiter parked first — and the explorer reports it
/// naming the condvar. This is the negative control for the queue models:
/// a sleep/wake protocol that can lose a wakeup fails loudly here, it does
/// not hang CI.
#[test]
fn condvar_forgotten_notify_deadlocks() {
    let msg = model_expect_failure(|| {
        let slot = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                *slot.0.lock().unwrap() = true; // seeded bug: no notify
            })
        };
        {
            let (m, cv) = &*slot;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
        }
        let _ = t.join();
    });
    assert!(
        msg.contains("deadlock") && msg.contains("Condvar"),
        "got: {msg}"
    );
}

/// `notify_all` releases every parked waiter; all of them make progress.
#[test]
fn condvar_notify_all_wakes_every_waiter() {
    let report = model(|| {
        let slot = Arc::new((Mutex::new(0usize), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let (m, cv) = &*slot;
                    let mut g = m.lock().unwrap();
                    while *g == 0 {
                        g = cv.wait(g).unwrap();
                    }
                    *g += 1;
                })
            })
            .collect();
        {
            let (m, cv) = &*slot;
            let mut g = m.lock().unwrap();
            *g = 1;
            cv.notify_all();
        }
        for t in waiters {
            t.join().unwrap();
        }
        assert_eq!(*slot.0.lock().unwrap(), 3);
    });
    println!(
        "condvar_notify_all: {} interleavings explored",
        report.iterations
    );
}

/// Classic ABBA deadlock is detected and reported with a seed.
#[test]
fn deadlock_detected() {
    let msg = model_expect_failure(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let _ = t.join();
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

/// Intentionally-seeded use-after-free: the shadow ownership tracker must
/// catch an access to a freed address.
#[test]
fn use_after_free_detected() {
    let msg = model_expect_failure(|| {
        let b = Box::new(7u64);
        let p = Box::into_raw(b);
        alloc::trace_alloc(p as usize);
        // SAFETY: p came from Box::into_raw above and is still live here.
        alloc::trace_free(p as usize);
        drop(unsafe { Box::from_raw(p) });
        // Seeded bug: the pointer is dead but still dereferenced (shadowed —
        // we only *report* the access, never touch freed memory for real).
        alloc::trace_access(p as usize);
    });
    assert!(msg.contains("use-after-free"), "got: {msg}");
}

/// Double-free of a tracked address is flagged.
#[test]
fn double_free_detected() {
    let msg = model_expect_failure(|| {
        let b = Box::new(7u64);
        let p = Box::into_raw(b);
        alloc::trace_alloc(p as usize);
        // SAFETY: p came from Box::into_raw above; freed exactly once for real.
        drop(unsafe { Box::from_raw(p) });
        alloc::trace_free(p as usize);
        alloc::trace_free(p as usize); // seeded bug
    });
    assert!(msg.contains("double-free"), "got: {msg}");
}

/// An allocation never freed is reported as a leak at execution end.
#[test]
fn leak_detected() {
    let msg = model_expect_failure(|| {
        let b = Box::new([0u8; 8]);
        let p = Box::into_raw(b);
        alloc::trace_alloc(p as usize);
        // SAFETY: reconstitute to avoid a *real* leak; the shadow table is
        // deliberately not told (seeded bug).
        drop(unsafe { Box::from_raw(p) });
    });
    assert!(msg.contains("leak"), "got: {msg}");
}

/// A panicking modeled thread fails the execution with its message.
#[test]
fn panic_propagation() {
    let msg = model_expect_failure(|| {
        let t = thread::spawn(|| panic!("worker exploded"));
        let _ = t.join();
    });
    assert!(msg.contains("worker exploded"), "got: {msg}");
}

/// Failures carry a replay seed in the panic message.
#[test]
fn failure_message_has_replay_seed() {
    let res = std::panic::catch_unwind(|| {
        Builder::default().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let t = {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    let v = a.load(Ordering::Relaxed);
                    a.store(v + 1, Ordering::Relaxed);
                })
            };
            let v = a.load(Ordering::Relaxed);
            a.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Relaxed), 2);
        });
    });
    let err = res.expect_err("model should have failed");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("LSML_LOOM_REPLAY="), "got: {msg}");
}

/// Preemption bound 0 restricts exploration to cooperative schedules only;
/// the lost update then goes unseen — pinning that the bound actually prunes.
#[test]
fn preemption_bound_prunes() {
    let b = Builder {
        preemption_bound: 0,
        max_iterations: 10_000,
    };
    let report = b.check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let t = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                let v = a.load(Ordering::Relaxed);
                a.store(v + 1, Ordering::Relaxed);
            })
        };
        t.join().unwrap();
        let v = a.load(Ordering::Relaxed);
        a.store(v + 1, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    println!(
        "preemption_bound_prunes: {} interleavings at bound 0",
        report.iterations
    );
}
