//! Modeled threads: `loom::thread::{spawn, yield_now, JoinHandle}`.
//!
//! Each modeled thread is a real OS thread, but only the one holding the
//! scheduler token executes; all others are parked. `spawn` outside a
//! `loom::model` body panics — the shadow runtime has no meaning there.

use crate::rt::{self, Abort, BlockReason, Scheduler, Status};
use std::any::Any;
use std::sync::{Arc, Mutex};

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `body` as modeled thread `tid`: set TLS, wait for the token, execute,
/// translate panics into model failures, and hand the token on.
fn run_modeled<T: Send + 'static>(
    sched: Arc<Scheduler>,
    tid: usize,
    body: impl FnOnce() -> T,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
) {
    rt::install(Some((Arc::clone(&sched), tid)));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.wait_initial(tid);
        body()
    }));
    rt::install(None);
    match out {
        Ok(v) => {
            *result.lock().unwrap() = Some(Ok(v));
            sched.finish(tid);
        }
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                // Teardown of an already-failed execution: exit quietly.
                let mut ex = sched.ex.lock().unwrap();
                ex.status[tid] = Status::Finished;
                sched.cv.notify_all();
            } else {
                let msg = panic_message(payload.as_ref());
                *result.lock().unwrap() = Some(Err(payload));
                let mut ex = sched.ex.lock().unwrap();
                ex.fail_locked(format!("thread {tid} panicked: {msg}"));
                ex.status[tid] = Status::Finished;
                sched.cv.notify_all();
            }
        }
    }
}

/// Spawn the root modeled thread (tid 0). Driver-internal.
pub(crate) fn spawn_root(
    sched: Arc<Scheduler>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> std::thread::JoinHandle<()> {
    let result = Arc::new(Mutex::new(None));
    std::thread::spawn(move || run_modeled(sched, 0, move || f(), result))
}

/// Join every OS thread of the finished iteration.
pub(crate) fn join_all(sched: &Arc<Scheduler>, root: std::thread::JoinHandle<()>) {
    let _ = root.join();
    let handles: Vec<_> = std::mem::take(&mut *sched.os_handles.lock().unwrap());
    for h in handles {
        let _ = h.join();
    }
}

/// Handle to a modeled thread, analogous to `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    sched: Arc<Scheduler>,
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Blocking here is
    /// modeled: the scheduler explores interleavings where other threads run
    /// while this one waits.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, my) = rt::current().expect("JoinHandle::join outside loom::model");
        let finished = {
            let ex = sched.ex.lock().unwrap();
            ex.status[self.tid] == Status::Finished
        };
        if !finished {
            sched.block(my, BlockReason::Join(self.tid));
        }
        {
            // Join synchronizes-with thread exit: inherit its final clock.
            let mut ex = sched.ex.lock().unwrap();
            let child = ex.clocks[self.tid];
            ex.clocks[my].join(&child);
        }
        self.result
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| panic!("thread {} produced no result", self.tid))
    }
}

/// Spawn a modeled thread. Panics outside a `loom::model` body.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, my) = rt::current().expect("loom::thread::spawn outside loom::model");
    let tid = sched.add_thread();
    {
        // Spawn happens-before the child's first step.
        let mut ex = sched.ex.lock().unwrap();
        let parent = ex.clocks[my];
        ex.clocks[tid].join(&parent);
    }
    let result = Arc::new(Mutex::new(None));
    let handle = {
        let sched = Arc::clone(&sched);
        let result = Arc::clone(&result);
        std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || run_modeled(sched, tid, f, result))
            .expect("failed to spawn loom worker thread")
    };
    sched.os_handles.lock().unwrap().push(handle);
    // Schedule point: the child may be chosen to run right away.
    sched.schedule(my);
    JoinHandle { sched, tid, result }
}

/// Voluntary schedule point.
pub fn yield_now() {
    if let Some((sched, my)) = rt::current() {
        sched.schedule(my);
    } else {
        std::thread::yield_now();
    }
}

impl<T> Drop for JoinHandle<T> {
    fn drop(&mut self) {
        // Detached threads are fine: the driver still joins the OS handle at
        // end of iteration, and `done` requires every modeled thread to
        // finish, so no special handling is needed here.
        let _ = &self.sched;
    }
}
