//! Shadow allocation tracking: use-after-free / double-free / leak detection.
//!
//! Instrumented code reports ownership transitions of raw allocations by
//! address: [`trace_alloc`] when a `Box` is leaked to a raw pointer,
//! [`trace_access`] before dereferencing it, and [`trace_free`] when it is
//! reconstituted and dropped. Violations fail the current execution with a
//! replay seed; any address still live when an execution finishes is reported
//! as a leak by the driver. Outside a `loom::model` body every call is a
//! no-op, so instrumentation costs nothing in normal builds.

use crate::rt::{self, AllocState};

/// Record `addr` as a live tracked allocation.
pub fn trace_alloc(addr: usize) {
    if let Some((sched, _)) = rt::current() {
        let mut ex = sched.ex.lock().unwrap();
        if ex.allocs.insert(addr, AllocState::Live) == Some(AllocState::Live) {
            drop(ex);
            sched.fail(format!("double-alloc of tracked address {addr:#x}"));
        }
    }
}

/// Record that `addr` is being freed; flags double-free.
pub fn trace_free(addr: usize) {
    if let Some((sched, _)) = rt::current() {
        let mut ex = sched.ex.lock().unwrap();
        match ex.allocs.insert(addr, AllocState::Freed) {
            Some(AllocState::Live) => {}
            Some(AllocState::Freed) => {
                drop(ex);
                sched.fail(format!("double-free of tracked address {addr:#x}"));
            }
            None => {
                drop(ex);
                sched.fail(format!("free of untracked address {addr:#x}"));
            }
        }
    }
}

/// Record a dereference of `addr`; flags use-after-free.
pub fn trace_access(addr: usize) {
    if let Some((sched, _)) = rt::current() {
        let ex = sched.ex.lock().unwrap();
        match ex.allocs.get(&addr) {
            Some(AllocState::Live) => {}
            Some(AllocState::Freed) => {
                drop(ex);
                sched.fail(format!("use-after-free of tracked address {addr:#x}"));
            }
            None => {
                drop(ex);
                sched.fail(format!("access to untracked address {addr:#x}"));
            }
        }
    }
}
