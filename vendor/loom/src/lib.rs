//! Vendored, dependency-free loom-style deterministic concurrency model
//! checker.
//!
//! # What this is
//!
//! [`model`] runs a closure under a cooperative scheduler that *exhaustively*
//! explores thread interleavings: every shadow-memory operation (atomic
//! load/store/RMW, mutex lock/unlock, fence, spawn, yield) is a decision
//! point where the scheduler may switch to any runnable thread. Exploration
//! is a DFS over the decision tree with a CHESS-style **preemption bound**
//! (default 2, configurable via [`Builder`]): schedules requiring more
//! involuntary context switches are pruned, which keeps exploration tractable
//! while still catching the vast majority of real ordering bugs.
//!
//! On top of the scheduler sit three checkers:
//!
//! - **`Ordering`-aware shadow atomics** ([`shadow`], re-exported as
//!   [`sync::atomic`] under `cfg(lsml_loom)`): store histories + vector
//!   clocks make stale reads of `Relaxed`/`Acquire` loads and missing
//!   `SeqCst` fences observable. See the [`shadow`] module docs for the
//!   precise (simplified) memory model and its documented conservatisms.
//! - **Shadow ownership tracking** ([`alloc`]): raw-pointer lifecycles
//!   reported via `trace_alloc`/`trace_access`/`trace_free` flag
//!   use-after-free, double-free, and leaks.
//! - **Deadlock / livelock detection**: no-runnable-thread states and
//!   step-limit overruns fail the execution.
//!
//! # Replay seeds
//!
//! Every failure message carries a *seed* — the dot-joined list of decision
//! indices that reached it. Re-running the same test with
//! `LSML_LOOM_REPLAY=<seed>` deterministically replays exactly that
//! interleaving (one execution, no exploration), which makes shrinking and
//! debugging a failing schedule trivial. (The variable is listed with
//! every other `LSML_*` runtime knob in the `lsml_aig::par` module docs.)
//!
//! # The `sync` facade
//!
//! [`sync`] re-exports `std::sync` primitives normally and the shadow
//! primitives when built with `RUSTFLAGS="--cfg lsml_loom"`. Code written
//! against `loom::sync::{atomic::*, Mutex}` therefore runs at full speed in
//! production and under the model checker in the `model-check` CI leg with
//! zero source changes. `Ordering` is always the real
//! `std::sync::atomic::Ordering`. Globals (`OnceLock`, statics) are *not*
//! modeled: model bodies must create the state they exercise fresh inside
//! the closure, so each explored execution starts from a known state.
//!
//! # Limits
//!
//! At most 8 modeled threads; `compare_exchange_weak` never fails spuriously;
//! all stores carry release semantics (conservative — may hide relaxed-store
//! bugs, never reports false positives); the shadow [`shadow::Condvar`] has
//! no spurious wakeups inside a model and no `wait_timeout` (facade-routed
//! code must loop on a predicate and never rely on timeouts — the non-model
//! fallback wakes spuriously every time, so the predicate loop is always
//! exercised).

pub mod alloc;
pub(crate) mod rt;
pub mod shadow;
pub mod thread;

pub use rt::{Builder, Report};

/// `std` primitives normally; shadow (model-checked) primitives under
/// `cfg(lsml_loom)`. See the crate docs for the facade contract.
pub mod sync {
    #[cfg(not(lsml_loom))]
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    #[cfg(lsml_loom)]
    pub use crate::shadow::{Condvar, Mutex, MutexGuard};

    // Not modeled: always the `std` type, exported unconditionally so the
    // facade's surface does not depend on the cfg (rustdoc compiles doctest
    // hosts without `RUSTFLAGS`, against rlibs that were built with it).
    // Globals latched through one of these are invisible to the model
    // checker; model bodies create their state fresh inside the closure.
    pub use std::sync::OnceLock;

    pub use std::sync::Arc;

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        #[cfg(not(lsml_loom))]
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize,
        };

        #[cfg(lsml_loom)]
        pub use crate::shadow::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize,
        };
    }
}

/// Exhaustively explore every interleaving of `f` with the default
/// [`Builder`] (preemption bound 2), panicking with a replayable seed on the
/// first failing schedule. Returns a [`Report`] with the number of explored
/// interleavings.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// Negative-test helper: explore `f` expecting *some* schedule to fail, and
/// return that failure's message. Panics if every interleaving passes.
pub fn model_expect_failure<F>(f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check_expect_failure(f)
}
