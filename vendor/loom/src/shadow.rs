//! Shadow synchronization primitives: `Ordering`-aware atomics and a modeled
//! `Mutex`.
//!
//! # Memory model (simplified, documented)
//!
//! Each shadow atomic keeps the full *store history* of the current
//! execution. Every store is recorded with the storing thread's vector clock
//! — i.e. every store behaves *as if* Release (a conservative
//! over-approximation: it can hide relaxed-store bugs, never invent false
//! failures). Visibility rules for a load by thread `R`:
//!
//! - **Coherence**: `R` can never read a store older than one it (or its own
//!   last store) already observed on this atomic (per-thread *floor*).
//! - **Happens-before**: `R` cannot read store `i` if some later store `j > i`
//!   happened-before `R` (`R`'s clock already covers `j`).
//! - Among the remaining candidates the *choice of which store to read is a
//!   scheduler decision point*, so stale-read interleavings are explored
//!   exhaustively.
//! - `Acquire`/`SeqCst` loads join the read store's clock into the reader;
//!   `Relaxed` loads do not (so a relaxed load does not synchronize).
//! - RMW / `compare_exchange` always read the *latest* store (atomicity) and
//!   hold the scheduler lock for the whole read-modify-write.
//! - `SeqCst` operations and `fence(SeqCst)` join a global SC clock both
//!   ways, which makes e.g. removal of the Chase–Lev SeqCst fences observable
//!   as a double-take. `fence(Acquire)`/`fence(Release)` are schedule points
//!   only — their edges are subsumed by the conservative store clocks.
//! - `compare_exchange_weak` never fails spuriously (== strong).

use crate::rt::{self, BlockReason, Scheduler, VClock, MAX_THREADS};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

struct Record {
    value: u64,
    tid: usize,
    /// The storing thread's own clock component at store time.
    stamp: u32,
    clock: VClock,
}

struct History {
    recs: Vec<Record>,
    /// Per-thread coherence floor: lowest record index each thread may read.
    floors: [usize; MAX_THREADS],
    exec_id: u64,
}

fn initial_record(value: u64) -> Record {
    Record {
        value,
        tid: 0,
        stamp: 0,
        clock: VClock::default(),
    }
}

/// Core of every shadow atomic: a mutex-protected store history.
struct ShadowCell {
    hist: std::sync::Mutex<History>,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_seqcst(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

impl ShadowCell {
    fn new(value: u64) -> Self {
        ShadowCell {
            hist: std::sync::Mutex::new(History {
                recs: vec![initial_record(value)],
                floors: [0; MAX_THREADS],
                exec_id: 0,
            }),
        }
    }

    /// Discard history left over from a previous execution (an atomic that
    /// outlived its iteration — e.g. a global — keeps only its final value,
    /// treated as pre-existing initial state).
    fn normalize(h: &mut History, exec_id: u64) {
        if h.exec_id != exec_id {
            let last = h.recs.last().map(|r| r.value).unwrap_or(0);
            h.recs = vec![initial_record(last)];
            h.floors = [0; MAX_THREADS];
            h.exec_id = exec_id;
        }
    }

    fn load(&self, order: Ordering) -> u64 {
        match rt::current() {
            None => self.hist.lock().unwrap().recs.last().unwrap().value,
            Some((sched, my)) => {
                sched.schedule(my);
                let mut ex = sched.ex.lock().unwrap();
                let mut h = self.hist.lock().unwrap();
                Self::normalize(&mut h, ex.exec_id);
                if is_seqcst(order) {
                    // A SeqCst load is aware of every prior SeqCst store.
                    let sc = ex.sc_clock;
                    ex.clocks[my].join(&sc);
                }
                // Lowest readable index: coherence floor, raised past every
                // store that already happened-before this thread.
                let mut lo = h.floors[my];
                for (i, r) in h.recs.iter().enumerate().skip(lo) {
                    if ex.clocks[my].0[r.tid] >= r.stamp {
                        lo = i;
                    }
                }
                let n = h.recs.len() - lo;
                // Which of the visible stores we read is itself explored.
                let idx = lo + ex.choose_locked(n);
                h.floors[my] = idx;
                let rec = &h.recs[idx];
                let value = rec.value;
                if is_acquire(order) {
                    let c = rec.clock;
                    ex.clocks[my].join(&c);
                }
                if is_seqcst(order) {
                    let mine = ex.clocks[my];
                    ex.sc_clock.join(&mine);
                }
                value
            }
        }
    }

    fn store(&self, value: u64, order: Ordering) {
        match rt::current() {
            None => {
                let mut h = self.hist.lock().unwrap();
                h.recs = vec![initial_record(value)];
                h.floors = [0; MAX_THREADS];
            }
            Some((sched, my)) => {
                sched.schedule(my);
                let mut ex = sched.ex.lock().unwrap();
                let mut h = self.hist.lock().unwrap();
                Self::normalize(&mut h, ex.exec_id);
                if is_seqcst(order) {
                    let sc = ex.sc_clock;
                    ex.clocks[my].join(&sc);
                }
                let clock = ex.clocks[my];
                h.recs.push(Record {
                    value,
                    tid: my,
                    stamp: clock.0[my],
                    clock,
                });
                h.floors[my] = h.recs.len() - 1;
                if is_seqcst(order) {
                    ex.sc_clock.join(&clock);
                }
            }
        }
    }

    /// Atomic read-modify-write: reads the latest store, writes `f(old)` if
    /// `f` returns `Some`, all under the scheduler lock (true atomicity).
    /// Returns the old value.
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        match rt::current() {
            None => {
                let mut h = self.hist.lock().unwrap();
                let old = h.recs.last().unwrap().value;
                if let Some(new) = f(old) {
                    h.recs = vec![initial_record(new)];
                    h.floors = [0; MAX_THREADS];
                }
                old
            }
            Some((sched, my)) => {
                sched.schedule(my);
                let mut ex = sched.ex.lock().unwrap();
                let mut h = self.hist.lock().unwrap();
                Self::normalize(&mut h, ex.exec_id);
                if is_seqcst(order) {
                    let sc = ex.sc_clock;
                    ex.clocks[my].join(&sc);
                }
                let idx = h.recs.len() - 1;
                let rec = &h.recs[idx];
                let old = rec.value;
                // RMW reads always synchronize conservatively (every store
                // carries a full clock; see module docs).
                if is_acquire(order) || matches!(order, Ordering::Release) {
                    let c = rec.clock;
                    ex.clocks[my].join(&c);
                }
                h.floors[my] = idx;
                if let Some(new) = f(old) {
                    let clock = ex.clocks[my];
                    h.recs.push(Record {
                        value: new,
                        tid: my,
                        stamp: clock.0[my],
                        clock,
                    });
                    h.floors[my] = idx + 1;
                }
                if is_seqcst(order) {
                    let mine = ex.clocks[my];
                    ex.sc_clock.join(&mine);
                }
                old
            }
        }
    }
}

/// `fence(SeqCst)` joins the global SC clock both ways; weaker fences are
/// schedule points only (their edges are subsumed by conservative stores).
pub fn fence(order: Ordering) {
    if let Some((sched, my)) = rt::current() {
        sched.schedule(my);
        if is_seqcst(order) {
            let mut ex = sched.ex.lock().unwrap();
            let sc = ex.sc_clock;
            ex.clocks[my].join(&sc);
            let mine = ex.clocks[my];
            ex.sc_clock.join(&mine);
        }
    } else {
        std::sync::atomic::fence(order);
    }
}

macro_rules! shadow_int_atomic {
    ($name:ident, $ty:ty) => {
        /// Shadow counterpart of the `std::sync::atomic` type of the same
        /// name; see the module docs for the model semantics.
        pub struct $name {
            cell: ShadowCell,
        }

        #[allow(clippy::unnecessary_cast)] // u64<->u64 casts appear for some instantiations
        impl $name {
            pub fn new(v: $ty) -> Self {
                $name {
                    cell: ShadowCell::new(v as u64),
                }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.cell.load(order) as $ty
            }

            pub fn store(&self, v: $ty, order: Ordering) {
                self.cell.store(v as u64, order)
            }

            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                self.cell.rmw(order, |_| Some(v as u64)) as $ty
            }

            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                self.cell
                    .rmw(order, |old| Some((old as $ty).wrapping_add(v) as u64)) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                self.cell
                    .rmw(order, |old| Some((old as $ty).wrapping_sub(v) as u64)) as $ty
            }

            pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                self.cell.rmw(order, |old| Some(((old as $ty) | v) as u64)) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                let old = self.cell.rmw(success, |old| {
                    if old as $ty == current {
                        Some(new as u64)
                    } else {
                        None
                    }
                }) as $ty;
                if old == current {
                    Ok(old)
                } else {
                    Err(old)
                }
            }

            /// Never fails spuriously (== `compare_exchange`); documented
            /// simplification.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

shadow_int_atomic!(AtomicUsize, usize);
shadow_int_atomic!(AtomicIsize, isize);
shadow_int_atomic!(AtomicU64, u64);

/// Shadow `AtomicBool` (stored as 0/1 in the common cell).
pub struct AtomicBool {
    cell: ShadowCell,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool {
            cell: ShadowCell::new(v as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.cell.load(order) != 0
    }

    pub fn store(&self, v: bool, order: Ordering) {
        self.cell.store(v as u64, order)
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        self.cell.rmw(order, |_| Some(v as u64)) != 0
    }
}

/// Shadow `AtomicPtr<T>`: the pointer is modeled as a plain address in the
/// common cell.
pub struct AtomicPtr<T> {
    cell: ShadowCell,
    _marker: PhantomData<*mut T>,
}

// SAFETY: the shadow AtomicPtr only stores the raw address as an integer in
// a mutex-protected history; it never dereferences it, so sharing across
// threads is as safe as sharing the corresponding std::sync::atomic::AtomicPtr.
unsafe impl<T> Send for AtomicPtr<T> {}
// SAFETY: as above — all interior mutability is behind a std Mutex.
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        AtomicPtr {
            cell: ShadowCell::new(p as usize as u64),
            _marker: PhantomData,
        }
    }

    pub fn load(&self, order: Ordering) -> *mut T {
        self.cell.load(order) as usize as *mut T
    }

    pub fn store(&self, p: *mut T, order: Ordering) {
        self.cell.store(p as usize as u64, order)
    }

    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        self.cell.rmw(order, |_| Some(p as usize as u64)) as usize as *mut T
    }
}

/// A modeled mutex. Lock acquisition order is explored by the scheduler;
/// self-deadlock (re-entrant lock) and cross-thread deadlock are reported
/// with a replay seed. `lock()` always returns `Ok` (no poisoning), so call
/// sites written against `std::sync::Mutex` compile unchanged.
pub struct Mutex<T> {
    st: std::sync::Mutex<MState>,
    cell: UnsafeCell<T>,
}

struct MState {
    /// Owning modeled tid, `NON_MODEL_OWNER` outside a model, or None.
    owner: Option<usize>,
    /// Clock released by the last unlock; joined by the next lock.
    clock: VClock,
    exec_id: u64,
}

const NON_MODEL_OWNER: usize = usize::MAX;

// SAFETY: the shadow Mutex provides the same exclusion guarantee as
// std::sync::Mutex — `cell` is only reachable through a guard that is handed
// out to exactly one owner at a time (enforced by `st`).
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex<T>` only exposes `cell` through exclusive guards.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            st: std::sync::Mutex::new(MState {
                owner: None,
                clock: VClock::default(),
                exec_id: 0,
            }),
            cell: UnsafeCell::new(value),
        }
    }

    /// Stable identity for block/wake bookkeeping.
    fn id(&self) -> usize {
        &self.st as *const _ as usize
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        // During unwinding the scheduler is out of the picture (see
        // `Scheduler::schedule`); fall back to real spin-exclusion so locks
        // taken in destructors can't re-panic.
        let modeled = if std::thread::panicking() {
            None
        } else {
            rt::current()
        };
        match modeled {
            None => {
                // Outside a model: spin-yield exclusion with a sentinel owner
                // (std::sync::Mutex on `st` provides the memory ordering).
                loop {
                    {
                        let mut st = self.st.lock().unwrap();
                        if st.owner.is_none() {
                            st.owner = Some(NON_MODEL_OWNER);
                            return Ok(MutexGuard { mx: self, my: None });
                        }
                    }
                    std::thread::yield_now();
                }
            }
            Some((sched, my)) => loop {
                sched.schedule(my);
                let mut ex = sched.ex.lock().unwrap();
                let mut st = self.st.lock().unwrap();
                if st.exec_id != ex.exec_id {
                    st.owner = None;
                    st.clock = VClock::default();
                    st.exec_id = ex.exec_id;
                }
                match st.owner {
                    None => {
                        st.owner = Some(my);
                        let c = st.clock;
                        ex.clocks[my].join(&c);
                        return Ok(MutexGuard {
                            mx: self,
                            my: Some((Arc::clone(&sched), my)),
                        });
                    }
                    Some(owner) if owner == my => {
                        drop(st);
                        drop(ex);
                        sched.fail(format!(
                            "re-entrant lock: thread {my} already owns this mutex"
                        ));
                    }
                    Some(_) => {
                        let id = self.id();
                        drop(st);
                        drop(ex);
                        sched.block(my, BlockReason::Mutex(id));
                        // Re-contend once scheduled again.
                    }
                }
            },
        }
    }
}

impl<T> Mutex<T> {
    /// Releases the lock *without* a schedule point, under an already-held
    /// `ex` lock: joins the holder's clock into the release clock, clears
    /// the owner, and wakes lock waiters. The condvar wait path uses this
    /// so "unlock the mutex + park on the condvar" is one atomic step, as
    /// POSIX requires — no notify can slip between the two halves.
    fn release_locked(&self, ex: &mut crate::rt::Execution, my: usize) {
        {
            let mut st = self.st.lock().unwrap();
            let mine = ex.clocks[my];
            st.clock.join(&mine);
            st.owner = None;
        }
        let id = self.id();
        for t in 0..ex.status.len() {
            if ex.status[t] == rt::Status::Blocked(BlockReason::Mutex(id)) {
                ex.status[t] = rt::Status::Runnable;
            }
        }
    }
}

/// RAII guard for the shadow [`Mutex`]; releasing is a schedule point.
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    my: Option<(Arc<Scheduler>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while `st.owner` names this holder,
        // so no other reference to `cell` is live.
        unsafe { &*self.mx.cell.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive ownership for the guard lifetime.
        unsafe { &mut *self.mx.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        match &self.my {
            None => {
                let mut st = self.mx.st.lock().unwrap();
                st.owner = None;
            }
            Some((sched, my)) => {
                let my = *my;
                {
                    // Release the clock and wake lock waiters; handing one
                    // of them the token (or not) is the scheduler's next
                    // decision.
                    let mut ex = sched.ex.lock().unwrap();
                    self.mx.release_locked(&mut ex, my);
                }
                if !std::thread::panicking() {
                    sched.schedule(my);
                }
            }
        }
    }
}

/// A modeled condition variable, the shadow counterpart of
/// `std::sync::Condvar`.
///
/// Under a model, [`Condvar::wait`] releases the guard's mutex and parks the
/// thread in **one atomic step** (both halves happen under a single
/// scheduler lock, matching the POSIX atomic-release-and-wait guarantee), so
/// a notify can never slip between unlock and park. Which parked thread a
/// [`Condvar::notify_one`] wakes is a scheduler decision point, explored
/// like any other. A notify with no parked thread is lost — exactly the std
/// semantics — so predicate-check-outside-the-lock bugs show up as
/// deadlocks with a replay seed.
///
/// Documented simplifications: no spurious wakeups inside a model (callers
/// must still loop on their predicate — the non-model fallback wakes
/// spuriously *every* time, so the loop is exercised), and no
/// `wait_timeout` (facade-routed code must not rely on timeouts; see the
/// crate docs).
///
/// Outside a model the fallback pairs with the shadow [`Mutex`]'s spin
/// fallback: `wait` unlocks, yields, and relocks (an unconditional spurious
/// wake), and notifies are no-ops.
#[derive(Default)]
pub struct Condvar {
    /// Gives the condvar a stable, non-zero-sized address for block/wake
    /// bookkeeping (distinct condvars must never share an id).
    _addr: u8,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { _addr: 0 }
    }

    /// Stable identity for block/wake bookkeeping.
    fn id(&self) -> usize {
        &self._addr as *const _ as usize
    }

    /// Atomically releases `guard`'s mutex and parks until notified, then
    /// re-acquires the mutex before returning.
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let mx: &'a Mutex<T> = guard.mx;
        match guard.my.clone() {
            None => {
                // Non-model fallback: unlock, yield, relock — a spurious
                // wakeup every time. Paired with no-op notifies, any
                // predicate loop written for std terminates the same way.
                drop(guard);
                std::thread::yield_now();
                mx.lock()
            }
            Some((sched, my)) => {
                // The modeled release happens below under the `ex` lock;
                // running the guard's Drop too would double-release.
                std::mem::forget(guard);
                {
                    let mut ex = sched.ex.lock().unwrap();
                    if ex.abort {
                        drop(ex);
                        std::panic::panic_any(crate::rt::Abort);
                    }
                    mx.release_locked(&mut ex, my);
                    ex.status[my] = rt::Status::Blocked(BlockReason::Condvar(self.id()));
                    sched.pass_to_next_locked(&mut ex);
                    sched.wait_for_turn(ex, my);
                }
                mx.lock()
            }
        }
    }

    /// Wakes one parked waiter (which one is a scheduler decision point);
    /// lost if nobody is parked, exactly like std.
    pub fn notify_one(&self) {
        if let Some((sched, my)) = rt::current() {
            sched.schedule(my);
            let mut ex = sched.ex.lock().unwrap();
            let id = self.id();
            let waiters: Vec<usize> = (0..ex.status.len())
                .filter(|&t| ex.status[t] == rt::Status::Blocked(BlockReason::Condvar(id)))
                .collect();
            if !waiters.is_empty() {
                let idx = ex.choose_locked(waiters.len());
                ex.status[waiters[idx]] = rt::Status::Runnable;
            }
        }
        // Non-model: a no-op — the fallback `wait` never parks.
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        if let Some((sched, my)) = rt::current() {
            sched.schedule(my);
            let mut ex = sched.ex.lock().unwrap();
            let id = self.id();
            for t in 0..ex.status.len() {
                if ex.status[t] == rt::Status::Blocked(BlockReason::Condvar(id)) {
                    ex.status[t] = rt::Status::Runnable;
                }
            }
        }
    }
}
