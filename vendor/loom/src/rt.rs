//! Cooperative scheduler + DFS interleaving explorer.
//!
//! One real OS thread is spawned per modeled thread, but only one runs at a
//! time: every thread parks on a single `Condvar` and proceeds only while
//! `Execution::current` names it. Every shadow-memory operation calls
//! [`schedule`], which is a *decision point*: the set of runnable threads is
//! computed and one is chosen. Choices are recorded on a decision stack
//! (`path`); after an execution finishes, the deepest decision with an
//! unexplored alternative is advanced and the prefix replayed — classic DFS
//! over the interleaving tree, bounded by [`Builder::preemption_bound`]
//! (CHESS-style: a *preemption* is switching away from a runnable thread;
//! switches away from blocked/finished threads are free).
//!
//! A failing schedule prints a *seed*: the dot-joined list of decision
//! indices. Re-running the same `loom::model` body with
//! `LSML_LOOM_REPLAY=<seed>` replays exactly that interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

pub(crate) const MAX_THREADS: usize = 8;
const STEP_LIMIT: u64 = 1_000_000;

/// Vector clock over modeled threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(pub [u32; MAX_THREADS]);

impl VClock {
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }
}

/// Marker payload used to unwind modeled threads during abort teardown.
/// Wrappers downcast on this to distinguish teardown from a user panic.
pub(crate) struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockReason {
    /// Waiting to acquire the shadow mutex with this id.
    Mutex(usize),
    /// Waiting for thread `tid` to finish.
    Join(usize),
    /// Parked on the shadow condvar with this id (woken only by
    /// `notify_one`/`notify_all`; a forgotten notify is a deadlock the
    /// explorer reports like any other).
    Condvar(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

/// One entry on the DFS decision stack.
struct Decision {
    /// Index chosen among `options` candidates at this point.
    chosen: usize,
    /// Number of candidates that were available.
    options: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AllocState {
    Live,
    Freed,
}

pub(crate) struct Failure {
    pub message: String,
    pub seed: String,
}

pub(crate) struct Execution {
    pub clocks: Vec<VClock>,
    /// Global sequential-consistency clock: joined both ways by every SeqCst
    /// operation and SeqCst fence.
    pub sc_clock: VClock,
    pub status: Vec<Status>,
    pub current: usize,
    preemptions: usize,
    bound: usize,
    path: Vec<Decision>,
    /// Depth of the next decision to take (index into `path` during replay).
    depth: usize,
    /// Forced schedule from `LSML_LOOM_REPLAY` (if any).
    replay: Option<Vec<usize>>,
    pub failure: Option<Failure>,
    pub abort: bool,
    pub done: bool,
    steps: u64,
    /// Shadow allocation table: address -> state.
    pub allocs: HashMap<usize, AllocState>,
    /// Monotonic execution id; shadow atomics use it to invalidate history
    /// left over from a previous iteration.
    pub exec_id: u64,
}

impl Execution {
    fn runnable(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Runnable)
            .collect()
    }

    pub fn seed(&self) -> String {
        self.path
            .iter()
            .take(self.depth)
            .map(|d| d.chosen.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Record a failure (first one wins) and begin abort teardown.
    pub fn fail_locked(&mut self, message: String) {
        if self.failure.is_none() {
            let seed = self.seed();
            self.failure = Some(Failure { message, seed });
        }
        self.abort = true;
    }

    /// Pick index among `n` candidates: replay prefix, then DFS stack, then 0.
    /// `n == 0` is a caller bug; `n == 1` short-circuits without recording.
    pub fn choose_locked(&mut self, n: usize) -> usize {
        assert!(n > 0, "choose_locked with no candidates");
        if n == 1 {
            return 0;
        }
        let d = self.depth;
        let chosen = if let Some(replay) = &self.replay {
            *replay.get(d).unwrap_or(&0)
        } else if d < self.path.len() {
            self.path[d].chosen
        } else {
            0
        };
        let chosen = chosen.min(n - 1);
        if d < self.path.len() {
            self.path[d].options = n;
            self.path[d].chosen = chosen;
        } else {
            self.path.push(Decision { chosen, options: n });
        }
        self.depth += 1;
        chosen
    }

    /// Advance to the next unexplored schedule. Returns false when the DFS
    /// tree is exhausted.
    fn advance(&mut self) -> bool {
        if self.replay.is_some() {
            return false; // replay mode runs exactly one schedule
        }
        while let Some(last) = self.path.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                last.options = 0; // re-learned on replay
                return true;
            }
            self.path.pop();
        }
        false
    }
}

pub(crate) struct Scheduler {
    pub ex: Mutex<Execution>,
    pub cv: Condvar,
    /// OS join handles for every modeled thread spawned in the current
    /// iteration; drained by the driver after each execution.
    pub os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler + tid of the calling modeled thread, or None when the
/// calling thread is not running under `loom::model`.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn install(v: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Scheduler {
    fn new(bound: usize, replay: Option<Vec<usize>>) -> Self {
        Scheduler {
            ex: Mutex::new(Execution {
                clocks: Vec::new(),
                sc_clock: VClock::default(),
                status: Vec::new(),
                current: 0,
                preemptions: 0,
                bound,
                path: Vec::new(),
                depth: 0,
                replay,
                failure: None,
                abort: false,
                done: false,
                steps: 0,
                allocs: HashMap::new(),
                exec_id: 0,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// Register a new modeled thread; returns its tid.
    pub fn add_thread(&self) -> usize {
        let mut ex = self.ex.lock().unwrap();
        let tid = ex.status.len();
        assert!(
            tid < MAX_THREADS,
            "loom model supports at most {MAX_THREADS} threads"
        );
        ex.status.push(Status::Runnable);
        // Spawn happens-before the child's first step: child inherits a copy
        // of the parent's clock (parent clock join done by thread::spawn).
        ex.clocks.push(VClock::default());
        tid
    }

    /// Decision point: possibly switch to another runnable thread, then wait
    /// until it is `my` turn again. Called before every shadow operation.
    pub fn schedule(&self, my: usize) {
        // Shadow ops reached from destructors during unwinding (e.g. a
        // teardown Abort dropping an Arc'd structure) must not re-panic —
        // that would be a fatal panic-in-destructor. The execution has
        // already resolved; just stop scheduling.
        if std::thread::panicking() {
            return;
        }
        let mut ex = self.ex.lock().unwrap();
        if ex.abort {
            drop(ex);
            std::panic::panic_any(Abort);
        }
        ex.steps += 1;
        if ex.steps > STEP_LIMIT {
            ex.fail_locked(format!(
                "step limit {STEP_LIMIT} exceeded (livelock? unbounded retry loop?)"
            ));
            self.cv.notify_all();
            drop(ex);
            std::panic::panic_any(Abort);
        }
        ex.clocks[my].0[my] += 1;
        let runnable = ex.runnable();
        debug_assert!(runnable.contains(&my));
        // Preemption bounding: once the budget is spent, stay on `my`.
        let candidates: Vec<usize> = if runnable.len() > 1 && ex.preemptions >= ex.bound {
            vec![my]
        } else {
            runnable
        };
        let my_pos = candidates.iter().position(|&t| t == my);
        let idx = ex.choose_locked(candidates.len());
        let next = candidates[idx];
        if next != my && my_pos.is_some() {
            ex.preemptions += 1;
        }
        ex.current = next;
        if next != my {
            self.cv.notify_all();
            self.wait_for_turn(ex, my);
        }
    }

    /// Block `my` on `reason`, hand the token to some runnable thread, and
    /// return once `my` is runnable and scheduled again.
    pub fn block(&self, my: usize, reason: BlockReason) {
        let mut ex = self.ex.lock().unwrap();
        if ex.abort {
            drop(ex);
            std::panic::panic_any(Abort);
        }
        ex.status[my] = Status::Blocked(reason);
        self.pass_to_next_locked(&mut ex);
        self.wait_for_turn(ex, my);
    }

    /// Hand the token to any runnable thread (caller is blocked or finished).
    /// Reports deadlock if nothing is runnable and the execution isn't done.
    pub fn pass_to_next_locked(&self, ex: &mut Execution) {
        let runnable = ex.runnable();
        if runnable.is_empty() {
            if !ex.status.iter().all(|&s| s == Status::Finished) {
                let stuck: Vec<String> = ex
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(t, s)| match s {
                        Status::Blocked(r) => Some(format!("thread {t} blocked on {r:?}")),
                        _ => None,
                    })
                    .collect();
                ex.fail_locked(format!("deadlock: {}", stuck.join(", ")));
            } else {
                ex.done = true;
            }
            self.cv.notify_all();
            return;
        }
        let idx = ex.choose_locked(runnable.len());
        ex.current = runnable[idx];
        self.cv.notify_all();
    }

    /// Parks until it is `my` turn to run. `pub(crate)` so the shadow
    /// condvar can release-and-block atomically under one `ex` lock.
    pub(crate) fn wait_for_turn(&self, mut ex: std::sync::MutexGuard<'_, Execution>, my: usize) {
        while ex.current != my && !ex.abort {
            ex = self.cv.wait(ex).unwrap();
        }
        if ex.abort {
            drop(ex);
            std::panic::panic_any(Abort);
        }
    }

    /// Park until it is `my` turn to run (used by freshly spawned threads
    /// before they execute any user code).
    pub fn wait_initial(&self, my: usize) {
        let ex = self.ex.lock().unwrap();
        self.wait_for_turn(ex, my);
    }

    /// Mark `my` finished, wake joiners, hand the token on.
    pub fn finish(&self, my: usize) {
        let mut ex = self.ex.lock().unwrap();
        ex.status[my] = Status::Finished;
        ex.clocks[my].0[my] += 1;
        for t in 0..ex.status.len() {
            if ex.status[t] == Status::Blocked(BlockReason::Join(my)) {
                ex.status[t] = Status::Runnable;
            }
        }
        if !ex.abort {
            self.pass_to_next_locked(&mut ex);
        } else {
            self.cv.notify_all();
        }
    }

    pub fn fail(&self, message: String) -> ! {
        let mut ex = self.ex.lock().unwrap();
        ex.fail_locked(message);
        self.cv.notify_all();
        drop(ex);
        std::panic::panic_any(Abort);
    }
}

/// Outcome of a full exploration.
pub struct Report {
    /// Number of distinct interleavings executed.
    pub iterations: u64,
    /// Maximum decision-stack depth seen.
    pub max_depth: usize,
}

/// Exploration configuration. See the crate docs for the model semantics.
pub struct Builder {
    /// CHESS-style preemption bound (default 2). Schedules needing more
    /// preemptions than this are not explored.
    pub preemption_bound: usize,
    /// Safety valve on the number of interleavings (default 100 000).
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_iterations: 100_000,
        }
    }
}

/// Serializes concurrent `model()` calls (the test harness runs tests on
/// many threads; explorations must not interleave). A panicking exploration
/// poisons the lock harmlessly — the next caller just takes it over.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

impl Builder {
    /// Explore every interleaving of `f` (up to the preemption bound),
    /// panicking with a replay seed on the first failing schedule.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.run(f) {
            Ok(report) => report,
            Err(failure) => panic!(
                "loom model failure: {}\n  replay with LSML_LOOM_REPLAY={}",
                failure.message,
                if failure.seed.is_empty() {
                    "0"
                } else {
                    &failure.seed
                }
            ),
        }
    }

    /// Like [`check`](Self::check) but returns the failure message of the
    /// first failing schedule; panics if exploration completes cleanly.
    /// Used by negative tests (intentionally-seeded bugs).
    pub fn check_expect_failure<F>(&self, f: F) -> String
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.run(f) {
            Ok(report) => panic!(
                "expected the model to fail, but {} interleavings passed",
                report.iterations
            ),
            Err(failure) => failure.message,
        }
    }

    fn run<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serialize = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let replay = std::env::var("LSML_LOOM_REPLAY").ok().map(|s| {
            s.split('.')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse::<usize>().unwrap_or(0))
                .collect::<Vec<_>>()
        });
        let sched = Arc::new(Scheduler::new(self.preemption_bound, replay));
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut iterations: u64 = 0;
        let mut max_depth: usize = 0;
        let mut exec_id: u64 = 0;

        loop {
            iterations += 1;
            exec_id += 1;
            {
                let mut ex = sched.ex.lock().unwrap();
                ex.clocks.clear();
                ex.sc_clock = VClock::default();
                ex.status.clear();
                ex.current = 0;
                ex.preemptions = 0;
                ex.depth = 0;
                ex.failure = None;
                ex.abort = false;
                ex.done = false;
                ex.steps = 0;
                ex.allocs.clear();
                ex.exec_id = exec_id;
            }
            let root_tid = sched.add_thread();
            debug_assert_eq!(root_tid, 0);
            let handle = crate::thread::spawn_root(Arc::clone(&sched), Arc::clone(&f));
            // The root wrapper + children run the body; wait for the run to
            // resolve one way or the other.
            {
                let mut ex = sched.ex.lock().unwrap();
                while !ex.done && !ex.abort {
                    ex = sched.cv.wait(ex).unwrap();
                }
            }
            // Join every OS thread of this iteration (children handles are
            // collected by thread::spawn into the scheduler-global list).
            crate::thread::join_all(&sched, handle);
            let mut ex = sched.ex.lock().unwrap();
            if ex.failure.is_none() {
                let leaked: Vec<usize> = ex
                    .allocs
                    .iter()
                    .filter(|&(_, &st)| st == AllocState::Live)
                    .map(|(&a, _)| a)
                    .collect();
                if !leaked.is_empty() {
                    ex.fail_locked(format!(
                        "leak: {} tracked allocation(s) never freed (e.g. {:#x})",
                        leaked.len(),
                        leaked[0]
                    ));
                }
            }
            max_depth = max_depth.max(ex.depth);
            if let Some(failure) = ex.failure.take() {
                return Err(failure);
            }
            if iterations >= self.max_iterations {
                eprintln!(
                    "loom: iteration budget {} reached; exploration truncated",
                    self.max_iterations
                );
                break;
            }
            if !ex.advance() {
                break;
            }
        }
        Ok(Report {
            iterations,
            max_depth,
        })
    }
}
