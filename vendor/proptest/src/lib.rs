//! Vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so this crate reimplements
//! the pieces the property tests rely on: the [`Strategy`] trait with
//! `prop_map`, [`any`], range and tuple strategies, [`collection::vec`],
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`, and the
//! `proptest!` macro. Unlike the real crate there is **no shrinking**: a
//! failing case fails with its concrete inputs printed by the panic message.
//! Each test's random stream is seeded from the test name, so runs are
//! deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the dependency-free
        // harness snappy while still exercising the properties.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG handed to strategies by the `proptest!` harness.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker for types with a canonical "uniform over the whole domain"
/// strategy (the stand-in for `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Object-safe strategy view, used by [`Union`] (`prop_oneof!`).
#[doc(hidden)]
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among several strategies with a common value type
/// (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union; used by the `prop_oneof!` macro.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self
    where
        V: 'static,
    {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// Boxes a strategy for `prop_oneof!` (exported for the macro's use).
pub fn boxed_option<V: 'static, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! The usual glob import: strategies, config, and macros.

    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Any, Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_option($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// `cases` times on fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 5usize..10) {
            prop_assert!((5..10).contains(&v));
        }

        #[test]
        fn mapped_strategy_applies(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_respects_len(v in collection::vec(any::<bool>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn oneof_hits_every_branch(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn tuples_compose((a, b) in (any::<u8>(), 0u64..4), c in any::<bool>()) {
            prop_assert!(u64::from(a) < 256 && b < 4);
            let _ = c;
        }
    }
}
