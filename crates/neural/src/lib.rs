//! Small multi-layer perceptrons with logic synthesis.
//!
//! Several teams trained MLPs and then had to turn floating-point networks
//! into AIGs under the 5000-node budget. This crate reproduces that tool
//! chain:
//!
//! * [`Mlp`] — dense feed-forward networks with sigmoid, ReLU or **sine**
//!   activations (Team 8's periodic activation for parity-like functions),
//!   trained by minibatch SGD on the logistic loss.
//! * [`prune_to_fanin`] — Team 3's magnitude-based connection pruning with
//!   retraining, iterated until every neuron has at most `max_fanin` live
//!   inputs (they used 12).
//! * [`Mlp::to_aig_quantized`] — neuron-to-LUT synthesis: each neuron's
//!   activation is rounded to a bit and enumerated into a truth table over
//!   its live binary inputs (Chatterjee's LUT conversion as used by Team 3).
//! * [`Mlp::to_truth_table`] — full input enumeration for small networks
//!   (Team 8's approach for benchmarks with under ~20 inputs).
//! * [`Mlp::input_importance`] — first-layer weight magnitudes, Team 5's
//!   NN-guided feature selection.
//!
//! # Examples
//!
//! ```
//! use lsml_neural::{Mlp, MlpConfig};
//! use lsml_pla::{Dataset, Pattern};
//!
//! let mut ds = Dataset::new(2);
//! for m in 0..4u64 {
//!     ds.push(Pattern::from_index(m, 2), m == 0b11); // AND
//! }
//! let cfg = MlpConfig { hidden: vec![4], epochs: 400, ..MlpConfig::default() };
//! let mlp = Mlp::train(&ds, &cfg);
//! assert!(mlp.accuracy(&ds) > 0.99);
//! ```

mod mlp;
mod synth;

pub use mlp::{Activation, Mlp, MlpConfig};
pub use synth::prune_to_fanin;
