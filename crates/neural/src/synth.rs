//! Pruning and neuron-to-LUT synthesis.

use lsml_aig::circuits::truth_table_cone;
use lsml_aig::{Aig, Lit};
use lsml_pla::{Dataset, TruthTable};

use crate::mlp::{Activation, Mlp, MlpConfig};

/// Team 3's connection pruning: repeatedly drop the smallest-magnitude
/// fraction of each over-budget neuron's live weights and retrain, until
/// every neuron's fanin is at most `max_fanin` (they used 12; the LUT
/// enumeration is `2^fanin` so keep it modest). Returns the number of
/// prune/retrain rounds performed.
pub fn prune_to_fanin(mlp: &mut Mlp, ds: &Dataset, cfg: &MlpConfig, max_fanin: usize) -> usize {
    let mut rounds = 0;
    while mlp.max_fanin() > max_fanin {
        rounds += 1;
        for layer in mlp.layers.iter_mut() {
            for o in 0..layer.n_out {
                let live: Vec<usize> = (0..layer.n_in)
                    .filter(|&i| layer.mask[o * layer.n_in + i])
                    .collect();
                if live.len() <= max_fanin {
                    continue;
                }
                // Drop the weakest 30% of live connections (at least one,
                // never below the budget in a single over-shoot).
                let mut by_mag: Vec<usize> = live.clone();
                by_mag.sort_by(|&a, &b| {
                    layer.weights[o * layer.n_in + a]
                        .abs()
                        .partial_cmp(&layer.weights[o * layer.n_in + b].abs())
                        .expect("finite weights")
                });
                let drop = ((live.len() as f64 * 0.3).ceil() as usize)
                    .clamp(1, live.len() - max_fanin.min(live.len()));
                for &i in by_mag.iter().take(drop) {
                    layer.mask[o * layer.n_in + i] = false;
                }
            }
        }
        // Recover accuracy with a short retraining pass.
        let retrain_cfg = MlpConfig {
            epochs: (cfg.epochs / 4).max(5),
            ..cfg.clone()
        };
        mlp.retrain(ds, &retrain_cfg);
    }
    rounds
}

impl Mlp {
    /// Synthesizes the pruned network into an AIG by rounding every neuron
    /// into a LUT over its live inputs (Team 3's method, following
    /// Chatterjee's neuron-to-LUT transformation). The first layer sees the
    /// raw Boolean inputs; later layers see the previous layer's LUT outputs.
    ///
    /// # Panics
    ///
    /// Panics if any neuron's live fanin exceeds `max_enum_fanin` — prune
    /// first with [`prune_to_fanin`].
    pub fn to_aig_quantized(&self, max_enum_fanin: usize) -> Aig {
        let mut aig = Aig::new(self.num_inputs());
        let mut lits: Vec<Lit> = aig.inputs();
        for (l, layer) in self.layers.iter().enumerate() {
            let is_output = l + 1 == self.layers.len();
            let act = if is_output {
                Activation::Sigmoid
            } else {
                self.activation
            };
            let mut next = Vec::with_capacity(layer.n_out);
            for o in 0..layer.n_out {
                let live: Vec<usize> = (0..layer.n_in)
                    .filter(|&i| layer.mask[o * layer.n_in + i])
                    .collect();
                assert!(
                    live.len() <= max_enum_fanin,
                    "neuron fanin {} exceeds enumeration budget {max_enum_fanin}; prune first",
                    live.len()
                );
                let table = TruthTable::from_fn(live.len(), |m| {
                    let mut acc = layer.bias[o];
                    for (b, &i) in live.iter().enumerate() {
                        if (m >> b) & 1 == 1 {
                            acc += layer.weights[o * layer.n_in + i];
                        }
                    }
                    quantize(act, acc)
                });
                let srcs: Vec<Lit> = live.iter().map(|&i| lits[i]).collect();
                next.push(truth_table_cone(&mut aig, &table, &srcs));
            }
            lits = next;
        }
        aig.add_output(lits[0]);
        aig.cleanup();
        aig
    }

    /// The quantized-network prediction (what [`Mlp::to_aig_quantized`]
    /// computes), evaluated in software.
    pub fn predict_quantized(&self, p: &lsml_pla::Pattern) -> bool {
        let mut values: Vec<bool> = p.iter().collect();
        for (l, layer) in self.layers.iter().enumerate() {
            let is_output = l + 1 == self.layers.len();
            let act = if is_output {
                Activation::Sigmoid
            } else {
                self.activation
            };
            values = (0..layer.n_out)
                .map(|o| {
                    let mut acc = layer.bias[o];
                    let row = o * layer.n_in;
                    for (i, &v) in values.iter().enumerate().take(layer.n_in) {
                        if layer.mask[row + i] && v {
                            acc += layer.weights[row + i];
                        }
                    }
                    quantize(act, acc)
                })
                .collect();
        }
        values[0]
    }

    /// Exhaustively enumerates the exact floating-point network into a truth
    /// table (Team 8's small-input synthesis). `None` if the input count
    /// exceeds [`lsml_pla::truth::MAX_TRUTH_VARS`].
    pub fn to_truth_table(&self) -> Option<TruthTable> {
        if self.num_inputs() > lsml_pla::truth::MAX_TRUTH_VARS {
            return None;
        }
        let n = self.num_inputs();
        Some(TruthTable::from_fn(n, |m| {
            self.predict(&lsml_pla::Pattern::from_index(u64::from(m), n))
        }))
    }
}

/// Rounds a neuron's post-activation to one bit.
fn quantize(act: Activation, pre: f32) -> bool {
    match act {
        // sigmoid(x) > 0.5  <=>  x > 0
        Activation::Sigmoid => pre > 0.0,
        Activation::Relu => pre.max(0.0) > 0.5,
        Activation::Sine => pre.sin() > 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_pla::Pattern;

    fn full_dataset(f: impl Fn(u64) -> bool, nv: usize) -> Dataset {
        let mut ds = Dataset::new(nv);
        for m in 0..(1u64 << nv) {
            ds.push(Pattern::from_index(m, nv), f(m));
        }
        ds
    }

    #[test]
    fn pruning_reaches_fanin_budget() {
        let ds = full_dataset(|m| (m & 0b11) == 0b11, 8);
        let cfg = MlpConfig {
            hidden: vec![10],
            epochs: 120,
            ..MlpConfig::default()
        };
        let mut mlp = Mlp::train(&ds, &cfg);
        assert!(mlp.max_fanin() > 4);
        let rounds = prune_to_fanin(&mut mlp, &ds, &cfg, 4);
        assert!(rounds > 0);
        assert!(mlp.max_fanin() <= 4);
        // Simple target should survive pruning.
        assert!(mlp.accuracy(&ds) > 0.85, "acc {}", mlp.accuracy(&ds));
    }

    #[test]
    fn quantized_aig_matches_quantized_prediction() {
        let ds = full_dataset(|m| m & 1 == 1 || m & 0b100 != 0, 5);
        let cfg = MlpConfig {
            hidden: vec![6],
            epochs: 150,
            ..MlpConfig::default()
        };
        let mut mlp = Mlp::train(&ds, &cfg);
        prune_to_fanin(&mut mlp, &ds, &cfg, 4);
        let aig = mlp.to_aig_quantized(4);
        for m in 0..32u64 {
            let p = Pattern::from_index(m, 5);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(
                aig.eval(&bits)[0],
                mlp.predict_quantized(&p),
                "mismatch at {m:05b}"
            );
        }
    }

    #[test]
    fn quantized_stays_close_to_exact_on_easy_function() {
        let ds = full_dataset(|m| m & 0b1000 != 0, 4);
        let cfg = MlpConfig {
            hidden: vec![4],
            epochs: 300,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        let agree = (0..16u64)
            .filter(|&m| {
                let p = Pattern::from_index(m, 4);
                mlp.predict(&p) == mlp.predict_quantized(&p)
            })
            .count();
        assert!(agree >= 14, "agreement {agree}/16");
    }

    #[test]
    fn truth_table_enumeration_matches_predict() {
        let ds = full_dataset(|m| (m * 5) % 3 == 1, 4);
        let cfg = MlpConfig {
            hidden: vec![6],
            epochs: 200,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        let table = mlp.to_truth_table().expect("4 inputs fits");
        for m in 0..16u32 {
            let p = Pattern::from_index(u64::from(m), 4);
            assert_eq!(table.get(m), mlp.predict(&p));
        }
    }

    #[test]
    #[should_panic(expected = "prune first")]
    fn oversized_fanin_panics_without_pruning() {
        let ds = full_dataset(|m| m > 3, 10);
        let cfg = MlpConfig {
            hidden: vec![4],
            epochs: 5,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        let _ = mlp.to_aig_quantized(4);
    }
}
