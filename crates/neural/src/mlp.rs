//! Dense MLPs trained with minibatch SGD.

use lsml_pla::{Dataset, Pattern};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hidden-layer activation function.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Activation {
    /// Logistic sigmoid (Team 3's 3-layer network).
    #[default]
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Sine — Team 8's periodic activation, good at latent-frequency
    /// functions such as parity.
    Sine,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Sine => x.sin(),
        }
    }

    /// Derivative expressed in terms of the pre-activation `x` and the
    /// activation value `y`.
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sine => x.cos(),
        }
    }
}

/// MLP architecture and training hyper-parameters.
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Hidden layer widths (the output layer is always a single sigmoid
    /// unit). Team 8 halved the width between layers.
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![32, 16],
            activation: Activation::Sigmoid,
            epochs: 60,
            learning_rate: 0.5,
            batch_size: 32,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// One dense layer: row-major weights `[out][in]` with a pruning mask.
#[derive(Clone, Debug)]
pub(crate) struct Dense {
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) mask: Vec<bool>,
    pub(crate) bias: Vec<f32>,
}

impl Dense {
    fn new(n_in: usize, n_out: usize, gain: f32, rng: &mut StdRng) -> Self {
        let scale = gain * (2.0 / (n_in + n_out) as f32).sqrt();
        Dense {
            n_in,
            n_out,
            weights: (0..n_in * n_out)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect(),
            mask: vec![true; n_in * n_out],
            bias: vec![0.0; n_out],
        }
    }

    pub(crate) fn weight(&self, o: usize, i: usize) -> f32 {
        if self.mask[o * self.n_in + i] {
            self.weights[o * self.n_in + i]
        } else {
            0.0
        }
    }

    fn forward(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for o in 0..self.n_out {
            let mut acc = self.bias[o];
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let mrow = &self.mask[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                if mrow[i] {
                    acc += row[i] * input[i];
                }
            }
            out.push(acc);
        }
    }

    /// Live (unmasked) fanin of neuron `o`.
    pub(crate) fn fanin(&self, o: usize) -> usize {
        self.mask[o * self.n_in..(o + 1) * self.n_in]
            .iter()
            .filter(|&&m| m)
            .count()
    }
}

/// A feed-forward binary classifier.
///
/// See the crate docs for a training example.
#[derive(Clone, Debug)]
pub struct Mlp {
    pub(crate) layers: Vec<Dense>,
    pub(crate) activation: Activation,
    num_inputs: usize,
}

impl Mlp {
    /// Trains a fresh network on the dataset.
    pub fn train(ds: &Dataset, cfg: &MlpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![ds.num_inputs()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let n_layers = dims.len() - 1;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| {
                // Sine hidden units need larger initial weights to leave the
                // linear regime of sin(x) ~ x (SIREN's first-layer scaling);
                // the sigmoid output layer keeps the standard Xavier gain.
                let gain = if cfg.activation == Activation::Sine && l + 1 < n_layers {
                    8.0
                } else {
                    1.0
                };
                Dense::new(w[0], w[1], gain, &mut rng)
            })
            .collect();
        let mut mlp = Mlp {
            layers,
            activation: cfg.activation,
            num_inputs: ds.num_inputs(),
        };
        mlp.fit(ds, cfg, &mut rng);
        mlp
    }

    /// Continues training an existing network (used after pruning).
    pub fn retrain(&mut self, ds: &Dataset, cfg: &MlpConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead_beef);
        self.fit(ds, cfg, &mut rng);
    }

    fn fit(&mut self, ds: &Dataset, cfg: &MlpConfig, rng: &mut StdRng) {
        if ds.is_empty() {
            return;
        }
        let inputs: Vec<Vec<f32>> = ds
            .patterns()
            .iter()
            .map(|p| p.iter().map(|b| if b { 1.0 } else { 0.0 }).collect())
            .collect();
        let targets: Vec<f32> = ds
            .outputs()
            .iter()
            .map(|&o| if o { 1.0 } else { 0.0 })
            .collect();
        let mut order: Vec<usize> = (0..ds.len()).collect();

        for _ in 0..cfg.epochs {
            order.shuffle(rng);
            for batch in order.chunks(cfg.batch_size.max(1)) {
                self.sgd_step(batch, &inputs, &targets, cfg);
            }
        }
    }

    /// One SGD step over a minibatch (gradients averaged over the batch).
    fn sgd_step(&mut self, batch: &[usize], inputs: &[Vec<f32>], targets: &[f32], cfg: &MlpConfig) {
        let lr = cfg.learning_rate / batch.len() as f32;
        for &idx in batch {
            // Forward pass keeping pre-activations and activations.
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
            let mut pres: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
            acts.push(inputs[idx].clone());
            for (l, layer) in self.layers.iter().enumerate() {
                let mut pre = Vec::new();
                layer.forward(&acts[l], &mut pre);
                let is_output = l + 1 == self.layers.len();
                let act: Vec<f32> = pre
                    .iter()
                    .map(|&x| {
                        if is_output {
                            Activation::Sigmoid.apply(x)
                        } else {
                            self.activation.apply(x)
                        }
                    })
                    .collect();
                pres.push(pre);
                acts.push(act);
            }
            // Backward pass: logistic loss gives (p - y) at the output.
            let mut delta = vec![acts.last().expect("output")[0] - targets[idx]];
            for l in (0..self.layers.len()).rev() {
                let is_output = l + 1 == self.layers.len();
                let act_fn = if is_output {
                    Activation::Sigmoid
                } else {
                    self.activation
                };
                // delta currently holds dL/d(activation); fold in activation
                // derivative except at the sigmoid output where (p - y)
                // already includes it.
                let local: Vec<f32> = if is_output {
                    delta.clone()
                } else {
                    delta
                        .iter()
                        .enumerate()
                        .map(|(o, &d)| d * act_fn.derivative(pres[l][o], acts[l + 1][o]))
                        .collect()
                };
                // Gradient wrt previous activations (before updating weights).
                let layer = &self.layers[l];
                let mut prev_delta = vec![0.0f32; layer.n_in];
                for (o, &lo) in local.iter().enumerate().take(layer.n_out) {
                    let row = o * layer.n_in;
                    for (i, pd) in prev_delta.iter_mut().enumerate() {
                        if layer.mask[row + i] {
                            *pd += lo * layer.weights[row + i];
                        }
                    }
                }
                // Weight update.
                let layer = &mut self.layers[l];
                for (o, &lo) in local.iter().enumerate().take(layer.n_out) {
                    let row = o * layer.n_in;
                    for (i, &act) in acts[l].iter().enumerate().take(layer.n_in) {
                        let w = row + i;
                        if layer.mask[w] {
                            let grad = lo * act + cfg.weight_decay * layer.weights[w];
                            layer.weights[w] -= lr * grad;
                        }
                    }
                    layer.bias[o] -= lr * lo;
                }
                delta = prev_delta;
            }
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The probability of class 1 for one pattern.
    pub fn predict_proba(&self, p: &Pattern) -> f32 {
        let mut values: Vec<f32> = p.iter().map(|b| if b { 1.0 } else { 0.0 }).collect();
        let mut next = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&values, &mut next);
            let is_output = l + 1 == self.layers.len();
            values = next
                .iter()
                .map(|&x| {
                    if is_output {
                        Activation::Sigmoid.apply(x)
                    } else {
                        self.activation.apply(x)
                    }
                })
                .collect();
        }
        values[0]
    }

    /// Hard classification at threshold 0.5.
    pub fn predict(&self, p: &Pattern) -> bool {
        self.predict_proba(p) > 0.5
    }

    /// Accuracy over a dataset.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        ds.accuracy_of(|p| self.predict(p))
    }

    /// Team 5's importance proxy: the summed first-layer |weight| feeding
    /// out of each input.
    pub fn input_importance(&self) -> Vec<f64> {
        let first = &self.layers[0];
        (0..first.n_in)
            .map(|i| {
                (0..first.n_out)
                    .map(|o| f64::from(first.weight(o, i).abs()))
                    .sum()
            })
            .collect()
    }

    /// Maximum live fanin over all neurons.
    pub fn max_fanin(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| (0..l.n_out).map(|o| l.fanin(o)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_dataset(f: impl Fn(u64) -> bool, nv: usize) -> Dataset {
        let mut ds = Dataset::new(nv);
        for m in 0..(1u64 << nv) {
            ds.push(Pattern::from_index(m, nv), f(m));
        }
        ds
    }

    #[test]
    fn learns_linear_separable() {
        let ds = full_dataset(|m| m & 1 == 1, 4);
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 200,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        assert!((mlp.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let ds = full_dataset(|m| (m ^ (m >> 1)) & 1 == 1, 2);
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 2000,
            learning_rate: 1.0,
            seed: 3,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        assert!(
            (mlp.accuracy(&ds) - 1.0).abs() < 1e-12,
            "acc {}",
            mlp.accuracy(&ds)
        );
    }

    #[test]
    fn sine_activation_can_learn_parity() {
        // Team 8's observation: the sine activation captures periodic
        // structure like parity. Training is seed-sensitive (the paper cites
        // its "exponential increase in local minima"), so take the best of a
        // few restarts — what their grid search effectively did.
        let ds = full_dataset(|m| m.count_ones() % 2 == 1, 4);
        let best = (0..6)
            .map(|seed| {
                let cfg = MlpConfig {
                    hidden: vec![12],
                    epochs: 800,
                    learning_rate: 1.0,
                    activation: Activation::Sine,
                    seed,
                    ..MlpConfig::default()
                };
                Mlp::train(&ds, &cfg).accuracy(&ds)
            })
            .fold(0.0f64, f64::max);
        assert!(best > 0.9, "best sine accuracy {best}");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = full_dataset(|m| m % 3 == 0, 5);
        let cfg = MlpConfig {
            epochs: 20,
            ..MlpConfig::default()
        };
        let a = Mlp::train(&ds, &cfg);
        let b = Mlp::train(&ds, &cfg);
        for m in 0..32u64 {
            let p = Pattern::from_index(m, 5);
            assert_eq!(a.predict(&p), b.predict(&p));
        }
    }

    #[test]
    fn importance_highlights_live_input() {
        let ds = full_dataset(|m| m & 0b10 != 0, 4);
        let cfg = MlpConfig {
            hidden: vec![6],
            epochs: 300,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&ds, &cfg);
        let imp = mlp.input_importance();
        let max = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i);
        assert_eq!(max, Some(1));
    }

    #[test]
    fn empty_dataset_is_harmless() {
        let ds = Dataset::new(3);
        let mlp = Mlp::train(&ds, &MlpConfig::default());
        let _ = mlp.predict(&Pattern::from_index(0, 3));
    }
}
