//! Property tests: the minimizer always implements the care set, and the
//! synthesized AIG matches the cover.

use lsml_espresso::{cover_to_aig, minimize_dataset, minimize_dataset_row_major, EspressoConfig};
use lsml_pla::{Dataset, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const NV: usize = 7;

/// Random incompletely specified function: a random subset of minterms with
/// random consistent labels.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (any::<u64>(), 1usize..80).prop_map(|(seed, n)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut minterms: Vec<u64> = (0..(1u64 << NV)).collect();
        minterms.shuffle(&mut rng);
        let mut ds = Dataset::new(NV);
        for &m in minterms.iter().take(n) {
            // Deterministic but arbitrary labelling derived from the seed.
            let label = (m.wrapping_mul(seed | 1).count_ones() & 1) == 1;
            ds.push(Pattern::from_index(m, NV), label);
        }
        ds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn result_implements_care_set(ds in arb_dataset()) {
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        for (p, o) in ds.iter() {
            prop_assert_eq!(cover.eval(p), o, "wrong on {}", p);
        }
    }

    #[test]
    fn first_irredundant_implements_care_set(ds in arb_dataset()) {
        let cfg = EspressoConfig { first_irredundant: true, ..EspressoConfig::default() };
        let cover = minimize_dataset(&ds, &cfg);
        for (p, o) in ds.iter() {
            prop_assert_eq!(cover.eval(p), o, "wrong on {}", p);
        }
    }

    #[test]
    fn cube_count_never_exceeds_positives(ds in arb_dataset()) {
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        prop_assert!(cover.len() <= ds.count_positive());
    }

    #[test]
    fn columnar_scan_is_cube_identical_to_row_major(ds in arb_dataset()) {
        // The columnar engine replays the row-major greedy with the same
        // integer counts and orders, so the covers must be identical cube
        // for cube — in both espresso modes.
        for first_irredundant in [false, true] {
            let cfg = EspressoConfig { first_irredundant, ..EspressoConfig::default() };
            let cols = minimize_dataset(&ds, &cfg);
            let rows = minimize_dataset_row_major(&ds, &cfg);
            prop_assert_eq!(
                cols.cubes(), rows.cubes(),
                "diverged with first_irredundant={}", first_irredundant
            );
        }
    }

    #[test]
    fn synthesized_aig_matches_cover(ds in arb_dataset()) {
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        let aig = cover_to_aig(&cover);
        for m in 0..(1u64 << NV) {
            let p = Pattern::from_index(m, NV);
            let bits: Vec<bool> = p.iter().collect();
            prop_assert_eq!(aig.eval(&bits)[0], cover.eval(&p));
        }
    }
}
