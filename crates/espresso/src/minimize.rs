//! The EXPAND / IRREDUNDANT / REDUCE loop.
//!
//! # Columnar scans
//!
//! The minimizer's inner loops — "which positives does this cube cover",
//! "does this enlarged cube swallow a negative", "how many offset minterms
//! block this literal" — are all containment scans of one cube against a
//! fixed pattern set. They run *columnar*: the on-set and off-set are
//! transposed once into [`BitColumns`] (64 patterns per word), a cube's
//! containment mask is the `AND` of its literals' columns, and every count
//! is a popcount through `lsml_pla::kernels`. EXPAND tracks per-negative
//! mismatch multiplicity with two bit planes (`ones` = ≥1 mismatch, `twos`
//! = ≥2), so "can literal `v` go" is one fused popcount over
//! `mismatchᵥ ∧ ones ∧ ¬twos` instead of a cube-by-cube offset walk.
//!
//! The pre-columnar row-major implementation is retained, bit-identical,
//! as [`minimize_dataset_row_major`] — the differential-test oracle and
//! the benchmark baseline.

use lsml_pla::kernels::for_each_set_bit;
use lsml_pla::{BitColumns, Cover, Cube, Dataset, Pattern, Trit};

/// Tuning knobs for the minimizer.
#[derive(Clone, Debug)]
pub struct EspressoConfig {
    /// Stop after the first IRREDUNDANT pass (Team 1's fast mode) instead of
    /// iterating EXPAND/REDUCE to a fixpoint.
    pub first_irredundant: bool,
    /// Maximum number of EXPAND→IRREDUNDANT→REDUCE iterations.
    pub max_loops: usize,
    /// Upper bound on the number of cubes that receive full expansion; any
    /// remaining uncovered positive examples are kept as raw minterms. Guards
    /// against quadratic blow-up on very wide benchmarks.
    pub max_expanded_cubes: usize,
}

impl Default for EspressoConfig {
    fn default() -> Self {
        EspressoConfig {
            first_irredundant: false,
            max_loops: 4,
            max_expanded_cubes: 20_000,
        }
    }
}

/// Minimizes the incompletely specified function given by a labelled dataset:
/// the result covers every positive example and no negative example.
///
/// # Panics
///
/// Panics if the dataset contains the same pattern with both labels
/// (contradictory care set).
pub fn minimize_dataset(ds: &Dataset, cfg: &EspressoConfig) -> Cover {
    minimize_dataset_impl(ds, cfg, true)
}

/// The pre-columnar minimizer: cube-by-cube `contains` walks over the
/// pattern lists. Kept as the reference implementation for differential
/// tests and the `kernels` benchmark baseline; prefer [`minimize_dataset`].
#[doc(hidden)]
pub fn minimize_dataset_row_major(ds: &Dataset, cfg: &EspressoConfig) -> Cover {
    minimize_dataset_impl(ds, cfg, false)
}

fn minimize_dataset_impl(ds: &Dataset, cfg: &EspressoConfig, columnar: bool) -> Cover {
    let positives: Vec<Pattern> = ds
        .iter()
        .filter(|&(_, o)| o)
        .map(|(p, _)| p.clone())
        .collect();
    let negatives: Vec<Pattern> = ds
        .iter()
        .filter(|&(_, o)| !o)
        .map(|(p, _)| p.clone())
        .collect();
    let seeds: Vec<Cube> = positives.iter().map(Cube::from_pattern).collect();
    minimize(
        ds.num_inputs(),
        seeds,
        &positives,
        &negatives,
        cfg,
        /* verify_consistent = */ true,
        columnar,
    )
}

/// Minimizes a seed cover (for example, the SOP extracted from a decision
/// tree) against a labelled dataset. The result covers every positive example
/// the seed cover covered and adds no negative example beyond those the seed
/// cover already misclassified.
pub fn minimize_cover(seeds: &Cover, ds: &Dataset, cfg: &EspressoConfig) -> Cover {
    assert_eq!(seeds.num_vars(), ds.num_inputs(), "arity mismatch");
    let positives: Vec<Pattern> = ds
        .iter()
        .filter(|(p, o)| *o && seeds.eval(p))
        .map(|(p, _)| p.clone())
        .collect();
    // Blocking set: negatives the seed cover classifies correctly today; we
    // must not lose that. Negatives already inside the seed cover are its
    // training errors and cannot constrain expansion.
    let negatives: Vec<Pattern> = ds
        .iter()
        .filter(|(p, o)| !*o && !seeds.eval(p))
        .map(|(p, _)| p.clone())
        .collect();
    minimize(
        ds.num_inputs(),
        seeds.cubes().to_vec(),
        &positives,
        &negatives,
        cfg,
        false,
        true,
    )
}

/// The containment-scan engine: row-major cube walks or the columnar
/// transpose. Both produce bit-identical covers; `minimize` is generic over
/// the choice so the reference path stays exercised.
enum Engine {
    Rows,
    Columns(Box<ColumnScan>),
}

impl Engine {
    fn new(num_vars: usize, positives: &[Pattern], negatives: &[Pattern], columnar: bool) -> Self {
        if columnar {
            Engine::Columns(Box::new(ColumnScan::new(num_vars, positives, negatives)))
        } else {
            Engine::Rows
        }
    }

    fn expand(
        &mut self,
        num_vars: usize,
        seeds: Vec<Cube>,
        positives: &[Pattern],
        negatives: &[Pattern],
        cfg: &EspressoConfig,
    ) -> Cover {
        match self {
            Engine::Rows => expand_rows(num_vars, seeds, positives, negatives, cfg),
            Engine::Columns(scan) => scan.expand(num_vars, seeds, cfg),
        }
    }

    fn irredundant(&mut self, cover: &mut Cover, positives: &[Pattern]) {
        match self {
            Engine::Rows => irredundant_rows(cover, positives),
            Engine::Columns(scan) => scan.irredundant(cover, positives.len()),
        }
    }

    fn reduce(&mut self, cover: &mut Cover, positives: &[Pattern]) {
        match self {
            Engine::Rows => reduce_rows(cover, positives),
            Engine::Columns(scan) => scan.reduce(cover, positives),
        }
    }

    /// The consistency pre-check: the index of a positive example that also
    /// appears in the off-set, if any. The columnar engine scans each
    /// negative's containment mask over the on-set columns (a full-pattern
    /// cube contains exactly the equal patterns) — the last row-major scan
    /// in the minimizer, widened onto columns.
    fn find_contradiction(
        &mut self,
        positives: &[Pattern],
        negatives: &[Pattern],
    ) -> Option<usize> {
        match self {
            Engine::Rows => positives.iter().position(|p| negatives.contains(p)),
            Engine::Columns(scan) => scan.find_contradiction(negatives),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn minimize(
    num_vars: usize,
    seeds: Vec<Cube>,
    positives: &[Pattern],
    negatives: &[Pattern],
    cfg: &EspressoConfig,
    verify_consistent: bool,
    columnar: bool,
) -> Cover {
    if positives.is_empty() {
        return Cover::new(num_vars);
    }

    let mut engine = Engine::new(num_vars, positives, negatives, columnar);
    if verify_consistent {
        if let Some(i) = engine.find_contradiction(positives, negatives) {
            panic!("contradictory labels for pattern {}", positives[i]);
        }
    }
    let mut cover = engine.expand(num_vars, seeds, positives, negatives, cfg);
    engine.irredundant(&mut cover, positives);
    if cfg.first_irredundant {
        return cover;
    }

    let mut best = cover.clone();
    for _ in 0..cfg.max_loops {
        engine.reduce(&mut cover, positives);
        cover = engine.expand(
            num_vars,
            cover.into_iter().collect(),
            positives,
            negatives,
            cfg,
        );
        engine.irredundant(&mut cover, positives);
        if cost(&cover) < cost(&best) {
            best = cover.clone();
        } else {
            break;
        }
    }
    best
}

/// Cover cost: primary = cube count, secondary = literal count.
fn cost(cover: &Cover) -> (usize, usize) {
    (cover.len(), cover.literal_count())
}

/// EXPAND: enlarge each seed cube literal-by-literal, blocked by the offset.
/// Seeds whose positive examples are already covered are skipped, so strong
/// expansion keeps the cube count low. (Row-major reference path.)
fn expand_rows(
    num_vars: usize,
    seeds: Vec<Cube>,
    positives: &[Pattern],
    negatives: &[Pattern],
    cfg: &EspressoConfig,
) -> Cover {
    let mut out = Cover::new(num_vars);
    let mut covered = vec![false; positives.len()];
    let mut expanded = 0usize;

    for seed in seeds {
        // Skip seeds that no longer contribute any uncovered positive.
        let contributes = positives
            .iter()
            .enumerate()
            .any(|(i, p)| !covered[i] && seed.contains(p));
        if !contributes {
            continue;
        }
        let cube = if expanded < cfg.max_expanded_cubes {
            expanded += 1;
            expand_cube_rows(&seed, negatives)
        } else {
            seed
        };
        for (i, p) in positives.iter().enumerate() {
            if !covered[i] && cube.contains(p) {
                covered[i] = true;
            }
        }
        out.push(cube);
    }
    out.remove_single_cube_containment();
    out
}

/// Expands one cube: greedily removes literals (in ascending order of how
/// many distance-1 offset minterms block them) as long as the enlarged cube
/// stays clear of every negative example. (Row-major reference path.)
fn expand_cube_rows(seed: &Cube, negatives: &[Pattern]) -> Cube {
    let mut cube = seed.clone();
    // Count, per literal, the offset patterns at distance 1 clashing exactly
    // on that literal — these definitely block its removal, so try the least
    // blocked literals first.
    let mut block = vec![0u32; cube.num_vars()];
    for r in negatives {
        let mut clash_var = None;
        let mut clashes = 0;
        for (var, pol) in cube.literals() {
            if r.get(var) != pol {
                clashes += 1;
                if clashes > 1 {
                    break;
                }
                clash_var = Some(var);
            }
        }
        if clashes == 1 {
            block[clash_var.expect("one clash")] += 1;
        }
    }
    let mut order: Vec<usize> = cube.literals().map(|(v, _)| v).collect();
    order.sort_by_key(|&v| (block[v], v));

    for v in order {
        let candidate = cube.without_literal(v);
        if !negatives.iter().any(|r| candidate.contains(r)) {
            cube = candidate;
        }
    }
    cube
}

/// IRREDUNDANT: drop cubes all of whose positive examples are multiply
/// covered. Cubes with more literals (smaller cubes) are dropped first.
/// (Row-major reference path.)
fn irredundant_rows(cover: &mut Cover, positives: &[Pattern]) {
    // multiplicity[i] = how many cubes cover positive example i.
    let mut multiplicity = vec![0u32; positives.len()];
    let mut covers: Vec<Vec<u32>> = Vec::with_capacity(cover.len());
    for cube in cover.iter() {
        let mut mine = Vec::new();
        for (i, p) in positives.iter().enumerate() {
            if cube.contains(p) {
                multiplicity[i] += 1;
                mine.push(i as u32);
            }
        }
        covers.push(mine);
    }
    drop_multiply_covered(cover, covers, &mut multiplicity);
}

/// Shared tail of IRREDUNDANT once per-cube coverage lists exist: drop
/// cubes (most-literals first) whose positives are all multiply covered.
fn drop_multiply_covered(cover: &mut Cover, covers: Vec<Vec<u32>>, multiplicity: &mut [u32]) {
    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(cover[c].literal_count()));

    let mut dead = vec![false; cover.len()];
    for c in order {
        let removable = covers[c].iter().all(|&i| multiplicity[i as usize] >= 2);
        if removable {
            dead[c] = true;
            for &i in &covers[c] {
                multiplicity[i as usize] -= 1;
            }
        }
    }
    let mut keep = dead.iter().map(|d| !d);
    cover.cubes_mut().retain(|_| keep.next().expect("mask"));
}

/// REDUCE: shrink every cube to the supercube of the positive examples that
/// only it covers (dropping cubes that uniquely cover nothing).
/// (Row-major reference path.)
fn reduce_rows(cover: &mut Cover, positives: &[Pattern]) {
    let mut multiplicity = vec![0u32; positives.len()];
    for cube in cover.iter() {
        for (i, p) in positives.iter().enumerate() {
            if cube.contains(p) {
                multiplicity[i] += 1;
            }
        }
    }
    let num_vars = cover.num_vars();
    let mut reduced: Vec<Cube> = Vec::with_capacity(cover.len());
    for cube in cover.iter() {
        let unique: Vec<&Pattern> = positives
            .iter()
            .enumerate()
            .filter(|(i, p)| multiplicity[*i] == 1 && cube.contains(p))
            .map(|(_, p)| p)
            .collect();
        if unique.is_empty() {
            // Covered elsewhere: the cube would be redundant; drop it and
            // release its shared examples.
            for (i, p) in positives.iter().enumerate() {
                if cube.contains(p) {
                    multiplicity[i] -= 1;
                }
            }
            continue;
        }
        reduced.push(supercube(num_vars, unique.into_iter()));
    }
    *cover = Cover::from_cubes(num_vars, reduced);
}

/// The columnar containment engine: on-set and off-set transposed once into
/// [`BitColumns`], every stage a batched mask scan. All counts and greedy
/// orders are integers computed in the same order as the row-major
/// reference, so the resulting covers are identical cube for cube.
struct ColumnScan {
    pos: BitColumns,
    neg: BitColumns,
    /// Valid-example mask over the off-set (tail bits cleared).
    neg_valid: Vec<u64>,
    /// Scratch planes for EXPAND's mismatch-multiplicity counting.
    ones: Vec<u64>,
    twos: Vec<u64>,
    /// Scratch for cube containment masks.
    matches: Vec<u64>,
}

impl ColumnScan {
    fn new(num_vars: usize, positives: &[Pattern], negatives: &[Pattern]) -> Self {
        let pos = BitColumns::from_patterns(num_vars, positives);
        let neg = BitColumns::from_patterns(num_vars, negatives);
        let neg_valid = neg.full_mask();
        let nw = neg.words_per_column();
        ColumnScan {
            pos,
            neg,
            neg_valid,
            ones: vec![0; nw],
            twos: vec![0; nw],
            matches: Vec::new(),
        }
    }

    /// Packed mask of `cols` patterns contained in `cube`: the full mask
    /// AND-ed with each literal's (possibly complemented) column. The tail
    /// stays clean because the starting mask's tail is clean.
    fn cube_match_into(cols: &BitColumns, cube: &Cube, out: &mut Vec<u64>) {
        cols.full_mask_into(out);
        for (var, pol) in cube.literals() {
            let col = cols.column(var);
            if pol {
                for (o, &c) in out.iter_mut().zip(col) {
                    *o &= c;
                }
            } else {
                for (o, &c) in out.iter_mut().zip(col) {
                    *o &= !c;
                }
            }
        }
    }

    fn expand(&mut self, num_vars: usize, seeds: Vec<Cube>, cfg: &EspressoConfig) -> Cover {
        let mut out = Cover::new(num_vars);
        let mut covered = vec![0u64; self.pos.words_per_column()];
        let mut expanded = 0usize;

        for seed in seeds {
            // Skip seeds that no longer contribute any uncovered positive.
            Self::cube_match_into(&self.pos, &seed, &mut self.matches);
            let contributes = self
                .matches
                .iter()
                .zip(&covered)
                .any(|(&m, &c)| m & !c != 0);
            if !contributes {
                continue;
            }
            let cube = if expanded < cfg.max_expanded_cubes {
                expanded += 1;
                self.expand_cube(&seed)
            } else {
                seed
            };
            Self::cube_match_into(&self.pos, &cube, &mut self.matches);
            for (c, &m) in covered.iter_mut().zip(&self.matches) {
                *c |= m;
            }
            out.push(cube);
        }
        out.remove_single_cube_containment();
        out
    }

    /// The word of off-set patterns mismatching literal `(var, pol)` at
    /// word index `w`: a pattern mismatches a positive literal where its
    /// bit is zero, a negative literal where its bit is one.
    #[inline]
    fn mismatch_word(&self, var: usize, pol: bool, w: usize) -> u64 {
        let flip = if pol { u64::MAX } else { 0 };
        (self.neg.column(var)[w] ^ flip) & self.neg_valid[w]
    }

    /// Rebuilds the ≥1/≥2 mismatch-multiplicity planes over the literals
    /// still alive.
    fn rebuild_planes(&mut self, lits: &[(usize, bool)], alive: &[bool]) {
        self.ones.iter_mut().for_each(|w| *w = 0);
        self.twos.iter_mut().for_each(|w| *w = 0);
        for (k, &(var, pol)) in lits.iter().enumerate() {
            if !alive[k] {
                continue;
            }
            for w in 0..self.ones.len() {
                let m = self.mismatch_word(var, pol, w);
                self.twos[w] |= self.ones[w] & m;
                self.ones[w] |= m;
            }
        }
    }

    /// EXPAND one cube against the packed off-set. Greedy literal removal
    /// in ascending (distance-1 block count, variable) order, exactly the
    /// row-major heuristic: a removal is blocked iff some negative's *only*
    /// remaining mismatch is that literal — one fused popcount over
    /// `mismatchᵥ ∧ ones ∧ ¬twos` per candidate instead of an off-set walk.
    fn expand_cube(&mut self, seed: &Cube) -> Cube {
        let lits: Vec<(usize, bool)> = seed.literals().collect();
        if lits.is_empty() {
            return seed.clone();
        }
        let words = self.neg.words_per_column();
        let mut alive = vec![true; lits.len()];
        self.rebuild_planes(&lits, &alive);

        // A negative with zero mismatches is already inside the cube; no
        // removal can ever be accepted (enlarging keeps it inside), which
        // is exactly what the row-major greedy concludes one candidate at
        // a time.
        if (0..words).any(|w| self.neg_valid[w] & !self.ones[w] != 0) {
            return seed.clone();
        }

        // Distance-1 block counts per literal, for the removal order.
        let mut order: Vec<usize> = (0..lits.len()).collect();
        let block: Vec<u64> = lits
            .iter()
            .map(|&(var, pol)| {
                (0..words)
                    .map(|w| {
                        u64::from(
                            (self.mismatch_word(var, pol, w) & self.ones[w] & !self.twos[w])
                                .count_ones(),
                        )
                    })
                    .sum()
            })
            .collect();
        order.sort_by_key(|&k| (block[k], lits[k].0));

        let mut cube = seed.clone();
        for k in order {
            let (var, pol) = lits[k];
            let blocked = (0..words)
                .any(|w| self.mismatch_word(var, pol, w) & self.ones[w] & !self.twos[w] != 0);
            if !blocked {
                alive[k] = false;
                cube.set(var, Trit::Dash);
                self.rebuild_planes(&lits, &alive);
            }
        }
        cube
    }

    fn irredundant(&mut self, cover: &mut Cover, num_positives: usize) {
        let mut multiplicity = vec![0u32; num_positives];
        let mut covers: Vec<Vec<u32>> = Vec::with_capacity(cover.len());
        for cube in cover.iter() {
            Self::cube_match_into(&self.pos, cube, &mut self.matches);
            let mut mine = Vec::new();
            for_each_set_bit(&self.matches, |i| {
                multiplicity[i] += 1;
                mine.push(i as u32);
            });
            covers.push(mine);
        }
        drop_multiply_covered(cover, covers, &mut multiplicity);
    }

    /// Columnar consistency pre-check: for every negative pattern, AND the
    /// on-set columns down to the mask of equal positives (the containment
    /// mask of the negative's full-pattern cube); any set bit names a
    /// contradictory example. Word-parallel over 64 positives at a time,
    /// early-exiting on the first conflict.
    fn find_contradiction(&mut self, negatives: &[Pattern]) -> Option<usize> {
        let mut matches = std::mem::take(&mut self.matches);
        let mut found = None;
        for neg in negatives {
            Self::cube_match_into(&self.pos, &Cube::from_pattern(neg), &mut matches);
            if let Some(w) = matches.iter().position(|&m| m != 0) {
                found = Some(w * 64 + matches[w].trailing_zeros() as usize);
                break;
            }
        }
        self.matches = matches;
        found
    }

    fn reduce(&mut self, cover: &mut Cover, positives: &[Pattern]) {
        let mut multiplicity = vec![0u32; positives.len()];
        let mut match_masks: Vec<Vec<u64>> = Vec::with_capacity(cover.len());
        for cube in cover.iter() {
            Self::cube_match_into(&self.pos, cube, &mut self.matches);
            for_each_set_bit(&self.matches, |i| multiplicity[i] += 1);
            match_masks.push(self.matches.clone());
        }
        let num_vars = cover.num_vars();
        let mut reduced: Vec<Cube> = Vec::with_capacity(cover.len());
        for cube_mask in &match_masks {
            let mut unique: Vec<&Pattern> = Vec::new();
            for_each_set_bit(cube_mask, |i| {
                if multiplicity[i] == 1 {
                    unique.push(&positives[i]);
                }
            });
            if unique.is_empty() {
                // Covered elsewhere: the cube would be redundant; drop it
                // and release its shared examples.
                for_each_set_bit(cube_mask, |i| multiplicity[i] -= 1);
                continue;
            }
            reduced.push(supercube(num_vars, unique.into_iter()));
        }
        *cover = Cover::from_cubes(num_vars, reduced);
    }
}

/// The smallest cube containing all given patterns: variables on which every
/// pattern agrees keep that literal, all others become dashes.
///
/// # Panics
///
/// Panics if the iterator is empty or a pattern's arity differs from
/// `num_vars`.
pub fn supercube<'a>(num_vars: usize, mut patterns: impl Iterator<Item = &'a Pattern>) -> Cube {
    let first = patterns.next().expect("supercube of nothing");
    assert_eq!(first.len(), num_vars, "pattern arity mismatch");
    let mut cube = Cube::from_pattern(first);
    for p in patterns {
        assert_eq!(p.len(), num_vars, "pattern arity mismatch");
        for (var, pol) in cube.clone().literals() {
            if p.get(var) != pol {
                cube = cube.without_literal(var);
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from(f: impl Fn(u64) -> bool, num_vars: usize) -> Dataset {
        let mut ds = Dataset::new(num_vars);
        for m in 0..(1u64 << num_vars) {
            ds.push(Pattern::from_index(m, num_vars), f(m));
        }
        ds
    }

    fn check_valid(cover: &Cover, ds: &Dataset) {
        for (p, o) in ds.iter() {
            assert_eq!(cover.eval(p), o, "cover wrong on {p}");
        }
    }

    #[test]
    fn single_variable_function() {
        let ds = dataset_from(|m| m & 1 == 1, 4);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].literal_count(), 1);
    }

    #[test]
    fn completely_specified_majority() {
        let ds = dataset_from(|m| m.count_ones() >= 2, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        // Optimal SOP of MAJ3 has 3 cubes of 2 literals.
        assert_eq!(cover.len(), 3);
        assert_eq!(cover.literal_count(), 6);
    }

    #[test]
    fn xor_needs_four_cubes_over_three_vars() {
        let ds = dataset_from(|m| m.count_ones() % 2 == 1, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 4); // parity has no 2-level sharing
    }

    #[test]
    fn incompletely_specified_generalizes() {
        // Only 4 care minterms of a 4-var space; f = x3 on the care set.
        let mut ds = Dataset::new(4);
        ds.push(Pattern::from_index(0b1000, 4), true);
        ds.push(Pattern::from_index(0b1011, 4), true);
        ds.push(Pattern::from_index(0b0011, 4), false);
        ds.push(Pattern::from_index(0b0100, 4), false);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].to_string(), "---1");
    }

    #[test]
    fn first_irredundant_is_still_valid() {
        let ds = dataset_from(|m| (m ^ (m >> 1)) & 1 == 1, 5);
        let cfg = EspressoConfig {
            first_irredundant: true,
            ..EspressoConfig::default()
        };
        let cover = minimize_dataset(&ds, &cfg);
        check_valid(&cover, &ds);
    }

    #[test]
    fn empty_onset_gives_empty_cover() {
        let ds = dataset_from(|_| false, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        assert!(cover.is_empty());
    }

    #[test]
    fn full_onset_gives_tautology_cube() {
        let ds = dataset_from(|_| true, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert!(cover[0].is_universe());
    }

    #[test]
    #[should_panic(expected = "contradictory labels")]
    fn contradiction_panics() {
        let mut ds = Dataset::new(2);
        ds.push(Pattern::from_index(0b01, 2), true);
        ds.push(Pattern::from_index(0b01, 2), false);
        minimize_dataset(&ds, &EspressoConfig::default());
    }

    #[test]
    #[should_panic(expected = "contradictory labels")]
    fn contradiction_panics_row_major() {
        let mut ds = Dataset::new(2);
        ds.push(Pattern::from_index(0b10, 2), true);
        ds.push(Pattern::from_index(0b10, 2), false);
        minimize_dataset_row_major(&ds, &EspressoConfig::default());
    }

    #[test]
    fn columnar_contradiction_check_finds_deep_duplicates() {
        // The duplicate sits past the first packed word (index >= 64) so
        // the word scan and bit index both get exercised.
        let mut ds = Dataset::new(7);
        for m in 0..80u64 {
            ds.push(Pattern::from_index(m, 7), true);
        }
        for m in 100..110u64 {
            ds.push(Pattern::from_index(m, 7), false);
        }
        ds.push(Pattern::from_index(70, 7), false); // contradicts positive 70
        let caught = std::panic::catch_unwind(|| {
            minimize_dataset(&ds, &EspressoConfig::default());
        });
        let err = caught.expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("contradictory labels"),
            "unexpected panic: {msg}"
        );
        assert!(
            msg.contains(&Pattern::from_index(70, 7).to_string()),
            "panic must name the offending pattern: {msg}"
        );
    }

    #[test]
    fn minimize_cover_respects_seed_errors() {
        // Seed cover misclassifies one negative; minimize_cover must not
        // count it as blocking but must keep other negatives excluded.
        let mut ds = Dataset::new(3);
        ds.push(Pattern::from_index(0b001, 3), true);
        ds.push(Pattern::from_index(0b011, 3), true);
        ds.push(Pattern::from_index(0b101, 3), false); // seed error: covered
        ds.push(Pattern::from_index(0b000, 3), false);
        let seeds = Cover::from_cubes(3, vec!["1--".parse().expect("cube")]);
        let out = minimize_cover(&seeds, &ds, &EspressoConfig::default());
        // All positives still covered; the clean negative still excluded.
        assert!(out.eval(&Pattern::from_index(0b001, 3)));
        assert!(out.eval(&Pattern::from_index(0b011, 3)));
        assert!(!out.eval(&Pattern::from_index(0b000, 3)));
    }

    #[test]
    fn supercube_of_patterns() {
        let a = Pattern::from_index(0b1010, 4);
        let b = Pattern::from_index(0b1000, 4);
        let sc = supercube(4, [&a, &b].into_iter());
        assert_eq!(sc.to_string(), "0-01"); // LSB-first display: x0=0, x1 dash, x2=0? check below
        assert!(sc.contains(&a) && sc.contains(&b));
        assert_eq!(sc.literal_count(), 3);
    }

    #[test]
    fn columnar_and_row_major_covers_are_identical() {
        // The columnar engine is a pure scan rewrite: same greedy orders,
        // same integer counts, so the covers must match cube for cube —
        // across complete and sampled care sets, both espresso modes.
        type Oracle = Box<dyn Fn(u64) -> bool>;
        let oracles: Vec<(usize, Oracle)> = vec![
            (4, Box::new(|m| m.count_ones() >= 2)),
            (5, Box::new(|m| (m ^ (m >> 2)) & 1 == 1)),
            (6, Box::new(|m| (m.wrapping_mul(37) >> 2) % 3 == 1)),
        ];
        for (nv, f) in oracles {
            for first_irredundant in [false, true] {
                let cfg = EspressoConfig {
                    first_irredundant,
                    ..EspressoConfig::default()
                };
                // Complete care set.
                let full = dataset_from(&f, nv);
                assert_eq!(
                    minimize_dataset(&full, &cfg).cubes(),
                    minimize_dataset_row_major(&full, &cfg).cubes(),
                    "full {nv}-var care set, first_irredundant={first_irredundant}"
                );
                // Sparse care set (every third minterm).
                let mut sparse = Dataset::new(nv);
                for m in (0..(1u64 << nv)).step_by(3) {
                    sparse.push(Pattern::from_index(m, nv), f(m));
                }
                assert_eq!(
                    minimize_dataset(&sparse, &cfg).cubes(),
                    minimize_dataset_row_major(&sparse, &cfg).cubes(),
                    "sparse {nv}-var care set, first_irredundant={first_irredundant}"
                );
            }
        }
    }

    #[test]
    fn columnar_handles_empty_offset_and_onset() {
        // No negatives: every literal is removable; no positives: empty
        // cover. Both extremes must agree with the row-major engine.
        let mut all_pos = Dataset::new(3);
        for m in 0..8u64 {
            all_pos.push(Pattern::from_index(m, 3), true);
        }
        let cfg = EspressoConfig::default();
        assert_eq!(
            minimize_dataset(&all_pos, &cfg).cubes(),
            minimize_dataset_row_major(&all_pos, &cfg).cubes()
        );
        let mut all_neg = Dataset::new(3);
        for m in 0..8u64 {
            all_neg.push(Pattern::from_index(m, 3), false);
        }
        assert!(minimize_dataset(&all_neg, &cfg).is_empty());
    }

    #[test]
    fn adder_msb_samples_minimize_cleanly() {
        // Second bit of a 2-bit adder: depends on several inputs; espresso
        // must stay exact on the complete care set.
        let ds = dataset_from(
            |m| {
                let a = m & 0b11;
                let b = (m >> 2) & 0b11;
                ((a + b) >> 1) & 1 == 1
            },
            4,
        );
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert!(cover.len() <= 6, "got {} cubes", cover.len());
    }
}
