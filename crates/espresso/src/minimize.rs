//! The EXPAND / IRREDUNDANT / REDUCE loop.

use lsml_pla::{Cover, Cube, Dataset, Pattern};

/// Tuning knobs for the minimizer.
#[derive(Clone, Debug)]
pub struct EspressoConfig {
    /// Stop after the first IRREDUNDANT pass (Team 1's fast mode) instead of
    /// iterating EXPAND/REDUCE to a fixpoint.
    pub first_irredundant: bool,
    /// Maximum number of EXPAND→IRREDUNDANT→REDUCE iterations.
    pub max_loops: usize,
    /// Upper bound on the number of cubes that receive full expansion; any
    /// remaining uncovered positive examples are kept as raw minterms. Guards
    /// against quadratic blow-up on very wide benchmarks.
    pub max_expanded_cubes: usize,
}

impl Default for EspressoConfig {
    fn default() -> Self {
        EspressoConfig {
            first_irredundant: false,
            max_loops: 4,
            max_expanded_cubes: 20_000,
        }
    }
}

/// Minimizes the incompletely specified function given by a labelled dataset:
/// the result covers every positive example and no negative example.
///
/// # Panics
///
/// Panics if the dataset contains the same pattern with both labels
/// (contradictory care set).
pub fn minimize_dataset(ds: &Dataset, cfg: &EspressoConfig) -> Cover {
    let positives: Vec<Pattern> = ds
        .iter()
        .filter(|&(_, o)| o)
        .map(|(p, _)| p.clone())
        .collect();
    let negatives: Vec<Pattern> = ds
        .iter()
        .filter(|&(_, o)| !o)
        .map(|(p, _)| p.clone())
        .collect();
    let seeds: Vec<Cube> = positives.iter().map(Cube::from_pattern).collect();
    minimize(
        ds.num_inputs(),
        seeds,
        &positives,
        &negatives,
        cfg,
        /* verify_consistent = */ true,
    )
}

/// Minimizes a seed cover (for example, the SOP extracted from a decision
/// tree) against a labelled dataset. The result covers every positive example
/// the seed cover covered and adds no negative example beyond those the seed
/// cover already misclassified.
pub fn minimize_cover(seeds: &Cover, ds: &Dataset, cfg: &EspressoConfig) -> Cover {
    assert_eq!(seeds.num_vars(), ds.num_inputs(), "arity mismatch");
    let positives: Vec<Pattern> = ds
        .iter()
        .filter(|(p, o)| *o && seeds.eval(p))
        .map(|(p, _)| p.clone())
        .collect();
    // Blocking set: negatives the seed cover classifies correctly today; we
    // must not lose that. Negatives already inside the seed cover are its
    // training errors and cannot constrain expansion.
    let negatives: Vec<Pattern> = ds
        .iter()
        .filter(|(p, o)| !*o && !seeds.eval(p))
        .map(|(p, _)| p.clone())
        .collect();
    minimize(
        ds.num_inputs(),
        seeds.cubes().to_vec(),
        &positives,
        &negatives,
        cfg,
        false,
    )
}

fn minimize(
    num_vars: usize,
    seeds: Vec<Cube>,
    positives: &[Pattern],
    negatives: &[Pattern],
    cfg: &EspressoConfig,
    verify_consistent: bool,
) -> Cover {
    if verify_consistent {
        for p in positives {
            assert!(
                !negatives.contains(p),
                "contradictory labels for pattern {p}"
            );
        }
    }
    if positives.is_empty() {
        return Cover::new(num_vars);
    }

    let mut cover = expand(num_vars, seeds, positives, negatives, cfg);
    irredundant(&mut cover, positives);
    if cfg.first_irredundant {
        return cover;
    }

    let mut best = cover.clone();
    for _ in 0..cfg.max_loops {
        reduce(&mut cover, positives);
        cover = expand(
            num_vars,
            cover.into_iter().collect(),
            positives,
            negatives,
            cfg,
        );
        irredundant(&mut cover, positives);
        if cost(&cover) < cost(&best) {
            best = cover.clone();
        } else {
            break;
        }
    }
    best
}

/// Cover cost: primary = cube count, secondary = literal count.
fn cost(cover: &Cover) -> (usize, usize) {
    (cover.len(), cover.literal_count())
}

/// EXPAND: enlarge each seed cube literal-by-literal, blocked by the offset.
/// Seeds whose positive examples are already covered are skipped, so strong
/// expansion keeps the cube count low.
fn expand(
    num_vars: usize,
    seeds: Vec<Cube>,
    positives: &[Pattern],
    negatives: &[Pattern],
    cfg: &EspressoConfig,
) -> Cover {
    let mut out = Cover::new(num_vars);
    let mut covered = vec![false; positives.len()];
    let mut expanded = 0usize;

    for seed in seeds {
        // Skip seeds that no longer contribute any uncovered positive.
        let contributes = positives
            .iter()
            .enumerate()
            .any(|(i, p)| !covered[i] && seed.contains(p));
        if !contributes {
            continue;
        }
        let cube = if expanded < cfg.max_expanded_cubes {
            expanded += 1;
            expand_cube(&seed, negatives)
        } else {
            seed
        };
        for (i, p) in positives.iter().enumerate() {
            if !covered[i] && cube.contains(p) {
                covered[i] = true;
            }
        }
        out.push(cube);
    }
    out.remove_single_cube_containment();
    out
}

/// Expands one cube: greedily removes literals (in ascending order of how
/// many distance-1 offset minterms block them) as long as the enlarged cube
/// stays clear of every negative example.
fn expand_cube(seed: &Cube, negatives: &[Pattern]) -> Cube {
    let mut cube = seed.clone();
    // Count, per literal, the offset patterns at distance 1 clashing exactly
    // on that literal — these definitely block its removal, so try the least
    // blocked literals first.
    let mut block = vec![0u32; cube.num_vars()];
    for r in negatives {
        let mut clash_var = None;
        let mut clashes = 0;
        for (var, pol) in cube.literals() {
            if r.get(var) != pol {
                clashes += 1;
                if clashes > 1 {
                    break;
                }
                clash_var = Some(var);
            }
        }
        if clashes == 1 {
            block[clash_var.expect("one clash")] += 1;
        }
    }
    let mut order: Vec<usize> = cube.literals().map(|(v, _)| v).collect();
    order.sort_by_key(|&v| (block[v], v));

    for v in order {
        let candidate = cube.without_literal(v);
        if !negatives.iter().any(|r| candidate.contains(r)) {
            cube = candidate;
        }
    }
    cube
}

/// IRREDUNDANT: drop cubes all of whose positive examples are multiply
/// covered. Cubes with more literals (smaller cubes) are dropped first.
fn irredundant(cover: &mut Cover, positives: &[Pattern]) {
    // multiplicity[i] = how many cubes cover positive example i.
    let mut multiplicity = vec![0u32; positives.len()];
    let mut covers: Vec<Vec<u32>> = Vec::with_capacity(cover.len());
    for cube in cover.iter() {
        let mut mine = Vec::new();
        for (i, p) in positives.iter().enumerate() {
            if cube.contains(p) {
                multiplicity[i] += 1;
                mine.push(i as u32);
            }
        }
        covers.push(mine);
    }
    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(cover[c].literal_count()));

    let mut dead = vec![false; cover.len()];
    for c in order {
        let removable = covers[c].iter().all(|&i| multiplicity[i as usize] >= 2);
        if removable {
            dead[c] = true;
            for &i in &covers[c] {
                multiplicity[i as usize] -= 1;
            }
        }
    }
    let mut keep = dead.iter().map(|d| !d);
    cover.cubes_mut().retain(|_| keep.next().expect("mask"));
}

/// REDUCE: shrink every cube to the supercube of the positive examples that
/// only it covers (dropping cubes that uniquely cover nothing).
fn reduce(cover: &mut Cover, positives: &[Pattern]) {
    let mut multiplicity = vec![0u32; positives.len()];
    for cube in cover.iter() {
        for (i, p) in positives.iter().enumerate() {
            if cube.contains(p) {
                multiplicity[i] += 1;
            }
        }
    }
    let num_vars = cover.num_vars();
    let mut reduced: Vec<Cube> = Vec::with_capacity(cover.len());
    for cube in cover.iter() {
        let unique: Vec<&Pattern> = positives
            .iter()
            .enumerate()
            .filter(|(i, p)| multiplicity[*i] == 1 && cube.contains(p))
            .map(|(_, p)| p)
            .collect();
        if unique.is_empty() {
            // Covered elsewhere: the cube would be redundant; drop it and
            // release its shared examples.
            for (i, p) in positives.iter().enumerate() {
                if cube.contains(p) {
                    multiplicity[i] -= 1;
                }
            }
            continue;
        }
        reduced.push(supercube(num_vars, unique.into_iter()));
    }
    *cover = Cover::from_cubes(num_vars, reduced);
}

/// The smallest cube containing all given patterns: variables on which every
/// pattern agrees keep that literal, all others become dashes.
///
/// # Panics
///
/// Panics if the iterator is empty or a pattern's arity differs from
/// `num_vars`.
pub fn supercube<'a>(num_vars: usize, mut patterns: impl Iterator<Item = &'a Pattern>) -> Cube {
    let first = patterns.next().expect("supercube of nothing");
    assert_eq!(first.len(), num_vars, "pattern arity mismatch");
    let mut cube = Cube::from_pattern(first);
    for p in patterns {
        assert_eq!(p.len(), num_vars, "pattern arity mismatch");
        for (var, pol) in cube.clone().literals() {
            if p.get(var) != pol {
                cube = cube.without_literal(var);
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from(f: impl Fn(u64) -> bool, num_vars: usize) -> Dataset {
        let mut ds = Dataset::new(num_vars);
        for m in 0..(1u64 << num_vars) {
            ds.push(Pattern::from_index(m, num_vars), f(m));
        }
        ds
    }

    fn check_valid(cover: &Cover, ds: &Dataset) {
        for (p, o) in ds.iter() {
            assert_eq!(cover.eval(p), o, "cover wrong on {p}");
        }
    }

    #[test]
    fn single_variable_function() {
        let ds = dataset_from(|m| m & 1 == 1, 4);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].literal_count(), 1);
    }

    #[test]
    fn completely_specified_majority() {
        let ds = dataset_from(|m| m.count_ones() >= 2, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        // Optimal SOP of MAJ3 has 3 cubes of 2 literals.
        assert_eq!(cover.len(), 3);
        assert_eq!(cover.literal_count(), 6);
    }

    #[test]
    fn xor_needs_four_cubes_over_three_vars() {
        let ds = dataset_from(|m| m.count_ones() % 2 == 1, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 4); // parity has no 2-level sharing
    }

    #[test]
    fn incompletely_specified_generalizes() {
        // Only 4 care minterms of a 4-var space; f = x3 on the care set.
        let mut ds = Dataset::new(4);
        ds.push(Pattern::from_index(0b1000, 4), true);
        ds.push(Pattern::from_index(0b1011, 4), true);
        ds.push(Pattern::from_index(0b0011, 4), false);
        ds.push(Pattern::from_index(0b0100, 4), false);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].to_string(), "---1");
    }

    #[test]
    fn first_irredundant_is_still_valid() {
        let ds = dataset_from(|m| (m ^ (m >> 1)) & 1 == 1, 5);
        let cfg = EspressoConfig {
            first_irredundant: true,
            ..EspressoConfig::default()
        };
        let cover = minimize_dataset(&ds, &cfg);
        check_valid(&cover, &ds);
    }

    #[test]
    fn empty_onset_gives_empty_cover() {
        let ds = dataset_from(|_| false, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        assert!(cover.is_empty());
    }

    #[test]
    fn full_onset_gives_tautology_cube() {
        let ds = dataset_from(|_| true, 3);
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert_eq!(cover.len(), 1);
        assert!(cover[0].is_universe());
    }

    #[test]
    #[should_panic(expected = "contradictory labels")]
    fn contradiction_panics() {
        let mut ds = Dataset::new(2);
        ds.push(Pattern::from_index(0b01, 2), true);
        ds.push(Pattern::from_index(0b01, 2), false);
        minimize_dataset(&ds, &EspressoConfig::default());
    }

    #[test]
    fn minimize_cover_respects_seed_errors() {
        // Seed cover misclassifies one negative; minimize_cover must not
        // count it as blocking but must keep other negatives excluded.
        let mut ds = Dataset::new(3);
        ds.push(Pattern::from_index(0b001, 3), true);
        ds.push(Pattern::from_index(0b011, 3), true);
        ds.push(Pattern::from_index(0b101, 3), false); // seed error: covered
        ds.push(Pattern::from_index(0b000, 3), false);
        let seeds = Cover::from_cubes(3, vec!["1--".parse().expect("cube")]);
        let out = minimize_cover(&seeds, &ds, &EspressoConfig::default());
        // All positives still covered; the clean negative still excluded.
        assert!(out.eval(&Pattern::from_index(0b001, 3)));
        assert!(out.eval(&Pattern::from_index(0b011, 3)));
        assert!(!out.eval(&Pattern::from_index(0b000, 3)));
    }

    #[test]
    fn supercube_of_patterns() {
        let a = Pattern::from_index(0b1010, 4);
        let b = Pattern::from_index(0b1000, 4);
        let sc = supercube(4, [&a, &b].into_iter());
        assert_eq!(sc.to_string(), "0-01"); // LSB-first display: x0=0, x1 dash, x2=0? check below
        assert!(sc.contains(&a) && sc.contains(&b));
        assert_eq!(sc.literal_count(), 3);
    }

    #[test]
    fn adder_msb_samples_minimize_cleanly() {
        // Second bit of a 2-bit adder: depends on several inputs; espresso
        // must stay exact on the complete care set.
        let ds = dataset_from(
            |m| {
                let a = m & 0b11;
                let b = (m >> 2) & 0b11;
                ((a + b) >> 1) & 1 == 1
            },
            4,
        );
        let cover = minimize_dataset(&ds, &EspressoConfig::default());
        check_valid(&cover, &ds);
        assert!(cover.len() <= 6, "got {} cubes", cover.len());
    }
}
