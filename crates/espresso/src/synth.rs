//! Cover → AIG synthesis.

use lsml_aig::{Aig, Lit};
use lsml_pla::Cover;

/// Compiles a sum-of-products cover into a single-output AIG: each cube
/// becomes a balanced AND tree over its literals and the cubes are OR-ed with
/// a balanced tree. Structural hashing shares identical sub-terms across
/// cubes, so the node count is usually below the naive literal count.
///
/// # Examples
///
/// ```
/// use lsml_espresso::cover_to_aig;
/// use lsml_pla::{Cover, Pattern};
///
/// let cover = Cover::from_cubes(3, vec!["11-".parse()?, "--1".parse()?]);
/// let aig = cover_to_aig(&cover);
/// assert_eq!(aig.eval(&[true, true, false]), vec![true]);
/// assert_eq!(aig.eval(&[false, false, false]), vec![false]);
/// # Ok::<(), lsml_pla::ParseError>(())
/// ```
pub fn cover_to_aig(cover: &Cover) -> Aig {
    let mut aig = Aig::new(cover.num_vars());
    let mut terms: Vec<Lit> = Vec::with_capacity(cover.len());
    for cube in cover.iter() {
        let lits: Vec<Lit> = cube
            .literals()
            .map(|(var, pol)| aig.input(var).complement_if(!pol))
            .collect();
        terms.push(aig.and_many(&lits));
    }
    let f = aig.or_many(&terms);
    aig.add_output(f);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_pla::{Cube, Pattern};

    #[test]
    fn empty_cover_is_constant_false() {
        let aig = cover_to_aig(&Cover::new(2));
        assert_eq!(aig.eval(&[true, true]), vec![false]);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn tautology_is_constant_true() {
        let aig = cover_to_aig(&Cover::tautology(2));
        assert_eq!(aig.eval(&[false, false]), vec![true]);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn matches_cover_semantics_exhaustively() {
        let cover = Cover::from_cubes(
            4,
            vec![
                "1-0-".parse::<Cube>().expect("cube"),
                "01--".parse::<Cube>().expect("cube"),
                "---1".parse::<Cube>().expect("cube"),
            ],
        );
        let aig = cover_to_aig(&cover);
        for m in 0..16u64 {
            let p = Pattern::from_index(m, 4);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(aig.eval(&bits)[0], cover.eval(&p), "mismatch at {m:04b}");
        }
    }

    #[test]
    fn shared_cubes_are_hashed() {
        // Two identical cubes produce the same AND term once.
        let cover = Cover::from_cubes(
            2,
            vec![
                "11".parse::<Cube>().expect("cube"),
                "11".parse::<Cube>().expect("cube"),
            ],
        );
        let aig = cover_to_aig(&cover);
        assert_eq!(aig.num_ands(), 1);
    }
}
