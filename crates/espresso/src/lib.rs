//! ESPRESSO-style heuristic two-level minimization.
//!
//! The contest's functions are *incompletely specified*: the care set is the
//! finite list of labelled training minterms and everything else is don't
//! care. This crate implements the classic EXPAND → IRREDUNDANT → REDUCE
//! loop of ESPRESSO (Brayton et al., 1984) specialized to that setting:
//!
//! * a cover is valid iff it contains every positive example and no negative
//!   example;
//! * EXPAND enlarges cubes literal-by-literal against the explicit offset;
//! * IRREDUNDANT drops cubes whose positive examples are covered elsewhere;
//! * REDUCE shrinks each cube to the supercube of the examples only it
//!   covers, giving EXPAND room to move in a different direction.
//!
//! Team 1 ran ESPRESSO "with an option to finish optimization after the
//! first irredundant operation" — exposed here as
//! [`EspressoConfig::first_irredundant`].
//!
//! # Examples
//!
//! ```
//! use lsml_espresso::{minimize_dataset, EspressoConfig};
//! use lsml_pla::{Dataset, Pattern};
//!
//! // Noise-free samples of f = x0 (x1 irrelevant).
//! let mut ds = Dataset::new(2);
//! ds.push(Pattern::from_index(0b01, 2), true);
//! ds.push(Pattern::from_index(0b11, 2), true);
//! ds.push(Pattern::from_index(0b00, 2), false);
//!
//! let cover = minimize_dataset(&ds, &EspressoConfig::default());
//! assert_eq!(cover.len(), 1);           // one cube: x0
//! assert_eq!(cover[0].to_string(), "1-");
//! ```

mod minimize;
mod synth;

#[doc(hidden)]
pub use minimize::minimize_dataset_row_major;
pub use minimize::{minimize_cover, minimize_dataset, supercube, EspressoConfig};
pub use synth::cover_to_aig;
