//! Property tests for the k ≤ 6 cut/NPN rewriting engine:
//!
//! * every enumerated cut's 64-bit truth table agrees with word-parallel
//!   simulation (`sim::eval_patterns_multi`) on the cut cone, at k = 4 and
//!   k = 6;
//! * the semi-canonical NPN form maps every function of a class to the
//!   same key as the exact canonizer at ≤ 4 inputs, and its recorded
//!   transform is always valid;
//! * the arena-backed rewrite produces node-identical results to the
//!   retained `Vec`-based reference implementation on random AIGs.

use lsml_aig::aig::Aig;
use lsml_aig::cut::{eval_cut, CutArena, CutConfig};
use lsml_aig::npn::{apply, apply6, broadcast16, canonize, semi_canonize, NpnTransform};
use lsml_aig::rewrite::{rewrite, rewrite_reference, RewriteConfig};
use lsml_aig::sim::eval_patterns_multi;
use lsml_aig::Lit;
use lsml_pla::Pattern;
use proptest::prelude::*;

/// A recipe for building a random AIG: a list of gate ops over existing
/// lits (same shape as the pipeline property suite).
#[derive(Clone, Debug)]
enum Op {
    And(u8, bool, u8, bool),
    Xor(u8, bool, u8, bool),
    Mux(u8, u8, u8),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::And(a, ca, b, cb)),
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::Xor(a, ca, b, cb)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
        ],
        1..n,
    )
}

fn build(ops: &[Op], ni: usize) -> Aig {
    let mut g = Aig::new(ni);
    let mut lits: Vec<Lit> = g.inputs();
    for op in ops {
        let pick = |i: u8, lits: &[Lit]| lits[i as usize % lits.len()];
        let l = match *op {
            Op::And(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.and(x, y)
            }
            Op::Xor(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.xor(x, y)
            }
            Op::Mux(s, t, e) => {
                let sv = pick(s, &lits);
                let tv = pick(t, &lits);
                let ev = pick(e, &lits);
                g.mux(sv, tv, ev)
            }
        };
        lits.push(l);
    }
    g.add_output(*lits.last().expect("at least one literal"));
    g.add_output(!lits[lits.len() / 2]);
    g
}

const NARROW: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every cut truth table is consistent with simulation: on every input
    /// pattern, evaluating the table at the leaves' simulated values yields
    /// the root's simulated value. Simulation runs through
    /// `eval_patterns_multi` with one output per node.
    #[test]
    fn cut_tables_agree_with_eval_patterns_multi(ops in arb_ops(30)) {
        let g = build(&ops, NARROW);
        // Expose every node as an output for the word-parallel simulator.
        let mut probe = g.clone();
        probe.clear_outputs();
        for n in 0..probe.num_nodes() as u32 {
            probe.add_output(Lit::new(n, false));
        }
        let ni = g.num_inputs();
        let patterns: Vec<Pattern> = (0..(1u64 << ni))
            .map(|m| Pattern::from_index(m, ni))
            .collect();
        let values = eval_patterns_multi(&probe, &patterns);

        for k in [4usize, 6] {
            let mut arena = CutArena::new();
            arena.enumerate(&g, &CutConfig { k, max_cuts: 8 });
            for n in 0..g.num_nodes() {
                for view in arena.cuts(n as u32) {
                    let cut = view.to_cut();
                    #[allow(clippy::needless_range_loop)] // `p` indexes every node's row
                    for p in 0..patterns.len() {
                        let leaf_values: Vec<bool> = cut
                            .leaves()
                            .iter()
                            .map(|&l| values[l as usize][p])
                            .collect();
                        prop_assert_eq!(
                            eval_cut(&cut, &leaf_values),
                            values[n][p],
                            "k={} node {} cut {:?} pattern {}",
                            k, n, cut, p
                        );
                    }
                }
            }
        }
    }

    /// At ≤ 4 inputs the semi-canonical key equals the exact canonizer's
    /// key for *every* member of an NPN class.
    #[test]
    fn semi_canonical_matches_exact_canonizer_at_4_inputs(
        tt in any::<u16>(),
        perm_pick in 0usize..24,
        input_neg in 0u8..16,
        output_neg in any::<bool>(),
    ) {
        // Rebuild the lexicographic 4-var permutation list locally.
        let mut perms = Vec::new();
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    for d in 0..4u8 {
                        if a != b && a != c && a != d && b != c && b != d && c != d {
                            perms.push([a, b, c, d]);
                        }
                    }
                }
            }
        }
        let t = NpnTransform { perm: perms[perm_pick], input_neg, output_neg };
        let variant = apply(tt, &t);
        let expect = broadcast16(canonize(tt).canon);
        let semi_a = semi_canonize(broadcast16(tt));
        let semi_b = semi_canonize(broadcast16(variant));
        prop_assert_eq!(semi_a.key, expect);
        prop_assert_eq!(semi_b.key, expect, "class member diverged: {:04x}", variant);
        // Recorded transforms actually map onto the key.
        prop_assert_eq!(apply6(broadcast16(tt), &semi_a.transform), semi_a.key);
        prop_assert_eq!(apply6(broadcast16(variant), &semi_b.transform), semi_b.key);
    }

    /// The greedy wide form always records a valid transform and is a
    /// fixpoint of itself (key canonizes to key).
    #[test]
    fn semi_canonical_transform_is_valid_at_6_inputs(tt in any::<u64>()) {
        let semi = semi_canonize(tt);
        prop_assert_eq!(apply6(tt, &semi.transform), semi.key);
        prop_assert_eq!(semi_canonize(semi.key).key, semi.key);
    }

    /// The arena-backed rewrite is node-identical to the Vec-based
    /// reference implementation, at both cut sizes and with and without
    /// zero-gain replacements.
    #[test]
    fn arena_rewrite_is_node_identical_to_reference(ops in arb_ops(40)) {
        let g = build(&ops, NARROW);
        for cut_size in [4usize, 6] {
            for zero_gain in [false, true] {
                let cfg = RewriteConfig { zero_gain, cut_size, ..RewriteConfig::default() };
                let a = rewrite(&g, &cfg);
                let b = rewrite_reference(&g, &cfg);
                prop_assert_eq!(
                    a.structural_fingerprint(),
                    b.structural_fingerprint(),
                    "k={} zero_gain={}: arena {:?} vs reference {:?}",
                    cut_size, zero_gain, a, b
                );
            }
        }
    }

    /// The arena's CSR layout verifier holds after cold, warm-incremental
    /// and shrunken re-enumerations at k ∈ {4, 6}, and the rewritten graph
    /// itself satisfies the full structural verifier (including after the
    /// zero-gain reshaping variant).
    #[test]
    fn arena_csr_and_graph_invariants_hold(ops in arb_ops(40)) {
        let g = build(&ops, NARROW);
        let mut arena = CutArena::new();
        for k in [4usize, 6] {
            arena.enumerate(&g, &CutConfig { k, max_cuts: 8 });
            prop_assert!(arena.check_csr().is_ok(),
                "cold enumeration (k={}): {:?}", k, arena.check_csr());
            // Warm re-enumeration of an extended graph reuses the prefix;
            // the CSR must stay coherent across the truncate-and-extend.
            let mut ext = g.clone();
            let exti = ext.inputs();
            let extra = ext.xor(exti[0], *ext.outputs().first().expect("output"));
            ext.add_output(extra);
            arena.enumerate(&ext, &CutConfig { k, max_cuts: 8 });
            prop_assert!(arena.check_csr().is_ok(),
                "warm extension (k={}): {:?}", k, arena.check_csr());
            // Rewritten graphs satisfy the full structural verifier.
            for zero_gain in [false, true] {
                let cfg = RewriteConfig { zero_gain, cut_size: k, ..RewriteConfig::default() };
                let h = rewrite(&g, &cfg);
                prop_assert!(h.check_invariants().is_ok(),
                    "rewrite k={} zero_gain={}: {:?}", k, zero_gain, h.check_invariants());
            }
        }
    }

    /// k = 6 rewriting preserves semantics exactly and never grows the
    /// graph (the k = 4 variant is covered by the pipeline property suite).
    #[test]
    fn k6_rewrite_preserves_semantics(ops in arb_ops(40)) {
        let g = build(&ops, NARROW);
        let ni = g.num_inputs();
        let patterns: Vec<Pattern> = (0..(1u64 << ni))
            .map(|m| Pattern::from_index(m, ni))
            .collect();
        let before = eval_patterns_multi(&g, &patterns);
        let mut cleaned = g.clone();
        cleaned.cleanup();
        for zero_gain in [false, true] {
            let cfg = RewriteConfig { zero_gain, ..RewriteConfig::k6() };
            let h = rewrite(&g, &cfg);
            prop_assert!(h.num_ands() <= cleaned.num_ands());
            prop_assert_eq!(eval_patterns_multi(&h, &patterns), before.clone());
        }
    }
}
