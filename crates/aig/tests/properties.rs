//! Property tests: random AIGs behave like their reference evaluation under
//! simulation, serialization, cleanup and balancing.

use lsml_aig::aig::Aig;
use lsml_aig::aiger::{read_aag, read_aig, write_aag, write_aig};
use lsml_aig::opt::balance;
use lsml_aig::sim::eval_patterns;
use lsml_aig::Lit;
use lsml_pla::Pattern;
use proptest::prelude::*;

/// A recipe for building a random AIG: a list of gate ops over existing lits.
#[derive(Clone, Debug)]
enum Op {
    And(u8, bool, u8, bool),
    Xor(u8, bool, u8, bool),
    Mux(u8, u8, u8),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::And(a, ca, b, cb)),
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::Xor(a, ca, b, cb)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
        ],
        1..n,
    )
}

const NI: usize = 6;

fn build(ops: &[Op]) -> Aig {
    let mut g = Aig::new(NI);
    let mut lits: Vec<Lit> = g.inputs();
    for op in ops {
        let pick = |i: u8, lits: &[Lit]| lits[i as usize % lits.len()];
        let l = match *op {
            Op::And(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.and(x, y)
            }
            Op::Xor(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.xor(x, y)
            }
            Op::Mux(s, t, e) => {
                let sv = pick(s, &lits);
                let tv = pick(t, &lits);
                let ev = pick(e, &lits);
                g.mux(sv, tv, ev)
            }
        };
        lits.push(l);
    }
    let out = *lits.last().expect("at least one literal");
    g.add_output(out);
    g
}

fn truth_vector(g: &Aig) -> Vec<bool> {
    (0..(1u64 << NI))
        .map(|m| {
            let bits: Vec<bool> = (0..NI).map(|i| (m >> i) & 1 == 1).collect();
            g.eval(&bits)[0]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn word_simulation_matches_eval(ops in arb_ops(30)) {
        let g = build(&ops);
        let patterns: Vec<Pattern> =
            (0..(1u64 << NI)).map(|m| Pattern::from_index(m, NI)).collect();
        let preds = eval_patterns(&g, &patterns);
        prop_assert_eq!(preds, truth_vector(&g));
    }

    #[test]
    fn cleanup_preserves_function(ops in arb_ops(30)) {
        let g = build(&ops);
        let before = truth_vector(&g);
        let mut h = g.clone();
        h.cleanup();
        prop_assert!(h.num_ands() <= g.num_ands());
        prop_assert_eq!(truth_vector(&h), before);
    }

    #[test]
    fn aiger_roundtrip_preserves_function(ops in arb_ops(30)) {
        let g = build(&ops);
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let h = read_aag(buf.as_slice()).expect("read");
        prop_assert_eq!(truth_vector(&h), truth_vector(&g));
    }

    #[test]
    fn binary_aiger_roundtrip_preserves_function(ops in arb_ops(30)) {
        let g = build(&ops);
        let mut buf = Vec::new();
        write_aig(&g, &mut buf).expect("write");
        let h = read_aig(buf.as_slice()).expect("read");
        prop_assert_eq!(h.num_ands(), g.num_ands());
        prop_assert_eq!(truth_vector(&h), truth_vector(&g));
    }

    #[test]
    fn balance_preserves_function_and_depth(ops in arb_ops(30)) {
        let g = build(&ops);
        let h = balance(&g);
        prop_assert_eq!(truth_vector(&h), truth_vector(&g));
        // Balance may reshape but must not blow the depth up.
        prop_assert!(h.depth() <= g.depth().max(1) * 2);
    }

    #[test]
    fn strash_keeps_graph_canonical(ops in arb_ops(30)) {
        // Rebuilding the same ops twice yields identical node counts.
        let g = build(&ops);
        let h = build(&ops);
        prop_assert_eq!(g.num_ands(), h.num_ands());
        prop_assert_eq!(g.outputs()[0], h.outputs()[0]);
    }
}
