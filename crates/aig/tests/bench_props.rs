//! Property tests for `.bench` serialization: a write→read round trip must
//! reproduce the graph *structurally* (identical fingerprint, not merely
//! identical function), and the `.bench` and `.aag` encodings of the same
//! circuit must evaluate identically under word-parallel simulation.

use lsml_aig::aig::Aig;
use lsml_aig::aiger::{read_aag, write_aag};
use lsml_aig::bench::{read_bench, write_bench};
use lsml_aig::sim::eval_patterns_multi;
use lsml_aig::Lit;
use lsml_pla::Pattern;
use proptest::prelude::*;

/// A recipe for building a random AIG: a list of gate ops over existing
/// lits (same shape as `tests/properties.rs`).
#[derive(Clone, Debug)]
enum Op {
    And(u8, bool, u8, bool),
    Xor(u8, bool, u8, bool),
    Mux(u8, u8, u8),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::And(a, ca, b, cb)),
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::Xor(a, ca, b, cb)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
        ],
        1..n,
    )
}

const NI: usize = 6;

fn build(ops: &[Op], extra_outputs: &[u8]) -> Aig {
    let mut g = Aig::new(NI);
    let mut lits: Vec<Lit> = g.inputs();
    for op in ops {
        let pick = |i: u8, lits: &[Lit]| lits[i as usize % lits.len()];
        let l = match *op {
            Op::And(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.and(x, y)
            }
            Op::Xor(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.xor(x, y)
            }
            Op::Mux(s, t, e) => {
                let sv = pick(s, &lits);
                let tv = pick(t, &lits);
                let ev = pick(e, &lits);
                g.mux(sv, tv, ev)
            }
        };
        lits.push(l);
    }
    g.add_output(*lits.last().expect("at least one literal"));
    for &o in extra_outputs {
        // Mix complemented outputs in: the writer's NOT/BUFF output gates
        // and NOT-alias edges both need coverage.
        let l = lits[o as usize % lits.len()];
        g.add_output(if o % 2 == 0 { l } else { !l });
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write_bench → read_bench reproduces the exact structure: same node
    /// count and the same 128-bit structural fingerprint.
    #[test]
    fn bench_roundtrip_is_structurally_identical(
        ops in arb_ops(30),
        outs in proptest::collection::vec(any::<u8>(), 0..4),
    ) {
        let g = build(&ops, &outs);
        let mut buf = Vec::new();
        write_bench(&g, &mut buf).expect("write_bench");
        let h = read_bench(buf.as_slice()).expect("read_bench");
        prop_assert_eq!(h.num_inputs(), g.num_inputs());
        prop_assert_eq!(h.outputs().len(), g.outputs().len());
        prop_assert_eq!(h.num_nodes(), g.num_nodes());
        prop_assert_eq!(h.structural_fingerprint(), g.structural_fingerprint());
    }

    /// The `.bench` and `.aag` encodings of the same circuit parse back to
    /// graphs that agree on every output for every input pattern.
    #[test]
    fn bench_and_aag_evaluate_identically(
        ops in arb_ops(30),
        outs in proptest::collection::vec(any::<u8>(), 0..4),
    ) {
        let g = build(&ops, &outs);
        let (mut bench_buf, mut aag_buf) = (Vec::new(), Vec::new());
        write_bench(&g, &mut bench_buf).expect("write_bench");
        write_aag(&g, &mut aag_buf).expect("write_aag");
        let from_bench = read_bench(bench_buf.as_slice()).expect("read_bench");
        let from_aag = read_aag(aag_buf.as_slice()).expect("read_aag");
        let patterns: Vec<Pattern> =
            (0..(1u64 << NI)).map(|m| Pattern::from_index(m, NI)).collect();
        let a = eval_patterns_multi(&from_bench, &patterns);
        let b = eval_patterns_multi(&from_aag, &patterns);
        prop_assert_eq!(a, b);
    }
}
