//! Fuzz hardening for the three untrusted circuit readers: `read_aag`,
//! `read_aig` and `read_bench`.
//!
//! External ingestion (the `lsml-suite` sweep engine) feeds arbitrary files
//! from disk into these parsers, so their contract is *never panic, never
//! abort, never allocate unboundedly* — every defect is a structured
//! `ParseError`. This harness drives each parser with thousands of seeded
//! inputs across the classic fuzz classes (pure garbage, truncations of
//! valid files, byte mutations of valid files, hostile headers) under
//! `catch_unwind` and fails on the first panic. The corpus is seeded, so a
//! CI failure replays locally with the printed seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lsml_aig::aig::Aig;
use lsml_aig::aiger::{read_aag, read_aig, write_aag, write_aig, MAX_PARSE_VARS};
use lsml_aig::bench::{read_bench, write_bench};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One parser under test: name + a closure that must not panic.
type Parser = (&'static str, fn(&[u8]));

fn parsers() -> Vec<Parser> {
    vec![
        ("read_aag", |b| {
            let _ = read_aag(b);
        }),
        ("read_aig", |b| {
            let _ = read_aig(b);
        }),
        ("read_bench", |b| {
            let _ = read_bench(b);
        }),
    ]
}

/// Runs every parser on `input`; panics (failing the test) naming the
/// parser and seed if any of them panics.
fn assert_no_panic(input: &[u8], what: &str) {
    for (name, parse) in parsers() {
        let owned = input.to_vec();
        let result = catch_unwind(AssertUnwindSafe(|| parse(&owned)));
        assert!(
            result.is_ok(),
            "{name} panicked on {what} ({} bytes): {:?}",
            input.len(),
            &input[..input.len().min(64)]
        );
    }
}

/// A small valid circuit to derive mutations/truncations from.
fn sample_aig() -> Aig {
    let mut g = Aig::new(4);
    let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
    let x = g.xor(a, b);
    let y = g.mux(c, x, !d);
    let z = g.and(y, !x);
    g.add_output(z);
    g.add_output(!y);
    g
}

fn valid_corpora() -> Vec<(&'static str, Vec<u8>)> {
    let g = sample_aig();
    let (mut aag, mut aig, mut bench) = (Vec::new(), Vec::new(), Vec::new());
    write_aag(&g, &mut aag).expect("write aag");
    write_aig(&g, &mut aig).expect("write aig");
    write_bench(&g, &mut bench).expect("write bench");
    vec![("aag", aag), ("aig", aig), ("bench", bench)]
}

#[test]
fn pure_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF022_5EED);
    for round in 0..600 {
        let len = rng.gen_range(0..512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert_no_panic(&bytes, &format!("garbage round {round}"));
    }
}

#[test]
fn garbage_with_plausible_headers_never_panics() {
    // Garbage is cheap to reject at the header; prefixing a valid-looking
    // header drives the fuzzer deep into the body parsers.
    let mut rng = StdRng::seed_from_u64(0xF022_5EED ^ 1);
    let heads: [&[u8]; 6] = [
        b"aag 7 4 0 2 3\n",
        b"aig 7 4 0 2 3\n",
        b"aag 4194304 4194304 0 0 0\n",
        b"INPUT(a)\nOUTPUT(f)\n",
        b"aag 0 0 0 0 0\n",
        b"aig 1000 2 0 1 998\n",
    ];
    for round in 0..400 {
        let head = heads[rng.gen_range(0..heads.len())];
        let len = rng.gen_range(0..256);
        let mut bytes = head.to_vec();
        bytes.extend((0..len).map(|_| rng.gen::<u8>()));
        assert_no_panic(&bytes, &format!("headed garbage round {round}"));
    }
}

#[test]
fn truncations_of_valid_files_never_panic() {
    for (fmt, bytes) in valid_corpora() {
        for cut in 0..bytes.len() {
            assert_no_panic(&bytes[..cut], &format!("{fmt} truncated at {cut}"));
        }
    }
}

#[test]
fn mutations_of_valid_files_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF022_5EED ^ 2);
    for (fmt, bytes) in valid_corpora() {
        for round in 0..400 {
            let mut m = bytes.clone();
            // 1–4 random byte edits: flips, overwrites, and splices.
            for _ in 0..rng.gen_range(1..5) {
                if m.is_empty() {
                    break;
                }
                let pos = rng.gen_range(0..m.len());
                match rng.gen_range(0..3) {
                    0 => m[pos] ^= 1u8 << rng.gen_range(0..8),
                    1 => m[pos] = rng.gen(),
                    _ => m.insert(pos, rng.gen()),
                }
            }
            assert_no_panic(&m, &format!("{fmt} mutation round {round}"));
        }
    }
}

#[test]
fn oversized_headers_error_without_allocating() {
    // Header-declared counts above MAX_PARSE_VARS must be structured errors
    // *before* any header-sized table is allocated; counts near usize::MAX
    // must not overflow the `m + 1` arithmetic either.
    let over = MAX_PARSE_VARS + 1;
    let huge = usize::MAX;
    for header in [
        format!("aag {over} 0 0 0 0\n"),
        format!("aag {huge} 0 0 0 0\n"),
        format!("aag {over} {over} 0 {over} 0\n"),
        format!("aig {over} 0 0 0 {over}\n"),
        format!("aig {huge} 1 0 1 {}\n", huge - 1),
    ] {
        assert!(read_aag(header.as_bytes()).is_err());
        assert!(read_aig(header.as_bytes()).is_err());
        assert_no_panic(header.as_bytes(), "oversized header");
    }
    // A .bench file declaring too many distinct signals is cut off by the
    // signal cap, not by memory pressure; exercise a truncated slice of one.
    let mut many = String::new();
    for k in 0..4096 {
        many.push_str(&format!("INPUT(sig_{k})\n"));
    }
    assert_no_panic(many.as_bytes(), "many bench inputs");
}
