//! Property tests for the optimization pipeline: every pass preserves
//! semantics exactly and the structural passes never grow the graph.
//!
//! Equivalence strategy per the pipeline contract:
//! * graphs with at most 16 inputs are checked **exhaustively** through
//!   `sim::eval_patterns_multi` (all `2^n` patterns, every output);
//! * wider graphs are checked on random patterns *and* through the
//!   column-fed path (`sim::eval_columns` over a random `BitColumns`
//!   dataset), so the two simulation front ends cross-validate each other.

use lsml_aig::aig::Aig;
use lsml_aig::opt::{BalancePass, CleanupPass, Pass, Pipeline, RewritePass, SweepPass};
use lsml_aig::rewrite::{rewrite, RewriteConfig};
use lsml_aig::sim::{eval_columns, eval_patterns_multi};
use lsml_aig::sweep::{sweep, SweepConfig};
use lsml_aig::Lit;
use lsml_pla::{Dataset, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A recipe for building a random AIG: a list of gate ops over existing lits.
#[derive(Clone, Debug)]
enum Op {
    And(u8, bool, u8, bool),
    Xor(u8, bool, u8, bool),
    Mux(u8, u8, u8),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::And(a, ca, b, cb)),
            (any::<u8>(), any::<bool>(), any::<u8>(), any::<bool>())
                .prop_map(|(a, ca, b, cb)| Op::Xor(a, ca, b, cb)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
        ],
        1..n,
    )
}

/// Builds a multi-output AIG over `ni` inputs from the op recipe: the last
/// literal plus a mid-recipe literal become outputs (one complemented), so
/// multi-output and complemented-output paths are always exercised.
fn build(ops: &[Op], ni: usize) -> Aig {
    let mut g = Aig::new(ni);
    let mut lits: Vec<Lit> = g.inputs();
    for op in ops {
        let pick = |i: u8, lits: &[Lit]| lits[i as usize % lits.len()];
        let l = match *op {
            Op::And(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.and(x, y)
            }
            Op::Xor(a, ca, b, cb) => {
                let x = pick(a, &lits).complement_if(ca);
                let y = pick(b, &lits).complement_if(cb);
                g.xor(x, y)
            }
            Op::Mux(s, t, e) => {
                let sv = pick(s, &lits);
                let tv = pick(t, &lits);
                let ev = pick(e, &lits);
                g.mux(sv, tv, ev)
            }
        };
        lits.push(l);
    }
    g.add_output(*lits.last().expect("at least one literal"));
    g.add_output(!lits[lits.len() / 2]);
    g
}

const NARROW: usize = 6;
const WIDE: usize = 24;

/// Exhaustive multi-output truth vectors via the word-parallel simulator.
fn truth_vectors(g: &Aig) -> Vec<Vec<bool>> {
    let ni = g.num_inputs();
    let patterns: Vec<Pattern> = (0..(1u64 << ni))
        .map(|m| Pattern::from_index(m, ni))
        .collect();
    eval_patterns_multi(g, &patterns)
}

/// Cleaned-up AND count (the baseline the passes must never exceed).
fn cleaned_ands(g: &Aig) -> usize {
    let mut c = g.clone();
    c.cleanup();
    c.num_ands()
}

/// Checks agreement between `a` and `b` on random patterns, through both
/// the row-fed and the column-fed simulation paths.
fn agree_wide(a: &Aig, b: &Aig, seed: u64) {
    let ni = a.num_inputs();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(ni);
    for _ in 0..300 {
        ds.push(Pattern::random(&mut rng, ni), rng.gen());
    }
    // Row-fed agreement.
    let pa = eval_patterns_multi(a, ds.patterns());
    let pb = eval_patterns_multi(b, ds.patterns());
    assert_eq!(pa, pb, "row-fed outputs diverge");
    // Column-fed agreement (also cross-checks the two front ends).
    let cols = ds.bit_columns();
    let ca = eval_columns(a, &cols);
    let cb = eval_columns(b, &cols);
    assert_eq!(ca, cb, "column-fed outputs diverge");
    for (o, packed) in ca.iter().enumerate() {
        for (k, &want) in pa[o].iter().enumerate() {
            let got = (packed[k / 64] >> (k % 64)) & 1 == 1;
            assert_eq!(got, want, "row/column disagreement at output {o} row {k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewrite_preserves_semantics_and_never_grows(ops in arb_ops(30)) {
        let g = build(&ops, NARROW);
        let before = truth_vectors(&g);
        for zero_gain in [false, true] {
            let cfg = RewriteConfig { zero_gain, ..RewriteConfig::default() };
            let h = rewrite(&g, &cfg);
            prop_assert!(h.num_ands() <= cleaned_ands(&g),
                "rewrite grew {} -> {}", cleaned_ands(&g), h.num_ands());
            prop_assert_eq!(truth_vectors(&h), before.clone());
        }
    }

    #[test]
    fn sweep_preserves_semantics_and_never_grows(ops in arb_ops(30)) {
        let g = build(&ops, NARROW);
        let before = truth_vectors(&g);
        let h = sweep(&g, &SweepConfig::default());
        prop_assert!(h.num_ands() <= cleaned_ands(&g),
            "sweep grew {} -> {}", cleaned_ands(&g), h.num_ands());
        prop_assert_eq!(truth_vectors(&h), before);
    }

    #[test]
    fn full_pipeline_preserves_semantics(ops in arb_ops(40)) {
        let g = build(&ops, NARROW);
        let before = truth_vectors(&g);
        let h = Pipeline::resyn(11).run_fixpoint(&g, 3);
        prop_assert!(h.num_ands() <= cleaned_ands(&g));
        prop_assert_eq!(truth_vectors(&h), before);
    }

    #[test]
    fn every_pass_preserves_structural_invariants(ops in arb_ops(30)) {
        // The structural verifier must hold after *every* pass state the
        // pipeline can produce, at both rewrite cut sizes — including the
        // zero-gain reshaping pass and the post-sweep merge state, which
        // exercise node replacement and strash rebuilds hardest.
        let g = build(&ops, NARROW);
        prop_assert!(g.check_invariants().is_ok(), "freshly built graph invalid");
        for k in [4usize, 6] {
            let passes: Vec<Box<dyn Pass>> = vec![
                Box::new(BalancePass),
                Box::new(RewritePass::default().with_cut_size(k)),
                Box::new(RewritePass::zero_gain().with_cut_size(k)),
                Box::new(SweepPass::seeded(17)),
                Box::new(CleanupPass),
            ];
            let mut current = g.clone();
            for pass in &passes {
                current = pass.run(&current);
                let check = current.check_invariants();
                prop_assert!(check.is_ok(),
                    "invariants violated after `{}` (k={}): {:?}", pass.name(), k, check);
            }
        }
    }

    #[test]
    fn wide_graphs_agree_on_random_and_columnar_stimulus(ops in arb_ops(40)) {
        // 24 inputs: exhaustive checking is out, so random + columnar
        // agreement is the contract.
        let g = build(&ops, WIDE);
        for (tag, h) in [
            ("rewrite", rewrite(&g, &RewriteConfig::default())),
            ("sweep", sweep(&g, &SweepConfig::default())),
            ("pipeline", Pipeline::resyn(13).run_fixpoint(&g, 2)),
        ] {
            let _ = tag;
            prop_assert!(h.num_ands() <= cleaned_ands(&g));
            agree_wide(&g, &h, 0xC0FFEE);
        }
    }
}
