//! Cooperative cancellation for long-running synthesis work.
//!
//! The serving path (`lsml-serve`) gives every request a deadline; deep in
//! the engine, [`Pipeline::run_fixpoint`](crate::opt::Pipeline::run_fixpoint)
//! rounds and batched candidate compiles are the units of work worth
//! interrupting. Threading a token argument through every pass signature
//! would churn the whole API for one caller, so the token rides a
//! thread-local instead: a caller wraps its work in [`with_token`] and the
//! engine polls [`cancelled`] at its natural pass boundaries.
//!
//! Two properties the engine relies on:
//!
//! - **Stickiness** — once a token reports cancelled it reports cancelled
//!   forever (a passed deadline latches the flag), so a check at the end of
//!   a pipeline can trust a check made at the start.
//! - **Partial results stay valid** — every exact pass is semantics-
//!   preserving, so work cut short between passes returns a graph that is
//!   merely less optimized, never wrong. Cancelled work must not be
//!   memoized though: the fixpoint and compile caches skip inserts when the
//!   active token has fired (a half-run pipeline proves nothing about
//!   convergence).
//!
//! The pool's fan-outs (`CompileBatch::compile_all`) re-install the caller's
//! token inside each closure, so cancellation crosses the work-stealing
//! boundary with the work.

use loom::sync::atomic::{AtomicBool, Ordering};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    /// Latched by [`CancelToken::cancel`] or a passed deadline.
    fired: AtomicBool,
    /// Absolute deadline, if the token carries a budget.
    deadline: Option<Instant>,
}

/// A sticky, shareable cancellation token (clones share one state).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::build(None)
    }

    /// A token that fires at `deadline` (or earlier via explicit cancel).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::build(Some(deadline))
    }

    /// A token that fires `budget` from now.
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken::build(Some(Instant::now() + budget))
    }

    fn build(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Fires the token; every clone observes it from now on.
    pub fn cancel(&self) {
        self.inner.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired (explicitly or by deadline). Sticky: a
    /// passed deadline latches the flag, so this never un-fires.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.fired.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.fired.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// Time left before the deadline (None when the token has no deadline;
    /// zero once it passed). Schedulers use this to size sub-budgets.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// The token governing work on this thread, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed token when the scope ends — including
/// by panic, so a worker that catches an unwinding request does not leak the
/// request's token into unrelated work.
struct Restore(Option<CancelToken>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `token` installed as this thread's active cancellation
/// token; the previous token (if any) is restored afterwards, panics
/// included.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// The token installed on this thread, if any. Fan-outs capture this before
/// spawning and re-install it (via [`with_token`]) inside each closure.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether this thread's active token (if any) has fired. The engine's
/// pass-boundary poll: cheap enough for every pipeline pass and batch
/// candidate, absent tokens cost one thread-local read.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.is_cancelled()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "sticky");
    }

    #[test]
    fn passed_deadline_fires_and_latches() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn with_token_installs_and_restores() {
        assert!(current().is_none());
        let outer = CancelToken::new();
        with_token(&outer, || {
            assert!(!cancelled());
            let inner = CancelToken::new();
            inner.cancel();
            with_token(&inner, || assert!(cancelled()));
            // The outer token is back after the nested scope.
            assert!(!cancelled());
        });
        assert!(current().is_none());
    }

    #[test]
    fn with_token_restores_across_panics() {
        let t = CancelToken::new();
        let r = std::panic::catch_unwind(|| with_token(&t, || panic!("boom")));
        assert!(r.is_err());
        assert!(current().is_none(), "token must not leak past the unwind");
    }

    #[test]
    fn no_token_means_not_cancelled() {
        assert!(!cancelled());
    }
}
