//! The core AIG graph.

use std::collections::HashMap;
use std::fmt;

use crate::fxhash::FxHashMap;
use crate::lit::Lit;

/// One AND node: two fanin literals. Constant and input nodes store
/// `(FALSE, FALSE)` as a sentinel and are distinguished by index.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct Node {
    pub f0: Lit,
    pub f1: Lit,
}

/// An And-Inverter Graph with structural hashing and constant folding.
///
/// Node indices are laid out AIGER-style: node 0 is the constant-false node,
/// nodes `1..=num_inputs` are the primary inputs, and every later node is a
/// two-input AND. Edges ([`Lit`]) may be complemented. The graph grows
/// append-only; [`Aig::cleanup`] compacts away logic unreachable from the
/// outputs.
///
/// # Examples
///
/// ```
/// use lsml_aig::Aig;
///
/// let mut aig = Aig::new(2);
/// let (a, b) = (aig.input(0), aig.input(1));
/// let f = aig.or(a, b);
/// aig.add_output(f);
/// assert_eq!(aig.eval(&[false, true]), vec![true]);
/// assert_eq!(aig.num_ands(), 1); // OR = complemented AND of complements
/// ```
#[derive(Clone)]
pub struct Aig {
    num_inputs: usize,
    pub(crate) nodes: Vec<Node>,
    outputs: Vec<Lit>,
    strash: FxHashMap<(Lit, Lit), u32>,
}

impl Aig {
    /// Creates an AIG with `num_inputs` primary inputs and no outputs.
    pub fn new(num_inputs: usize) -> Self {
        let sentinel = Node {
            f0: Lit::FALSE,
            f1: Lit::FALSE,
        };
        Aig {
            num_inputs,
            nodes: vec![sentinel; num_inputs + 1],
            outputs: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of AND nodes (the contest's size metric).
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// Total node count including the constant and the inputs.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The literal of primary input `i` (uncomplemented).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    #[inline]
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.num_inputs, "input index {i} out of range");
        Lit::new((i + 1) as u32, false)
    }

    /// All primary-input literals in order.
    pub fn inputs(&self) -> Vec<Lit> {
        (0..self.num_inputs).map(|i| self.input(i)).collect()
    }

    /// Whether node `n` is a primary input.
    #[inline]
    pub fn is_input(&self, n: u32) -> bool {
        n >= 1 && (n as usize) <= self.num_inputs
    }

    /// Whether node `n` is an AND gate.
    #[inline]
    pub fn is_and(&self, n: u32) -> bool {
        (n as usize) > self.num_inputs && (n as usize) < self.nodes.len()
    }

    /// The fanins of AND node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an AND node.
    #[inline]
    pub fn fanins(&self, n: u32) -> (Lit, Lit) {
        assert!(self.is_and(n), "node {n} is not an AND");
        let node = &self.nodes[n as usize];
        (node.f0, node.f1)
    }

    /// AND of two literals, with constant folding, trivial-case rewriting and
    /// structural hashing (an existing identical node is reused).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        // Constant folding and unit rules.
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return Lit::new(n, false);
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(Node { f0: a, f1: b });
        self.strash.insert((a, b), n);
        Lit::new(n, false)
    }

    /// Non-mutating probe of [`Aig::and`]: returns the literal the AND of
    /// `a` and `b` *would* resolve to — via constant folding, the unit rules
    /// or a structural-hash hit — without creating any node. `None` means a
    /// call to [`Aig::and`] would allocate a fresh node. Used by the
    /// rewriting pass to price candidate structures against logic the graph
    /// already contains.
    pub fn lookup_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if a == b {
            return Some(a);
        }
        self.strash.get(&(a, b)).map(|&n| Lit::new(n, false))
    }

    /// OR of two literals (De Morgan on [`Aig::and`]).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR of two literals (three AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n0 = self.and(a, !b);
        let n1 = self.and(!a, b);
        self.or(n0, n1)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// If-then-else: `sel ? t : e` (three AND nodes).
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// AND over a slice of literals, combined as a balanced tree.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (left, right) = lits.split_at(mid);
                let l = self.and_many(left);
                let r = self.and_many(right);
                self.and(l, r)
            }
        }
    }

    /// OR over a slice of literals, combined as a balanced tree.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (left, right) = lits.split_at(mid);
                let l = self.or_many(left);
                let r = self.or_many(right);
                self.or(l, r)
            }
        }
    }

    /// XOR over a slice of literals, combined as a balanced tree.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (left, right) = lits.split_at(mid);
                let l = self.xor_many(left);
                let r = self.xor_many(right);
                self.xor(l, r)
            }
        }
    }

    /// Registers a primary output and returns its index.
    pub fn add_output(&mut self, lit: Lit) -> usize {
        self.outputs.push(lit);
        self.outputs.len() - 1
    }

    /// The primary-output literals.
    #[inline]
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Replaces output `i` with a new literal.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_output(&mut self, i: usize, lit: Lit) {
        self.outputs[i] = lit;
    }

    /// Removes all outputs (logic stays; call [`Aig::cleanup`] to drop it).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Evaluates all outputs on one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (i, &v) in inputs.iter().enumerate() {
            values[i + 1] = v;
        }
        for n in (self.num_inputs + 1)..self.nodes.len() {
            let Node { f0, f1 } = self.nodes[n];
            let v0 = values[f0.node() as usize] ^ f0.is_complemented();
            let v1 = values[f1.node() as usize] ^ f1.is_complemented();
            values[n] = v0 && v1;
        }
        self.outputs
            .iter()
            .map(|o| values[o.node() as usize] ^ o.is_complemented())
            .collect()
    }

    /// The level (depth in AND gates) of every node; constants and inputs are
    /// level 0, an AND is one more than its deepest fanin.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for n in (self.num_inputs + 1)..self.nodes.len() {
            let Node { f0, f1 } = self.nodes[n];
            level[n] = 1 + level[f0.node() as usize].max(level[f1.node() as usize]);
        }
        level
    }

    /// The circuit depth: the maximum level over all outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Compacts the graph, keeping only logic reachable from the outputs.
    /// Input count and output order are preserved; structural hashing is
    /// rebuilt. Returns the number of AND nodes removed.
    pub fn cleanup(&mut self) -> usize {
        let before = self.num_ands();
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|o| o.node()).collect();
        while let Some(n) = stack.pop() {
            if reachable[n as usize] {
                continue;
            }
            reachable[n as usize] = true;
            if self.is_and(n) {
                let Node { f0, f1 } = self.nodes[n as usize];
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        let mut fresh = Aig::new(self.num_inputs);
        let mut map = vec![Lit::FALSE; self.nodes.len()];
        for (i, slot) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *slot = Lit::new(i as u32, false);
        }
        for n in (self.num_inputs + 1)..self.nodes.len() {
            if !reachable[n] {
                continue;
            }
            let Node { f0, f1 } = self.nodes[n];
            let a = map[f0.node() as usize].complement_if(f0.is_complemented());
            let b = map[f1.node() as usize].complement_if(f1.is_complemented());
            map[n] = fresh.and(a, b);
        }
        for o in &self.outputs {
            let l = map[o.node() as usize].complement_if(o.is_complemented());
            fresh.outputs.push(l);
        }
        *self = fresh;
        before - self.num_ands()
    }

    /// Copies another AIG's logic into this one, mapping the other graph's
    /// input `i` to `input_map[i]`. Returns the other graph's output literals
    /// re-expressed in this graph.
    ///
    /// # Panics
    ///
    /// Panics if `input_map.len() != other.num_inputs()`.
    pub fn append(&mut self, other: &Aig, input_map: &[Lit]) -> Vec<Lit> {
        assert_eq!(
            input_map.len(),
            other.num_inputs,
            "input map arity mismatch"
        );
        let mut map = vec![Lit::FALSE; other.nodes.len()];
        for (i, &l) in input_map.iter().enumerate() {
            map[i + 1] = l;
        }
        for n in (other.num_inputs + 1)..other.nodes.len() {
            let Node { f0, f1 } = other.nodes[n];
            let a = map[f0.node() as usize].complement_if(f0.is_complemented());
            let b = map[f1.node() as usize].complement_if(f1.is_complemented());
            map[n] = self.and(a, b);
        }
        other
            .outputs
            .iter()
            .map(|o| map[o.node() as usize].complement_if(o.is_complemented()))
            .collect()
    }

    /// Rebuilds this graph substituting some nodes by constants:
    /// `substitutions[n] = Some(v)` forces node `n` to the constant `v`.
    /// Constant folding then propagates through the cone. Outputs and input
    /// count are preserved.
    pub fn substitute_constants(&self, substitutions: &HashMap<u32, bool>) -> Aig {
        let mut fresh = Aig::new(self.num_inputs);
        let mut map = vec![Lit::FALSE; self.nodes.len()];
        for (i, slot) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *slot = Lit::new(i as u32, false);
        }
        for n in (self.num_inputs + 1)..self.nodes.len() {
            if let Some(&v) = substitutions.get(&(n as u32)) {
                map[n] = Lit::constant(v);
                continue;
            }
            let Node { f0, f1 } = self.nodes[n];
            let a = map[f0.node() as usize].complement_if(f0.is_complemented());
            let b = map[f1.node() as usize].complement_if(f1.is_complemented());
            map[n] = fresh.and(a, b);
        }
        for o in &self.outputs {
            let l = map[o.node() as usize].complement_if(o.is_complemented());
            fresh.outputs.push(l);
        }
        fresh.cleanup();
        fresh
    }

    /// Extracts the logic cone of `outputs` into a fresh AIG with the same
    /// input count, in a **canonical** node order: the result depends only
    /// on the logical structure of the cone, not on the order in which the
    /// source graph happened to create its nodes. Two structurally
    /// isomorphic cones — e.g. the same candidate emitted into a fresh
    /// builder versus into a shared strashed graph where half its nodes
    /// were deduplicated against other candidates — extract to *identical*
    /// graphs (equal [`Aig::structural_fingerprint`]).
    ///
    /// Canonicalization works bottom-up: every cone node gets a 128-bit
    /// structural key (inputs keyed by index, ANDs by an order-insensitive
    /// mix of their fanin keys), and the rebuild DFS visits the
    /// smaller-keyed fanin first. Under structural hashing two distinct
    /// nodes never share a key (equal keys would mean equal structure,
    /// which strash collapses), so the visit order is well-defined.
    ///
    /// This is the entry point of the batched compile path: candidates
    /// built into one shared graph are compiled via their extracted cone,
    /// and canonicalization guarantees the result is bit-identical to
    /// compiling the candidate from scratch.
    pub fn extract_cone(&self, outputs: &[Lit]) -> Aig {
        // Pass 1: collect the cone (iterative DFS, any order).
        let mut in_cone = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for o in outputs {
            stack.push(o.node());
        }
        while let Some(n) = stack.pop() {
            if in_cone[n as usize] {
                continue;
            }
            in_cone[n as usize] = true;
            if self.is_and(n) {
                let Node { f0, f1 } = self.nodes[n as usize];
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        // Pass 2: canonical keys, bottom-up (index order is topological).
        let mix = |a: u128, b: u128| -> u128 {
            let lo = crate::fxhash::fnv1a_mix(
                crate::fxhash::fnv1a_mix(crate::fxhash::FNV_OFFSET, a as u64),
                b as u64,
            );
            let hi = ((a >> 64) as u64 ^ (b >> 64) as u64 ^ lo.rotate_left(31))
                .wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
            (u128::from(hi) << 64) | u128::from(lo)
        };
        let mut key = vec![0u128; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if !in_cone[n] {
                continue;
            }
            key[n] = if n == 0 {
                1
            } else if !self.is_and(n as u32) {
                mix(2, n as u128)
            } else {
                let Node { f0, f1 } = self.nodes[n];
                let k0 = (key[f0.node() as usize] << 1) | u128::from(f0.is_complemented());
                let k1 = (key[f1.node() as usize] << 1) | u128::from(f1.is_complemented());
                let (lo, hi) = if k0 <= k1 { (k0, k1) } else { (k1, k0) };
                mix(lo, hi)
            };
        }
        // Pass 3: canonical-order rebuild (post-order DFS, smaller key
        // first), re-strashing through `and` so folding stays normalized.
        let mut fresh = Aig::new(self.num_inputs);
        let mut map = vec![Lit::FALSE; self.nodes.len()];
        let mut mapped = vec![false; self.nodes.len()];
        for (i, slot) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *slot = Lit::new(i as u32, false);
            mapped[i] = true;
        }
        let mut dfs: Vec<(u32, bool)> = Vec::new();
        for o in outputs {
            dfs.push((o.node(), false));
            while let Some((n, expanded)) = dfs.pop() {
                if mapped[n as usize] {
                    continue;
                }
                let Node { f0, f1 } = self.nodes[n as usize];
                if expanded {
                    let a = map[f0.node() as usize].complement_if(f0.is_complemented());
                    let b = map[f1.node() as usize].complement_if(f1.is_complemented());
                    map[n as usize] = fresh.and(a, b);
                    mapped[n as usize] = true;
                } else {
                    dfs.push((n, true));
                    let ka = key[f0.node() as usize];
                    let kb = key[f1.node() as usize];
                    let (first, second) = if ka <= kb { (f0, f1) } else { (f1, f0) };
                    // Pushed in reverse so `first` pops (and maps) first.
                    dfs.push((second.node(), false));
                    dfs.push((first.node(), false));
                }
            }
            let l = map[o.node() as usize].complement_if(o.is_complemented());
            fresh.outputs.push(l);
        }
        fresh
    }

    /// A constant-output AIG (useful as a fallback model).
    pub fn constant(num_inputs: usize, value: bool) -> Aig {
        let mut aig = Aig::new(num_inputs);
        aig.add_output(Lit::constant(value));
        aig
    }

    /// Debug-mode structural verifier: checks every representation
    /// invariant the optimization passes rely on and returns the first
    /// violation as a message. `Ok` on a well-formed graph.
    ///
    /// Checked invariants:
    ///
    /// * **Node layout** — node 0 is the constant, nodes `1..=num_inputs`
    ///   are inputs, all carry the `(FALSE, FALSE)` sentinel;
    /// * **Acyclicity** — every AND's fanins point at strictly smaller node
    ///   indices (append-only construction makes index order topological);
    /// * **Folding** — no AND has a constant fanin or two fanins on the same
    ///   node (`x∧x`, `x∧¬x` and constant cases fold in [`Aig::and`]);
    /// * **Canonical child order** — `f0.raw() < f1.raw()`;
    /// * **Strash consistency** — every AND resolves to itself through
    ///   [`Aig::lookup_and`], every strash entry points at a live AND with
    ///   exactly the entry's fanins, and the table records each AND once
    ///   (no dangling entries beyond the recorded nodes);
    /// * **Outputs** — every output literal points inside the node table.
    ///
    /// Runs in `O(nodes + outputs)`. The optimization pipeline calls this
    /// after every pass in debug builds and when `LSML_CHECK=1`
    /// (see [`crate::opt`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n_nodes = self.nodes.len();
        if n_nodes < self.num_inputs + 1 {
            return Err(format!(
                "node table holds {n_nodes} nodes, need {} for constant + inputs",
                self.num_inputs + 1
            ));
        }
        let sentinel = Node {
            f0: Lit::FALSE,
            f1: Lit::FALSE,
        };
        for n in 0..=self.num_inputs {
            if self.nodes[n] != sentinel {
                return Err(format!(
                    "non-AND node {n} lost its sentinel fanins: {:?}",
                    self.nodes[n]
                ));
            }
        }
        for n in (self.num_inputs + 1)..n_nodes {
            let Node { f0, f1 } = self.nodes[n];
            for f in [f0, f1] {
                if f.node() as usize >= n {
                    return Err(format!(
                        "AND {n} fanin {f:?} is not topologically earlier (cycle or forward edge)"
                    ));
                }
            }
            if f0.node() == 0 || f1.node() == 0 {
                return Err(format!(
                    "AND {n} has an unfolded constant fanin ({f0:?}, {f1:?})"
                ));
            }
            if f0.node() == f1.node() {
                return Err(format!(
                    "AND {n} has both fanins on node {} (x∧x / x∧¬x must fold)",
                    f0.node()
                ));
            }
            if f0.raw() >= f1.raw() {
                return Err(format!(
                    "AND {n} fanins not in canonical order: {} !< {}",
                    f0.raw(),
                    f1.raw()
                ));
            }
            match self.lookup_and(f0, f1) {
                Some(l) if l == Lit::new(n as u32, false) => {}
                other => {
                    return Err(format!(
                        "strash inconsistency: AND {n} ({f0:?}, {f1:?}) resolves to {other:?}"
                    ));
                }
            }
        }
        if self.strash.len() != self.num_ands() {
            return Err(format!(
                "strash records {} entries for {} AND nodes (dangling or missing entries)",
                self.strash.len(),
                self.num_ands()
            ));
        }
        for (&(a, b), &n) in &self.strash {
            if !self.is_and(n) {
                return Err(format!(
                    "strash entry ({a:?}, {b:?}) -> {n} points at a non-AND node"
                ));
            }
            let node = self.nodes[n as usize];
            if (node.f0, node.f1) != (a, b) {
                return Err(format!(
                    "strash entry ({a:?}, {b:?}) -> {n} mismatches node fanins {node:?}"
                ));
            }
        }
        for (i, o) in self.outputs.iter().enumerate() {
            if o.node() as usize >= n_nodes {
                return Err(format!(
                    "output {i} ({o:?}) points past the node table ({n_nodes} nodes)"
                ));
            }
        }
        Ok(())
    }

    /// A 128-bit structural fingerprint: two independent multiply-xor
    /// streams over the input count, every AND node's fanin literals (in
    /// index order), and the output literals. Graphs with equal
    /// fingerprints are treated as structurally identical by the
    /// optimization-fixpoint and compile caches; at 128 bits, an accidental
    /// collision is beyond reach for any realistic workload, and a cache
    /// collision would only ever swap in a *previously compiled* circuit,
    /// never corrupt a graph.
    pub fn structural_fingerprint(&self) -> u128 {
        // Stream 1 is plain FNV-1a; stream 2 deliberately uses a different
        // rotation and multiplier so the two halves stay independent.
        let mut h1 = crate::fxhash::FNV_OFFSET;
        let mut h2 = 0x9e37_79b9_7f4a_7c15u64; // golden-ratio basis
        let mut feed = |v: u64| {
            h1 = crate::fxhash::fnv1a_mix(h1, v);
            h2 = (h2 ^ v.rotate_left(23)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        };
        feed(self.num_inputs as u64);
        for n in (self.num_inputs + 1)..self.nodes.len() {
            let Node { f0, f1 } = self.nodes[n];
            feed((u64::from(f0.raw()) << 32) | u64::from(f1.raw()));
        }
        feed(u64::MAX); // separator: nodes vs outputs
        for o in &self.outputs {
            feed(u64::from(o.raw()));
        }
        (u128::from(h1) << 64) | u128::from(h2)
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig({} inputs, {} ands, {} outputs, depth {})",
            self.num_inputs,
            self.num_ands(),
            self.outputs.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_rules_fold() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn strash_reuses_nodes() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
        let z = g.and(!a, b);
        assert_ne!(x, z);
        assert_eq!(g.num_ands(), 2);
    }

    #[test]
    fn eval_gates() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let and = g.and(a, b);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        g.add_output(and);
        g.add_output(or);
        g.add_output(xor);
        for (ia, ib) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = g.eval(&[ia, ib]);
            assert_eq!(v, vec![ia && ib, ia || ib, ia ^ ib]);
        }
    }

    #[test]
    fn mux_selects() {
        let mut g = Aig::new(3);
        let (s, t, e) = (g.input(0), g.input(1), g.input(2));
        let m = g.mux(s, t, e);
        g.add_output(m);
        assert_eq!(g.eval(&[true, true, false]), vec![true]);
        assert_eq!(g.eval(&[false, true, false]), vec![false]);
        assert_eq!(g.eval(&[false, false, true]), vec![true]);
    }

    #[test]
    fn many_helpers() {
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let all = g.and_many(&ins);
        let any = g.or_many(&ins);
        let parity = g.xor_many(&ins);
        g.add_output(all);
        g.add_output(any);
        g.add_output(parity);
        assert_eq!(g.eval(&[true, true, true, true]), vec![true, true, false]);
        assert_eq!(
            g.eval(&[false, true, false, false]),
            vec![false, true, true]
        );
        assert_eq!(
            g.eval(&[false, false, false, false]),
            vec![false, false, false]
        );
    }

    #[test]
    fn empty_many_are_constants() {
        let mut g = Aig::new(1);
        assert_eq!(g.and_many(&[]), Lit::TRUE);
        assert_eq!(g.or_many(&[]), Lit::FALSE);
        assert_eq!(g.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.add_output(y);
        assert_eq!(g.depth(), 2);
        let levels = g.levels();
        assert_eq!(levels[x.node() as usize], 1);
        assert_eq!(levels[y.node() as usize], 2);
    }

    #[test]
    fn cleanup_drops_dangling() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let _dead = g.xor(a, b); // 3 ANDs, never used
        let live = g.and(a, b);
        g.add_output(live);
        assert_eq!(g.num_ands(), 4);
        let removed = g.cleanup();
        assert_eq!(removed, 3);
        assert_eq!(g.num_ands(), 1);
        assert_eq!(g.eval(&[true, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn cleanup_preserves_constant_outputs() {
        let mut g = Aig::new(2);
        g.add_output(Lit::TRUE);
        g.cleanup();
        assert_eq!(g.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn append_composes_graphs() {
        let mut inner = Aig::new(2);
        let (a, b) = (inner.input(0), inner.input(1));
        let x = inner.xor(a, b);
        inner.add_output(x);

        let mut outer = Aig::new(3);
        let (p, q, r) = (outer.input(0), outer.input(1), outer.input(2));
        let pq = outer.and(p, q);
        let outs = outer.append(&inner, &[pq, r]);
        outer.add_output(outs[0]);
        // f = (p AND q) XOR r
        assert_eq!(outer.eval(&[true, true, false]), vec![true]);
        assert_eq!(outer.eval(&[true, true, true]), vec![false]);
        assert_eq!(outer.eval(&[false, true, true]), vec![true]);
    }

    #[test]
    fn substitute_constants_rewires() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        g.add_output(x);
        // Force the XOR's top node to constant true: output becomes constant.
        let n = x.node();
        let mut subs = HashMap::new();
        subs.insert(n, !x.is_complemented());
        let forced = g.substitute_constants(&subs);
        assert_eq!(forced.eval(&[false, false]), vec![true]);
        assert_eq!(forced.eval(&[true, false]), vec![true]);
        assert_eq!(forced.num_ands(), 0);
    }

    #[test]
    fn structural_fingerprint_tracks_structure() {
        let build = |swap: bool| {
            let mut g = Aig::new(2);
            let (a, b) = (g.input(0), g.input(1));
            let f = if swap { g.or(a, b) } else { g.and(a, b) };
            g.add_output(f);
            g
        };
        assert_eq!(
            build(false).structural_fingerprint(),
            build(false).structural_fingerprint()
        );
        assert_ne!(
            build(false).structural_fingerprint(),
            build(true).structural_fingerprint()
        );
        // Dangling logic participates until cleaned up.
        let mut g = build(false);
        let fp = g.structural_fingerprint();
        let (a, b) = (g.input(0), g.input(1));
        let _dead = g.xor(a, b);
        assert_ne!(g.structural_fingerprint(), fp);
        g.cleanup();
        assert_eq!(g.structural_fingerprint(), fp);
    }

    #[test]
    fn extract_cone_keeps_semantics_and_drops_dead_logic() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let _dead = g.xor(b, c);
        let x = g.and(a, b);
        let f = g.or(x, c);
        g.add_output(f);
        let cone = g.extract_cone(&[f]);
        assert_eq!(cone.num_inputs(), 3);
        assert_eq!(cone.num_ands(), 2);
        for m in 0..8u32 {
            let bits = [m & 1 != 0, m & 2 != 0, m & 4 != 0];
            assert_eq!(cone.eval(&bits), g.eval(&bits));
        }
    }

    #[test]
    fn extract_cone_is_creation_order_canonical() {
        // The same candidate emitted standalone vs into a shared graph
        // (where strash remaps its nodes to arbitrary indices) must extract
        // to the identical graph.
        let build_candidate = |g: &mut Aig| {
            let (a, b, c) = (g.input(0), g.input(1), g.input(2));
            let x = g.xor(a, b);
            let y = g.and(x, c);
            g.or(y, !a)
        };
        let mut standalone = Aig::new(3);
        let f1 = build_candidate(&mut standalone);

        let mut shared = Aig::new(3);
        // Pre-populate with overlapping logic in a different order so the
        // candidate's nodes land at different indices / orderings.
        let (a, b, c) = (shared.input(0), shared.input(1), shared.input(2));
        let pre = shared.and(b, c);
        let _pre2 = shared.xor(a, pre);
        let f2 = build_candidate(&mut shared);

        let e1 = standalone.extract_cone(&[f1]);
        let e2 = shared.extract_cone(&[f2]);
        assert_eq!(e1.structural_fingerprint(), e2.structural_fingerprint());
        assert_eq!(e1.num_ands(), e2.num_ands());
        // And extraction is idempotent.
        let e3 = e1.extract_cone(&[e1.outputs()[0]]);
        assert_eq!(e1.structural_fingerprint(), e3.structural_fingerprint());
    }

    #[test]
    fn extract_cone_handles_constant_and_input_outputs() {
        let g = Aig::new(2);
        let a = g.input(0);
        let cone = g.extract_cone(&[Lit::TRUE, !a]);
        assert_eq!(cone.num_ands(), 0);
        assert_eq!(cone.eval(&[true, false]), vec![true, false]);
    }

    #[test]
    fn constant_aig() {
        let g = Aig::constant(3, true);
        assert_eq!(g.eval(&[false, true, false]), vec![true]);
        assert_eq!(g.num_ands(), 0);
    }
}
