//! Simulation-guided equivalence sweeping (SAT sweeping without the SAT).
//!
//! Structural hashing only merges *syntactically* identical AND nodes; two
//! different structures computing the same function survive it. This pass
//! finds them the way fraiging does:
//!
//! 1. **Signatures** — every node is simulated word-parallel through the
//!    existing [`crate::sim`] machinery (64 patterns per word). Stimulus is
//!    random by default; [`sweep_with_columns`] prepends the application's
//!    own [`BitColumns`] words as *additional discriminators*: nodes that
//!    random patterns cannot tell apart but the real data does are split
//!    into separate classes early, so fewer candidate pairs reach the
//!    expensive verification step. (Signatures only ever *filter*
//!    candidates — merging itself is always decided by the exhaustive
//!    check below, never by on-distribution agreement.)
//! 2. **Candidate classes** — nodes bucket by complement-canonical
//!    signature, so `f` and `!f` share a class.
//! 3. **Verification** — a candidate pair is merged only after *exhaustive*
//!    equivalence checking over the union support of the two cones, and only
//!    when that support is small (`max_support`); everything else is left
//!    untouched. Merging is therefore exact: the pass preserves semantics
//!    bit for bit, unlike [`crate::approx`].
//!
//! The result never has more AND nodes than the (cleaned-up) input.

use std::collections::HashMap;
use std::sync::Arc;

use lsml_pla::BitColumns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aig::Aig;
use crate::lit::Lit;
use crate::sim::node_values_words;

/// Configuration for [`sweep`].
#[derive(Clone, Debug, Default)]
pub struct SweepConfig {
    /// Random 64-pattern simulation rounds feeding the signatures (at least
    /// one round always runs). Default 4 (256 random patterns).
    pub rounds: usize,
    /// RNG seed for the random stimulus.
    pub seed: u64,
    /// Candidate pairs whose union cone support exceeds this are skipped
    /// (exhaustive verification is `2^support` patterns). Default 12.
    pub max_support: usize,
    /// Candidate pairs whose union cone exceeds this many AND nodes are
    /// skipped. Default 400.
    pub max_cone: usize,
    /// Upper bound on verification attempts per pass. Default 2048.
    pub max_pairs: usize,
    /// Optional application stimulus: its packed words are prepended to the
    /// random signature words.
    pub stimulus: Option<Arc<BitColumns>>,
}

impl SweepConfig {
    fn rounds(&self) -> usize {
        if self.rounds == 0 {
            4
        } else {
            self.rounds
        }
    }
    fn max_support(&self) -> usize {
        if self.max_support == 0 {
            12
        } else {
            self.max_support.min(16)
        }
    }
    fn max_cone(&self) -> usize {
        if self.max_cone == 0 {
            400
        } else {
            self.max_cone
        }
    }
    fn max_pairs(&self) -> usize {
        if self.max_pairs == 0 {
            2048
        } else {
            self.max_pairs
        }
    }
}

/// One sweeping pass with the configured stimulus. Semantics are preserved
/// exactly; the result never has more AND nodes than the cleaned-up input.
pub fn sweep(aig: &Aig, cfg: &SweepConfig) -> Aig {
    let mut g = aig.clone();
    g.cleanup();
    if g.num_ands() == 0 {
        return g;
    }
    let n_nodes = g.num_nodes();
    let ni = g.num_inputs();

    // --- signatures -----------------------------------------------------
    let mut sig: Vec<Vec<u64>> = vec![Vec::new(); n_nodes];
    let mut masks: Vec<u64> = Vec::new();
    let mut input_words = vec![0u64; ni];
    if let Some(cols) = cfg
        .stimulus
        .as_ref()
        .filter(|c| c.num_examples() > 0 && c.num_inputs() == ni)
    {
        for w in 0..cols.words_per_column() {
            for (i, word) in input_words.iter_mut().enumerate() {
                *word = cols.column(i)[w];
            }
            let mask = if w + 1 == cols.words_per_column() {
                cols.tail_mask()
            } else {
                u64::MAX
            };
            push_round(&g, &input_words, mask, &mut sig, &mut masks);
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.rounds() {
        for w in input_words.iter_mut() {
            *w = rng.gen();
        }
        push_round(&g, &input_words, u64::MAX, &mut sig, &mut masks);
    }

    // --- candidate classes + verified merging ---------------------------
    // Representative nodes per canonical signature; AND nodes that verify
    // equivalent to an earlier node are substituted by it.
    let mut buckets: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
    let mut subst: Vec<Option<Lit>> = vec![None; n_nodes];
    let mut attempts = 0usize;
    let mut scratch = vec![0u64; n_nodes];
    for n in 0..n_nodes as u32 {
        let flip = sig[n as usize][0] & 1 == 1;
        let canon: Vec<u64> = sig[n as usize]
            .iter()
            .zip(masks.iter())
            .map(|(&w, &m)| if flip { !w & m } else { w })
            .collect();
        let reps = buckets.entry(canon).or_default();
        let mut merged = false;
        if g.is_and(n) {
            for &r in reps.iter().take(2) {
                if attempts >= cfg.max_pairs() {
                    break;
                }
                attempts += 1;
                let r_flip = sig[r as usize][0] & 1 == 1;
                let inv = flip != r_flip;
                if verify_pair(&g, r, n, inv, cfg, &mut scratch) {
                    subst[n as usize] = Some(Lit::new(r, false).complement_if(inv));
                    merged = true;
                    break;
                }
            }
        }
        if !merged && reps.len() < 4 {
            reps.push(n);
        }
    }

    // --- apply substitutions -------------------------------------------
    let mut fresh = Aig::new(ni);
    let mut map: Vec<Lit> = vec![Lit::FALSE; n_nodes];
    for (i, slot) in map.iter_mut().enumerate().take(ni + 1) {
        *slot = Lit::new(i as u32, false);
    }
    for n in (ni + 1)..n_nodes {
        map[n] = match subst[n] {
            Some(l) => map[l.node() as usize].complement_if(l.is_complemented()),
            None => {
                let (f0, f1) = g.fanins(n as u32);
                let a = map[f0.node() as usize].complement_if(f0.is_complemented());
                let b = map[f1.node() as usize].complement_if(f1.is_complemented());
                fresh.and(a, b)
            }
        };
    }
    for o in g.outputs() {
        let l = map[o.node() as usize].complement_if(o.is_complemented());
        fresh.add_output(l);
    }
    fresh.cleanup();
    if fresh.num_ands() <= g.num_ands() {
        fresh
    } else {
        g
    }
}

/// Convenience wrapper: sweep with the application's bit columns prepended
/// to the signature stimulus.
pub fn sweep_with_columns(aig: &Aig, cols: Arc<BitColumns>, cfg: &SweepConfig) -> Aig {
    let cfg = SweepConfig {
        stimulus: Some(cols),
        ..cfg.clone()
    };
    sweep(aig, &cfg)
}

/// Simulates one 64-pattern word and appends every node's value word to its
/// signature.
fn push_round(g: &Aig, input_words: &[u64], mask: u64, sig: &mut [Vec<u64>], masks: &mut Vec<u64>) {
    let values = node_values_words(g, input_words);
    for (s, v) in sig.iter_mut().zip(values.iter()) {
        s.push(v & mask);
    }
    masks.push(mask);
}

/// Word `k` of the exhaustive enumeration of support variable `j`: patterns
/// are numbered `chunk * 64 + bit`, variable `j`'s value is bit `j` of the
/// pattern number.
fn support_word(j: usize, chunk: u64) -> u64 {
    const TILE: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if j < 6 {
        TILE[j]
    } else if (chunk >> (j - 6)) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

/// Exhaustively verifies `value(r) == value(n) ^ inv` over the union support
/// of the two cones. Returns `false` (no merge) when the support or cone is
/// too large for exhaustive checking.
fn verify_pair(g: &Aig, r: u32, n: u32, inv: bool, cfg: &SweepConfig, values: &mut [u64]) -> bool {
    // Collect the union cone (AND nodes) and support (primary inputs).
    let mut cone: Vec<u32> = Vec::new();
    let mut support: Vec<u32> = Vec::new();
    let mut seen = HashMap::new();
    let mut stack = vec![r, n];
    while let Some(m) = stack.pop() {
        if seen.insert(m, ()).is_some() {
            continue;
        }
        if g.is_and(m) {
            cone.push(m);
            if cone.len() > cfg.max_cone() {
                return false;
            }
            let (f0, f1) = g.fanins(m);
            stack.push(f0.node());
            stack.push(f1.node());
        } else if g.is_input(m) {
            support.push(m);
            if support.len() > cfg.max_support() {
                return false;
            }
        }
    }
    cone.sort_unstable(); // node ids are topological
    support.sort_unstable();

    let s = support.len();
    let chunks = if s > 6 { 1u64 << (s - 6) } else { 1 };
    let valid = if s >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << s)) - 1
    };
    for chunk in 0..chunks {
        for (j, &input) in support.iter().enumerate() {
            values[input as usize] = support_word(j, chunk);
        }
        for &m in &cone {
            let (f0, f1) = g.fanins(m);
            let v0 = values[f0.node() as usize] ^ if f0.is_complemented() { u64::MAX } else { 0 };
            let v1 = values[f1.node() as usize] ^ if f1.is_complemented() { u64::MAX } else { 0 };
            values[m as usize] = v0 & v1;
        }
        let vr = values[r as usize];
        let vn = values[n as usize] ^ if inv { u64::MAX } else { 0 };
        if (vr ^ vn) & valid != 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    /// Two structurally different XORs: strash keeps both, sweep merges.
    #[test]
    fn merges_equivalent_structures() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x1 = g.xor(a, b);
        let x2 = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n)
        };
        let f = g.mux(c, x1, !x2); // uses both forms
        g.add_output(f);
        let before = g.num_ands();
        let h = sweep(&g, &SweepConfig::default());
        assert!(h.num_ands() < before, "{} -> {}", before, h.num_ands());
        equivalent_exhaustive(&g, &h);
    }

    /// A node that is constant over its support collapses to the constant.
    #[test]
    fn detects_hidden_constants() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        // (a | b) & (!a | b) & (a | !b) & (!a | !b) == false, structurally
        // irreducible for strash.
        let t0 = g.or(a, b);
        let t1 = g.or(!a, b);
        let t2 = g.or(a, !b);
        let t3 = g.or(!a, !b);
        let u = g.and(t0, t1);
        let v = g.and(t2, t3);
        let f = g.and(u, v);
        let out = g.or(f, a); // == a once f is known false
        g.add_output(out);
        let h = sweep(&g, &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), 0, "got {}", h.num_ands());
    }

    /// Complement-equivalent nodes merge through the inverted signature.
    #[test]
    fn merges_complement_pairs() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            // XNOR built positively: (a & b) | (!a & !b).
            let p = g.and(a, b);
            let q = g.and(!a, !b);
            g.or(p, q)
        };
        let f = g.and(x, !y); // x AND !xnor == x
        g.add_output(f);
        let h = sweep(&g, &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= 3, "got {}", h.num_ands());
    }

    #[test]
    fn stimulus_driven_signatures_agree_with_random() {
        use lsml_pla::{Dataset, Pattern};
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and_many(&ins);
        let f = g.or(x, y);
        g.add_output(f);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ds = Dataset::new(4);
        for _ in 0..100 {
            ds.push(Pattern::random(&mut rng, 4), rng.gen());
        }
        let h = sweep_with_columns(&g, ds.bit_columns(), &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= g.num_ands());
    }

    #[test]
    fn respects_support_limit() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n)
        };
        let f = g.and(x, y);
        g.add_output(f);
        // max_support = 1 forbids verification, so nothing merges — but the
        // pass must still be sound and non-growing.
        let cfg = SweepConfig {
            max_support: 1,
            ..SweepConfig::default()
        };
        let h = sweep(&g, &cfg);
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= g.num_ands());
    }
}
