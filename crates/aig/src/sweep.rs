//! Simulation-guided equivalence sweeping (SAT sweeping without the SAT).
//!
//! Structural hashing only merges *syntactically* identical AND nodes; two
//! different structures computing the same function survive it. This pass
//! finds them the way fraiging does:
//!
//! 1. **Signatures** — every node is simulated word-parallel, all stimulus
//!    words at once: the signature matrix is one flat buffer (node `n` owns
//!    words `n*T .. (n+1)*T`), and each AND node's block is a single
//!    [`lsml_pla::kernels::fanin_and_into`] call over its fanins' blocks —
//!    64-word-style batched bitwise work instead of a per-round push onto
//!    per-node `Vec`s. Stimulus is random by default; [`sweep_with_columns`]
//!    prepends the application's own [`BitColumns`] words as *additional
//!    discriminators*: nodes that random patterns cannot tell apart but the
//!    real data does are split into separate classes early, so fewer
//!    candidate pairs reach the expensive verification step. (Signatures
//!    only ever *filter* candidates — merging itself is always decided by
//!    the exhaustive check below, never by on-distribution agreement.)
//! 2. **Candidate classes** — nodes bucket by a 64-bit hash of their
//!    complement-canonical signature (so `f` and `!f` share a class); a
//!    hash collision merely wastes a verification attempt, never merges.
//! 3. **Verification** — a candidate pair is merged only after *exhaustive*
//!    equivalence checking over the union support of the two cones, and only
//!    when that support is small (`max_support`); everything else is left
//!    untouched. Merging is therefore exact: the pass preserves semantics
//!    bit for bit, unlike [`crate::approx`].
//!
//! The result never has more AND nodes than the (cleaned-up) input.
//!
//! # Wavefront parallelism
//!
//! When the pool has workers (gated by [`crate::par`], which also holds
//! the consolidated `LSML_*` runtime-knob table), large graphs take two
//! parallel paths, both **bit-identical** to the serial pass: simulation
//! fans each level wavefront out in fixed chunks (a node's block depends
//! only on strictly-lower-level blocks), and verification walks candidate
//! buckets concurrently — buckets evolve independently, and the only
//! cross-bucket coupling, the global `max_pairs` attempt budget, is
//! handled by falling back to the serial walk whenever the optimistic
//! parallel walk would exceed it.

use std::cell::RefCell;
use std::sync::Arc;

use lsml_pla::{kernels, BitColumns};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aig::Aig;
use crate::fxhash::{fnv1a_mix, FxHashMap, FNV_OFFSET};
use crate::lit::Lit;

/// Thread-local signature memo: the previous sweep's cleaned-graph fanin
/// snapshot and its full signature buffer. When the next sweep sees the
/// same input region (identical stimulus + seeded random words) and a
/// common node prefix, the prefix's AND signature blocks are copied instead
/// of re-simulated — node `n`'s block depends only on lower-indexed blocks
/// and `n`'s fanins, so the copy is bitwise identical to recomputation.
/// Per-node generation stamps record which call produced each block.
struct SigCache {
    /// `(f0.raw, f1.raw)` per AND node, sentinel for constant/inputs.
    fanins: Vec<(u32, u32)>,
    num_inputs: usize,
    /// Words per node in `sig`.
    t: usize,
    sig: Vec<u64>,
    /// Generation stamp per node (the call that computed its block).
    gen: Vec<u32>,
    generation: u32,
}

thread_local! {
    static SIG_CACHE: RefCell<SigCache> = const {
        RefCell::new(SigCache {
            fanins: Vec::new(),
            num_inputs: 0,
            t: 0,
            sig: Vec::new(),
            gen: Vec::new(),
            generation: 0,
        })
    };
}

#[inline]
fn fanin_snapshot(g: &Aig, n: u32) -> (u32, u32) {
    if g.is_and(n) {
        let (f0, f1) = g.fanins(n);
        (f0.raw(), f1.raw())
    } else {
        (u32::MAX, u32::MAX)
    }
}

/// Configuration for [`sweep`].
#[derive(Clone, Debug, Default)]
pub struct SweepConfig {
    /// Random 64-pattern simulation rounds feeding the signatures (at least
    /// one round always runs). Default 4 (256 random patterns).
    pub rounds: usize,
    /// RNG seed for the random stimulus.
    pub seed: u64,
    /// Candidate pairs whose union cone support exceeds this are skipped
    /// (exhaustive verification is `2^support` patterns). Default 12.
    pub max_support: usize,
    /// Candidate pairs whose union cone exceeds this many AND nodes are
    /// skipped. Default 400.
    pub max_cone: usize,
    /// Upper bound on verification attempts per pass. Default 2048.
    pub max_pairs: usize,
    /// Optional application stimulus: its packed words are prepended to the
    /// random signature words.
    pub stimulus: Option<Arc<BitColumns>>,
}

impl SweepConfig {
    pub(crate) fn rounds(&self) -> usize {
        if self.rounds == 0 {
            4
        } else {
            self.rounds
        }
    }
    fn max_support(&self) -> usize {
        if self.max_support == 0 {
            12
        } else {
            self.max_support.min(16)
        }
    }
    fn max_cone(&self) -> usize {
        if self.max_cone == 0 {
            400
        } else {
            self.max_cone
        }
    }
    fn max_pairs(&self) -> usize {
        if self.max_pairs == 0 {
            2048
        } else {
            self.max_pairs
        }
    }
}

/// Minimum AND nodes before [`sweep`] takes the wavefront-parallel
/// simulation / per-bucket verification fan-out — below this the level
/// pass and per-chunk buffers cost more than the serial loops.
const PAR_SWEEP_MIN_NODES: usize = 256;

/// One sweeping pass with the configured stimulus. Semantics are preserved
/// exactly; the result never has more AND nodes than the cleaned-up input.
pub fn sweep(aig: &Aig, cfg: &SweepConfig) -> Aig {
    sweep_with_mode(aig, cfg, false)
}

/// [`sweep`] with the parallel paths forced on regardless of pool size or
/// node count — test/differential hook pinning the bit-identity of the
/// serial and wavefront paths without relying on the (process-latched)
/// thread-pool size.
pub(crate) fn sweep_with_mode(aig: &Aig, cfg: &SweepConfig, force_parallel: bool) -> Aig {
    let mut g = aig.clone();
    g.cleanup();
    if g.num_ands() == 0 {
        return g;
    }
    let n_nodes = g.num_nodes();
    let ni = g.num_inputs();

    // --- block signatures ------------------------------------------------
    // T words per node: the stimulus columns first, then the random rounds;
    // one flat buffer, filled input blocks first, then one fanin_and_into
    // per AND node in topological (= index) order.
    let stim = cfg
        .stimulus
        .as_ref()
        .filter(|c| c.num_examples() > 0 && c.num_inputs() == ni);
    let stim_words = stim.map_or(0, |c| c.words_per_column());
    let t = stim_words + cfg.rounds();
    let mut masks = vec![u64::MAX; t];
    if let Some(cols) = stim {
        masks[stim_words - 1] = cols.tail_mask();
    }

    let mut sig = vec![0u64; n_nodes * t];
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in 0..ni {
        let base = (i + 1) * t;
        if let Some(cols) = stim {
            // Tail bits are already clear (the BitColumns invariant).
            sig[base..base + stim_words].copy_from_slice(cols.column(i));
        }
        for w in &mut sig[base + stim_words..base + t] {
            *w = rng.gen();
        }
    }
    // Reuse the previous sweep's AND blocks for the longest common node
    // prefix (input region and fanins validated above each reused block).
    let first_new = SIG_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        cache.generation = cache.generation.wrapping_add(1);
        let mut first = ni + 1;
        if cache.t == t
            && cache.num_inputs == ni
            && cache.sig.len() >= (ni + 1) * t
            && cache.sig[..(ni + 1) * t] == sig[..(ni + 1) * t]
        {
            let lim = cache.fanins.len().min(n_nodes);
            while first < lim && cache.fanins[first] == fanin_snapshot(&g, first as u32) {
                first += 1;
            }
            sig[(ni + 1) * t..first * t].copy_from_slice(&cache.sig[(ni + 1) * t..first * t]);
        }
        first
    });
    let parallel = force_parallel
        || (crate::par::effective_workers() > 1 && n_nodes - first_new >= PAR_SWEEP_MIN_NODES);
    if parallel {
        simulate_wavefront(&g, &mut sig, t, first_new, n_nodes);
    } else {
        for n in first_new..n_nodes {
            let (f0, f1) = g.fanins(n as u32);
            let (head, rest) = sig.split_at_mut(n * t);
            let a = &head[f0.node() as usize * t..f0.node() as usize * t + t];
            let b = &head[f1.node() as usize * t..f1.node() as usize * t + t];
            kernels::fanin_and_into(
                a,
                f0.is_complemented(),
                b,
                f1.is_complemented(),
                &mut rest[..t],
            );
        }
    }
    SIG_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let generation = cache.generation;
        cache.fanins.truncate(first_new);
        for n in cache.fanins.len()..n_nodes {
            let snap = fanin_snapshot(&g, n as u32);
            cache.fanins.push(snap);
        }
        cache.fanins.truncate(n_nodes);
        cache.gen.truncate(first_new);
        cache.gen.resize(n_nodes, generation);
        cache.num_inputs = ni;
        cache.t = t;
        cache.sig.clear();
        cache.sig.extend_from_slice(&sig);
    });

    // --- candidate classes + verified merging ---------------------------
    // FNV-1a over the masked complement-canonical words per node.
    // Complemented fanins can raise dead tail bits, so the per-word
    // validity masks are applied here rather than during simulation.
    let hashes: Vec<u64> = (0..n_nodes)
        .map(|n| {
            let block = &sig[n * t..(n + 1) * t];
            let fm = if block[0] & 1 == 1 { u64::MAX } else { 0 };
            let mut h = FNV_OFFSET;
            for (&w, &m) in block.iter().zip(&masks) {
                h = fnv1a_mix(h, (w ^ fm) & m);
            }
            h
        })
        .collect();

    // Representative nodes per canonical-signature hash; AND nodes that
    // verify equivalent to an earlier node are substituted by it. The
    // per-bucket fan-out falls back to the serial walk when the summed
    // attempt counts would have tripped the global budget (see
    // [`verify_buckets_parallel`]), keeping results bit-identical.
    let subst: Vec<Option<Lit>> = (if parallel {
        verify_buckets_parallel(&g, &sig, t, &hashes, cfg, n_nodes)
    } else {
        None
    })
    .unwrap_or_else(|| {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut subst: Vec<Option<Lit>> = vec![None; n_nodes];
        let mut attempts = 0usize;
        let mut scratch = VerifyScratch::sized(n_nodes);
        for n in 0..n_nodes as u32 {
            // Same contract as the rewrite node loop: a fired deadline
            // stops candidate verification mid-walk; the substitutions
            // gathered so far are individually proven and still apply.
            if n & 0x3FF == 0 && crate::cancel::cancelled() {
                break;
            }
            let flip = sig[n as usize * t] & 1 == 1;
            let reps = buckets.entry(hashes[n as usize]).or_default();
            let mut merged = false;
            if g.is_and(n) {
                for &r in reps.iter().take(2) {
                    if attempts >= cfg.max_pairs() {
                        break;
                    }
                    attempts += 1;
                    let r_flip = sig[r as usize * t] & 1 == 1;
                    let inv = flip != r_flip;
                    if verify_pair(&g, r, n, inv, cfg, &mut scratch) {
                        subst[n as usize] = Some(Lit::new(r, false).complement_if(inv));
                        merged = true;
                        break;
                    }
                }
            }
            if !merged && reps.len() < 4 {
                reps.push(n);
            }
        }
        subst
    });

    // --- apply substitutions -------------------------------------------
    let mut fresh = Aig::new(ni);
    let mut map: Vec<Lit> = vec![Lit::FALSE; n_nodes];
    for (i, slot) in map.iter_mut().enumerate().take(ni + 1) {
        *slot = Lit::new(i as u32, false);
    }
    for n in (ni + 1)..n_nodes {
        map[n] = match subst[n] {
            Some(l) => map[l.node() as usize].complement_if(l.is_complemented()),
            None => {
                let (f0, f1) = g.fanins(n as u32);
                let a = map[f0.node() as usize].complement_if(f0.is_complemented());
                let b = map[f1.node() as usize].complement_if(f1.is_complemented());
                fresh.and(a, b)
            }
        };
    }
    for o in g.outputs() {
        let l = map[o.node() as usize].complement_if(o.is_complemented());
        fresh.add_output(l);
    }
    fresh.cleanup();
    if fresh.num_ands() <= g.num_ands() {
        fresh
    } else {
        g
    }
}

/// Convenience wrapper: sweep with the application's bit columns prepended
/// to the signature stimulus.
pub fn sweep_with_columns(aig: &Aig, cols: Arc<BitColumns>, cfg: &SweepConfig) -> Aig {
    let cfg = SweepConfig {
        stimulus: Some(cols),
        ..cfg.clone()
    };
    sweep(aig, &cfg)
}

/// Wavefront-parallel block simulation: AND nodes are bucketed by
/// [`Aig::levels`], each level's nodes fan out over the pool in fixed
/// chunks (an AND's fanins sit at strictly lower levels, so chunks only
/// read completed blocks), and the computed blocks are copied into the
/// flat signature buffer level by level. Each block is the same
/// [`kernels::fanin_and_into`] call over the same operand blocks as the
/// serial loop, so the buffer is bitwise identical for every partition.
fn simulate_wavefront(g: &Aig, sig: &mut [u64], t: usize, first_new: usize, n_nodes: usize) {
    use rayon::prelude::*;

    let levels = g.levels();
    let max_level = (first_new..n_nodes).map(|n| levels[n] as usize).max();
    let Some(max_level) = max_level else { return };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for n in first_new..n_nodes {
        buckets[levels[n] as usize].push(n as u32);
    }

    for bucket in buckets.iter().filter(|b| !b.is_empty()) {
        let chunk = crate::par::chunk_len(bucket.len(), 32);
        let chunks: Vec<&[u32]> = bucket.chunks(chunk).collect();
        let computed: Vec<Vec<(u32, Vec<u64>)>> = chunks
            .par_iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .map(|&n| {
                        let (f0, f1) = g.fanins(n);
                        let a = &sig[f0.node() as usize * t..f0.node() as usize * t + t];
                        let b = &sig[f1.node() as usize * t..f1.node() as usize * t + t];
                        let mut block = vec![0u64; t];
                        kernels::fanin_and_into(
                            a,
                            f0.is_complemented(),
                            b,
                            f1.is_complemented(),
                            &mut block,
                        );
                        (n, block)
                    })
                    .collect()
            })
            .collect();
        for row in computed {
            for (n, block) in row {
                sig[n as usize * t..n as usize * t + t].copy_from_slice(&block);
            }
        }
    }
}

/// Per-bucket fan-out of the candidate verification. Candidate classes
/// evolve independently in the serial walk — the only cross-bucket
/// coupling is the global [`SweepConfig::max_pairs`] attempt budget — so
/// each bucket is walked sequentially on its own worker and the attempt
/// counts are summed afterwards. When the total stays within budget the
/// cutoff could never have fired on any serial interleaving, making the
/// outcome identical to the serial walk; on overshoot this returns `None`
/// and the caller re-runs the serial walk, keeping results bit-identical
/// in every case.
fn verify_buckets_parallel(
    g: &Aig,
    sig: &[u64],
    t: usize,
    hashes: &[u64],
    cfg: &SweepConfig,
    n_nodes: usize,
) -> Option<Vec<Option<Lit>>> {
    use rayon::prelude::*;

    let mut order: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for n in 0..n_nodes as u32 {
        order.entry(hashes[n as usize]).or_default().push(n);
    }
    // Singleton buckets never attempt a verification and never merge.
    let buckets: Vec<Vec<u32>> = order.into_values().filter(|b| b.len() >= 2).collect();

    let chunk = crate::par::chunk_len(buckets.len(), 8);
    let chunks: Vec<&[Vec<u32>]> = buckets.chunks(chunk.max(1)).collect();
    // The cancel token is thread-local and does not cross the pool
    // fan-out; capture it here so the workers can observe the deadline.
    let token = crate::cancel::current();
    let results: Vec<(Vec<(u32, Lit)>, usize)> = chunks
        .par_iter()
        .map(|bucket_group| {
            let mut scratch = VerifyScratch::sized(n_nodes);
            let mut merges: Vec<(u32, Lit)> = Vec::new();
            let mut attempts = 0usize;
            for nodes in *bucket_group {
                if token.as_ref().is_some_and(|t| t.is_cancelled()) {
                    break;
                }
                let mut reps: Vec<u32> = Vec::new();
                for &n in nodes {
                    let flip = sig[n as usize * t] & 1 == 1;
                    let mut merged = false;
                    if g.is_and(n) {
                        for &r in reps.iter().take(2) {
                            attempts += 1;
                            let r_flip = sig[r as usize * t] & 1 == 1;
                            let inv = flip != r_flip;
                            if verify_pair(g, r, n, inv, cfg, &mut scratch) {
                                merges.push((n, Lit::new(r, false).complement_if(inv)));
                                merged = true;
                                break;
                            }
                        }
                    }
                    if !merged && reps.len() < 4 {
                        reps.push(n);
                    }
                }
            }
            (merges, attempts)
        })
        .collect();

    let total: usize = results.iter().map(|(_, a)| a).sum();
    if total > cfg.max_pairs() {
        return None;
    }
    let mut subst: Vec<Option<Lit>> = vec![None; n_nodes];
    for (merges, _) in results {
        for (n, l) in merges {
            subst[n as usize] = Some(l);
        }
    }
    Some(subst)
}

/// Word `k` of the exhaustive enumeration of support variable `j`: patterns
/// are numbered `chunk * 64 + bit`, variable `j`'s value is bit `j` of the
/// pattern number.
fn support_word(j: usize, chunk: u64) -> u64 {
    const TILE: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if j < 6 {
        TILE[j]
    } else if (chunk >> (j - 6)) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

/// Recycled buffers for the pair verifier: the union cone/support lists, a
/// generation-stamped visited marker (no per-pair hash set), and the
/// word-parallel value array.
struct VerifyScratch {
    cone: Vec<u32>,
    support: Vec<u32>,
    /// `seen[m] == stamp` means node `m` was visited for the current pair.
    seen: Vec<u32>,
    stamp: u32,
    stack: Vec<u32>,
    values: Vec<u64>,
}

impl VerifyScratch {
    fn sized(n_nodes: usize) -> VerifyScratch {
        VerifyScratch {
            cone: Vec::new(),
            support: Vec::new(),
            seen: vec![0; n_nodes],
            stamp: 0,
            stack: Vec::new(),
            values: vec![0; n_nodes],
        }
    }
}

/// Exhaustively verifies `value(r) == value(n) ^ inv` over the union support
/// of the two cones. Returns `false` (no merge) when the support or cone is
/// too large for exhaustive checking.
fn verify_pair(
    g: &Aig,
    r: u32,
    n: u32,
    inv: bool,
    cfg: &SweepConfig,
    s: &mut VerifyScratch,
) -> bool {
    // Collect the union cone (AND nodes) and support (primary inputs).
    s.stamp += 1;
    s.cone.clear();
    s.support.clear();
    s.stack.clear();
    s.stack.push(r);
    s.stack.push(n);
    let VerifyScratch {
        cone,
        support,
        seen,
        stamp,
        stack,
        values,
    } = s;
    while let Some(m) = stack.pop() {
        if seen[m as usize] == *stamp {
            continue;
        }
        seen[m as usize] = *stamp;
        if g.is_and(m) {
            cone.push(m);
            if cone.len() > cfg.max_cone() {
                return false;
            }
            let (f0, f1) = g.fanins(m);
            stack.push(f0.node());
            stack.push(f1.node());
        } else if g.is_input(m) {
            support.push(m);
            if support.len() > cfg.max_support() {
                return false;
            }
        }
    }
    cone.sort_unstable(); // node ids are topological
    support.sort_unstable();

    let s = support.len();
    let chunks = if s > 6 { 1u64 << (s - 6) } else { 1 };
    let valid = if s >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << s)) - 1
    };
    for chunk in 0..chunks {
        for (j, &input) in support.iter().enumerate() {
            values[input as usize] = support_word(j, chunk);
        }
        for &m in cone.iter() {
            let (f0, f1) = g.fanins(m);
            let v0 = values[f0.node() as usize] ^ if f0.is_complemented() { u64::MAX } else { 0 };
            let v1 = values[f1.node() as usize] ^ if f1.is_complemented() { u64::MAX } else { 0 };
            values[m as usize] = v0 & v1;
        }
        let vr = values[r as usize];
        let vn = values[n as usize] ^ if inv { u64::MAX } else { 0 };
        if (vr ^ vn) & valid != 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    /// A few thousand pseudo-random nodes over 10 inputs: big enough that
    /// the in-loop cancellation checks (every 1024 nodes) actually fire.
    fn chunky_graph() -> Aig {
        let mut g = Aig::new(10);
        let mut lits = g.inputs();
        let mut state = 0x9E37_79B9u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = lits[(state >> 16) as usize % lits.len()];
            let b = lits[(state >> 40) as usize % lits.len()];
            let l = match state % 3 {
                0 => g.and(a, !b),
                1 => g.xor(a, b),
                _ => g.or(!a, b),
            };
            lits.push(l);
        }
        let out = *lits.last().unwrap();
        g.add_output(out);
        g
    }

    /// A deadline that fires mid-walk stops verification early but the
    /// result is still a valid (partially swept) graph — the sweep never
    /// returns garbage or hangs under a tiny deadline.
    #[test]
    fn tiny_deadline_yields_valid_partial_sweep() {
        let g = chunky_graph();
        let token = crate::cancel::CancelToken::new();
        token.cancel(); // already fired: the earliest possible deadline
        let h = crate::cancel::with_token(&token, || sweep(&g, &SweepConfig::default()));
        equivalent_exhaustive(&g, &h);
        // Same under a real (just-about-to-fire) deadline.
        let token = crate::cancel::CancelToken::with_budget(std::time::Duration::from_nanos(1));
        let h = crate::cancel::with_token(&token, || sweep(&g, &SweepConfig::default()));
        equivalent_exhaustive(&g, &h);
    }

    /// Two structurally different XORs: strash keeps both, sweep merges.
    #[test]
    fn merges_equivalent_structures() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x1 = g.xor(a, b);
        let x2 = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n)
        };
        let f = g.mux(c, x1, !x2); // uses both forms
        g.add_output(f);
        let before = g.num_ands();
        let h = sweep(&g, &SweepConfig::default());
        assert!(h.num_ands() < before, "{} -> {}", before, h.num_ands());
        equivalent_exhaustive(&g, &h);
    }

    /// A node that is constant over its support collapses to the constant.
    #[test]
    fn detects_hidden_constants() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        // (a | b) & (!a | b) & (a | !b) & (!a | !b) == false, structurally
        // irreducible for strash.
        let t0 = g.or(a, b);
        let t1 = g.or(!a, b);
        let t2 = g.or(a, !b);
        let t3 = g.or(!a, !b);
        let u = g.and(t0, t1);
        let v = g.and(t2, t3);
        let f = g.and(u, v);
        let out = g.or(f, a); // == a once f is known false
        g.add_output(out);
        let h = sweep(&g, &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), 0, "got {}", h.num_ands());
    }

    /// Complement-equivalent nodes merge through the inverted signature.
    #[test]
    fn merges_complement_pairs() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            // XNOR built positively: (a & b) | (!a & !b).
            let p = g.and(a, b);
            let q = g.and(!a, !b);
            g.or(p, q)
        };
        let f = g.and(x, !y); // x AND !xnor == x
        g.add_output(f);
        let h = sweep(&g, &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= 3, "got {}", h.num_ands());
    }

    #[test]
    fn stimulus_driven_signatures_agree_with_random() {
        use lsml_pla::{Dataset, Pattern};
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and_many(&ins);
        let f = g.or(x, y);
        g.add_output(f);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ds = Dataset::new(4);
        for _ in 0..100 {
            ds.push(Pattern::random(&mut rng, 4), rng.gen());
        }
        let h = sweep_with_columns(&g, ds.bit_columns(), &SweepConfig::default());
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= g.num_ands());
    }

    /// A warm signature cache (previous sweep of a related graph) must not
    /// change results: compare against a cold sweep in a fresh thread.
    #[test]
    fn warm_signature_cache_matches_cold_sweep() {
        let build = |extra: bool| {
            let mut g = Aig::new(4);
            let ins = g.inputs();
            let x = g.xor(ins[0], ins[1]);
            let y = g.mux(ins[2], x, ins[3]);
            let mut f = g.or(y, !x);
            if extra {
                let z = g.and(f, ins[3]);
                f = g.xor(z, ins[0]);
            }
            g.add_output(f);
            g
        };
        let cfg = SweepConfig::default();
        // Warm the thread-local cache on the base graph, then sweep the
        // delta graph on the same thread.
        let _ = sweep(&build(false), &cfg);
        let warm = sweep(&build(true), &cfg);
        let cold = std::thread::spawn({
            let cfg = cfg.clone();
            move || sweep(&build(true), &cfg)
        })
        .join()
        .unwrap();
        assert_eq!(warm.structural_fingerprint(), cold.structural_fingerprint());
        equivalent_exhaustive(&build(true), &warm);
    }

    /// The forced-parallel paths (wavefront simulation + per-bucket
    /// verification) must reproduce the serial sweep bit for bit.
    #[test]
    fn parallel_sweep_matches_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..6 {
            // A random multi-level graph with redundant structures.
            let mut g = Aig::new(6);
            let mut pool = g.inputs();
            for _ in 0..120 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let l = match rng.gen_range(0..4) {
                    0 => g.and(a, b),
                    1 => g.or(a, !b),
                    2 => g.xor(a, b),
                    _ => {
                        let p = g.and(a, b);
                        let q = g.and(!a, !b);
                        g.or(p, q)
                    }
                };
                pool.push(l);
            }
            for &l in &pool[pool.len().saturating_sub(4)..] {
                g.add_output(l);
            }
            let cfg = SweepConfig::default();
            // Fresh threads so the thread-local signature cache of one run
            // cannot leak into the other.
            let serial = {
                let g = g.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || sweep_with_mode(&g, &cfg, false))
                    .join()
                    .unwrap()
            };
            let par = {
                let g = g.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || sweep_with_mode(&g, &cfg, true))
                    .join()
                    .unwrap()
            };
            assert_eq!(
                serial.structural_fingerprint(),
                par.structural_fingerprint(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn respects_support_limit() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n)
        };
        let f = g.and(x, y);
        g.add_output(f);
        // max_support = 1 forbids verification, so nothing merges — but the
        // pass must still be sound and non-growing.
        let cfg = SweepConfig {
            max_support: 1,
            ..SweepConfig::default()
        };
        let h = sweep(&g, &cfg);
        equivalent_exhaustive(&g, &h);
        assert!(h.num_ands() <= g.num_ands());
    }
}
