//! DAG-aware AIG rewriting (ABC's `rewrite`, cut + NPN flavored).
//!
//! For every AND node, enumerate its k-feasible cuts ([`crate::cut`]),
//! canonize each cut function ([`crate::npn`]), and price the library
//! structure for its class against the logic the graph already contains:
//!
//! * **saved** — the nodes of the cut cone that die with the root (its
//!   maximum fanout-free cone restricted to the cut, found by recursive
//!   dereferencing of fanout counts, exactly ABC's accounting);
//! * **added** — the structure nodes that do *not* already exist, priced by
//!   a dry run against the structural hash ([`Aig::lookup_and`]), so shared
//!   logic is free.
//!
//! A replacement with `saved - added > 0` (or `>= 0` with the zero-gain
//! toggle, useful to reshape the graph between iterations) is recorded; the
//! graph is then rebuilt lazily from the outputs with the recorded
//! replacements applied, which drops every dereferenced cone that really
//! did become unreachable. The pass is purely structural — semantics are
//! preserved exactly — and never returns a graph with more AND nodes than
//! its input.

use crate::aig::Aig;
use crate::cut::enumerate_cuts;
use crate::lit::Lit;
use crate::npn::{LibEntry, NpnLibrary};

/// Configuration for [`rewrite`].
#[derive(Clone, Debug)]
pub struct RewriteConfig {
    /// Accept replacements that neither shrink nor grow the graph. Zero-gain
    /// rewriting reshapes structure so a following pass (balance, sweep, or
    /// another rewrite round) can find new gains — ABC's `rwz`.
    pub zero_gain: bool,
    /// Cuts kept per node during enumeration.
    pub max_cuts: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            zero_gain: false,
            max_cuts: 8,
        }
    }
}

/// A recorded replacement: express the root over `leaves` with the library
/// structure of `entry`.
#[derive(Clone)]
struct Decision {
    leaves: [u32; 4],
    len: u8,
    entry: LibEntry,
}

/// One rewriting pass. Semantics are preserved exactly; the result never
/// has more AND nodes than the (cleaned-up) input.
pub fn rewrite(aig: &Aig, cfg: &RewriteConfig) -> Aig {
    let mut g = aig.clone();
    g.cleanup();
    if g.num_ands() == 0 {
        return g;
    }
    let n_nodes = g.num_nodes();
    let first_and = g.num_inputs() + 1;
    let cuts = enumerate_cuts(&g, cfg.max_cuts);

    // Fanout reference counts (edges from AND nodes plus output references).
    let mut refs = vec![0u32; n_nodes];
    for n in first_and..n_nodes {
        let (f0, f1) = g.fanins(n as u32);
        refs[f0.node() as usize] += 1;
        refs[f1.node() as usize] += 1;
    }
    for o in g.outputs() {
        refs[o.node() as usize] += 1;
    }

    let lib = NpnLibrary::global();
    // Pass-local library cache: one lock round-trip per *distinct* cut
    // function instead of one per cut.
    let mut lib_cache: std::collections::HashMap<u16, LibEntry> = std::collections::HashMap::new();
    let mut claimed = vec![false; n_nodes]; // nodes freed by an accepted rewrite
    let mut freed_mark = vec![false; n_nodes]; // scratch: current candidate's cone
    let mut decisions: Vec<Option<Decision>> = vec![None; n_nodes];

    for n in first_and..n_nodes {
        let root = n as u32;
        if claimed[n] {
            continue;
        }
        let mut best: Option<(i64, Decision)> = None;
        for cut in &cuts[n] {
            if cut.len() == 1 && cut.leaves()[0] == root {
                continue; // the trivial cut rewrites nothing
            }
            if cut.leaves().iter().any(|&l| claimed[l as usize]) {
                continue; // leaf may vanish with an earlier rewrite
            }
            let entry = lib_cache
                .entry(cut.tt)
                .or_insert_with(|| lib.entry(cut.tt))
                .clone();
            let mut leaf_lits = [Lit::FALSE; 4];
            for (i, &l) in cut.leaves().iter().enumerate() {
                leaf_lits[i] = Lit::new(l, false);
            }
            let imap = entry.input_map(&leaf_lits);

            // Saved: dereference the cone between the cut and the root.
            let (freed, touched) = deref_cone(&g, root, cut.leaves(), &mut refs);
            for &f in &freed {
                freed_mark[f as usize] = true;
            }
            // Added: dry-run the structure against the structural hash.
            // Nodes claimed by earlier accepted rewrites are dead too —
            // pricing them as free reuse would overstate the gain.
            let (added, out) = dry_run(&g, &entry.structure, &imap, &freed_mark, &claimed);
            for &f in &freed {
                freed_mark[f as usize] = false;
            }
            ref_cone(&touched, &mut refs);

            // Re-expressing the root as itself is not a rewrite.
            if out.map(|l| l.node()) == Some(root) {
                continue;
            }
            let gain = freed.len() as i64 - added as i64;
            let acceptable = gain > 0 || (cfg.zero_gain && gain == 0);
            if acceptable && best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                let mut leaves = [0u32; 4];
                leaves[..cut.len()].copy_from_slice(cut.leaves());
                best = Some((
                    gain,
                    Decision {
                        leaves,
                        len: cut.len() as u8,
                        entry,
                    },
                ));
            }
        }
        if let Some((_, dec)) = best {
            // Re-dereference the winning cone permanently and claim it so
            // overlapping rewrites are not double counted this pass.
            let (freed, _) = deref_cone(&g, root, &dec.leaves[..dec.len as usize], &mut refs);
            for f in freed {
                claimed[f as usize] = true;
            }
            decisions[n] = Some(dec);
        }
    }

    let rebuilt = rebuild(&g, &decisions);
    if rebuilt.num_ands() <= g.num_ands() {
        rebuilt
    } else {
        g
    }
}

/// Dereferences the cone of `root` down to the cut leaves: decrements the
/// fanout count of every non-leaf AND fanin of a dying node, collecting the
/// nodes whose count reaches zero (plus the root itself) into `freed`.
/// Fanins already at zero (killed by an earlier accepted rewrite) are left
/// alone and not counted again. Returns `(freed, touched)` where `touched`
/// lists every decrement performed, for [`ref_cone`] to undo.
fn deref_cone(g: &Aig, root: u32, leaves: &[u32], refs: &mut [u32]) -> (Vec<u32>, Vec<u32>) {
    let mut freed = vec![root];
    let mut touched = Vec::new();
    let mut qi = 0;
    while qi < freed.len() {
        let n = freed[qi];
        qi += 1;
        let (f0, f1) = g.fanins(n);
        for f in [f0, f1] {
            let m = f.node();
            if !g.is_and(m) || leaves.contains(&m) || refs[m as usize] == 0 {
                continue;
            }
            refs[m as usize] -= 1;
            touched.push(m);
            if refs[m as usize] == 0 {
                freed.push(m);
            }
        }
    }
    (freed, touched)
}

/// Exact inverse of [`deref_cone`] over the recorded decrement list.
fn ref_cone(touched: &[u32], refs: &mut [u32]) {
    for &m in touched {
        refs[m as usize] += 1;
    }
}

/// Prices instantiating `structure` (4-input, 1-output) over `imap` against
/// graph `g` without mutating it. Returns the number of nodes a real
/// instantiation would create, and — when every step resolves to existing
/// logic — the literal the output lands on. Existing nodes inside the
/// candidate's own dying cone (`freed_mark`) or inside a cone claimed by an
/// earlier accepted rewrite (`claimed`) are priced as new: reusing them
/// would just keep dead logic alive.
fn dry_run(
    g: &Aig,
    structure: &Aig,
    imap: &[Lit; 4],
    freed_mark: &[bool],
    claimed: &[bool],
) -> (usize, Option<Lit>) {
    let mut vals: Vec<Option<Lit>> = vec![None; structure.num_nodes()];
    vals[0] = Some(Lit::FALSE);
    for (i, &l) in imap.iter().enumerate() {
        vals[i + 1] = Some(l);
    }
    let mut added = 0usize;
    for s in (structure.num_inputs() + 1)..structure.num_nodes() {
        let (f0, f1) = structure.fanins(s as u32);
        let a = vals[f0.node() as usize].map(|l| l.complement_if(f0.is_complemented()));
        let b = vals[f1.node() as usize].map(|l| l.complement_if(f1.is_complemented()));
        vals[s] = match (a, b) {
            (Some(x), Some(y)) => match g.lookup_and(x, y) {
                Some(l)
                    if l.is_constant()
                        || (!freed_mark[l.node() as usize] && !claimed[l.node() as usize]) =>
                {
                    Some(l)
                }
                Some(l) => {
                    added += 1;
                    Some(l)
                }
                None => {
                    added += 1;
                    None
                }
            },
            // One side unresolved: constants still fold for free.
            (Some(c), other) | (other, Some(c)) if c == Lit::FALSE => {
                let _ = other;
                Some(Lit::FALSE)
            }
            (Some(c), other) | (other, Some(c)) if c == Lit::TRUE => other,
            _ => {
                added += 1;
                None
            }
        };
    }
    let o = structure.outputs()[0];
    let out = vals[o.node() as usize].map(|l| l.complement_if(o.is_complemented()));
    (added, out)
}

/// Lazily rebuilds `g` from its outputs with the recorded replacements
/// applied; cones nothing references anymore are never materialized.
fn rebuild(g: &Aig, decisions: &[Option<Decision>]) -> Aig {
    let mut fresh = Aig::new(g.num_inputs());
    let mut map: Vec<Option<Lit>> = vec![None; g.num_nodes()];
    for (i, slot) in map.iter_mut().enumerate().take(g.num_inputs() + 1) {
        *slot = Some(Lit::new(i as u32, false));
    }
    let mut stack: Vec<u32> = g.outputs().iter().map(|o| o.node()).collect();
    while let Some(&n) = stack.last() {
        if map[n as usize].is_some() {
            stack.pop();
            continue;
        }
        let deps: Vec<u32> = match &decisions[n as usize] {
            Some(dec) => dec.leaves[..dec.len as usize].to_vec(),
            None => {
                let (f0, f1) = g.fanins(n);
                vec![f0.node(), f1.node()]
            }
        };
        let mut ready = true;
        for &d in &deps {
            if map[d as usize].is_none() {
                stack.push(d);
                ready = false;
            }
        }
        if !ready {
            continue;
        }
        stack.pop();
        let lit = match &decisions[n as usize] {
            Some(dec) => {
                let mut leaf_lits = [Lit::FALSE; 4];
                for (i, &l) in dec.leaves[..dec.len as usize].iter().enumerate() {
                    leaf_lits[i] = map[l as usize].expect("leaf built");
                }
                let imap = dec.entry.input_map(&leaf_lits);
                let outs = fresh.append(&dec.entry.structure, &imap);
                outs[0].complement_if(dec.entry.output_complement())
            }
            None => {
                let (f0, f1) = g.fanins(n);
                let a = map[f0.node() as usize]
                    .expect("fanin built")
                    .complement_if(f0.is_complemented());
                let b = map[f1.node() as usize]
                    .expect("fanin built")
                    .complement_if(f1.is_complemented());
                fresh.and(a, b)
            }
        };
        map[n as usize] = Some(lit);
    }
    for o in g.outputs() {
        let l = map[o.node() as usize]
            .expect("output cone built")
            .complement_if(o.is_complemented());
        fresh.add_output(l);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    #[test]
    fn removes_redundant_mux_of_equal_branches() {
        // f = mux(s, g, g') where g and g' are structurally different but
        // equal functions: strash cannot see it, a 4-cut can.
        let mut g = Aig::new(3);
        let (s, a, b) = (g.input(0), g.input(1), g.input(2));
        let t = g.and(a, b);
        let e = {
            // a AND b via double negation of OR-of-complements.
            let o = g.or(!a, !b);
            !o
        };
        let f = g.mux(s, t, e);
        g.add_output(f);
        let before = g.num_ands();
        let h = rewrite(&g, &RewriteConfig::default());
        assert!(h.num_ands() < before, "{} -> {}", before, h.num_ands());
        equivalent_exhaustive(&g, &h);
        // The whole thing is just a AND b.
        assert_eq!(h.num_ands(), 1);
    }

    #[test]
    fn rewrites_sop_to_shared_form() {
        // f = (a & b) | (a & c) | (a & d): 5 ANDs naively, 2 after a*(b|c|d)
        // ... which needs two rewriting steps over 4-cuts.
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let ab = g.and(a, b);
        let ac = g.and(a, c);
        let ad = g.and(a, d);
        let o1 = g.or(ab, ac);
        let f = g.or(o1, ad);
        g.add_output(f);
        let before = g.num_ands();
        let h = rewrite(&g, &RewriteConfig::default());
        assert!(h.num_ands() <= before);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn never_grows_and_preserves_multi_output() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..4]);
        let y = g.and_many(&ins[2..]);
        let z = g.mux(ins[0], x, y);
        g.add_output(x);
        g.add_output(!z);
        g.add_output(Lit::TRUE);
        let before = {
            let mut c = g.clone();
            c.cleanup();
            c.num_ands()
        };
        for zero_gain in [false, true] {
            let h = rewrite(
                &g,
                &RewriteConfig {
                    zero_gain,
                    ..RewriteConfig::default()
                },
            );
            assert!(h.num_ands() <= before);
            equivalent_exhaustive(&g, &h);
        }
    }

    #[test]
    fn constant_cone_collapses() {
        // (a XOR b) XOR (a XOR b) = 0 built without strash sharing the two
        // forms: x ^ x folds at the top already, so build x XNOR x' where
        // x' is a structurally different equal function.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n) // also a XOR b
        };
        let f = g.xnor(x, y); // constant true
        g.add_output(f);
        let h = rewrite(&g, &RewriteConfig::default());
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), 0, "constant cone should vanish");
    }

    #[test]
    fn empty_and_tiny_graphs_pass_through() {
        let g = Aig::constant(3, true);
        let h = rewrite(&g, &RewriteConfig::default());
        assert_eq!(h.num_ands(), 0);
        equivalent_exhaustive(&g, &h);

        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let f = g.and(a, b);
        g.add_output(f);
        let h = rewrite(&g, &RewriteConfig::default());
        assert_eq!(h.num_ands(), 1);
        equivalent_exhaustive(&g, &h);
    }
}
