//! DAG-aware AIG rewriting (ABC's `rewrite`, cut + NPN flavored).
//!
//! For every AND node, enumerate its k-feasible cuts ([`crate::cut`]),
//! canonize each cut function ([`crate::npn`]), and price the library
//! structure for its class against the logic the graph already contains:
//!
//! * **saved** — the nodes of the cut cone that die with the root (its
//!   maximum fanout-free cone restricted to the cut, found by recursive
//!   dereferencing of fanout counts, exactly ABC's accounting);
//! * **added** — the structure nodes that do *not* already exist, priced by
//!   a dry run against the structural hash ([`Aig::lookup_and`]), so shared
//!   logic is free.
//!
//! A replacement with `saved - added > 0` (or `>= 0` with the zero-gain
//! toggle, useful to reshape the graph between iterations) is recorded; the
//! graph is then rebuilt lazily from the outputs with the recorded
//! replacements applied, which drops every dereferenced cone that really
//! did become unreachable. The pass is purely structural — semantics are
//! preserved exactly — and never returns a graph with more AND nodes than
//! its input.
//!
//! # Allocation discipline
//!
//! The pass is allocation-free per node and per cut: cut sets live in a
//! [`CutArena`] (two flat buffers), and every per-candidate buffer — the
//! MFFC dereference stack, the decrement undo log, the dry-run value map,
//! the pass-local library cache — lives in a [`Scratch`] bundle recycled
//! through a thread-local free list (the same `_into` discipline the PR 4
//! kernels introduced). Repeated passes on a pool worker therefore reuse
//! one steady-state set of buffers.
//!
//! The pre-arena implementation — per-node `Vec<Cut>` sets, fresh buffers
//! per candidate — is retained as [`rewrite_reference`], the
//! differential-test oracle (`tests/cut_npn_props.rs` checks the two are
//! node-identical on random graphs at k = 4 and k = 6).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::aig::Aig;
use crate::cut::{enumerate_cuts_k, Cut, CutArena, CutConfig, MAX_LEAVES};
use crate::fxhash::FxHashMap;
use crate::lit::Lit;
use crate::npn::{LibEntry6, NpnLibrary};

/// Configuration for [`rewrite`].
#[derive(Clone, Debug)]
pub struct RewriteConfig {
    /// Accept replacements that neither shrink nor grow the graph. Zero-gain
    /// rewriting reshapes structure so a following pass (balance, sweep, or
    /// another rewrite round) can find new gains — ABC's `rwz`.
    pub zero_gain: bool,
    /// Cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Maximum cut leaves (`2..=6`). `4` is the classic `rewrite -K 4`
    /// sweet spot and the default; `6` finds strictly more reductions at
    /// higher per-pass cost.
    pub cut_size: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            zero_gain: false,
            max_cuts: 8,
            cut_size: 4,
        }
    }
}

impl RewriteConfig {
    /// The k = 6 configuration (64-bit cut functions, wider cones).
    pub fn k6() -> RewriteConfig {
        RewriteConfig {
            cut_size: 6,
            ..RewriteConfig::default()
        }
    }
}

/// A recorded replacement: express the root over `leaves` with the library
/// structure of `entry`.
#[derive(Clone)]
struct Decision {
    leaves: [u32; MAX_LEAVES],
    len: u8,
    entry: LibEntry6,
}

/// The recycled per-pass buffer bundle (see the module docs).
#[derive(Default)]
struct Scratch {
    arena: CutArena,
    refs: Vec<u32>,
    claimed: Vec<bool>,
    freed_mark: Vec<bool>,
    freed: Vec<u32>,
    touched: Vec<u32>,
    vals: Vec<Option<Lit>>,
    decisions: Vec<Option<Decision>>,
    /// Pass-local library cache keyed by raw truth table: one lock
    /// round-trip per *distinct* cut function per thread, retained across
    /// passes (the table → entry mapping is process-stable).
    lib_cache: FxHashMap<u64, LibEntry6>,
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch() -> Scratch {
    SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn recycle_scratch(mut s: Scratch) {
    // Drop per-pass contents but keep capacity; bound the memo so a long
    // portfolio run cannot grow it without limit.
    s.decisions.clear();
    if s.lib_cache.len() > (1 << 16) {
        s.lib_cache.clear();
    }
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 2 {
            pool.push(s);
        }
    });
}

/// Fills `refs` with the fanout reference counts of `aig` (AND fanin edges
/// plus output references) and reports whether any AND node is dangling
/// (unreferenced). A dangling-free graph needs no cleanup before a pass —
/// and rebuilding it through `cleanup` would reproduce the identical node
/// numbering anyway, so skipping the copy is behavior-preserving.
fn fill_refs(aig: &Aig, refs: &mut Vec<u32>) -> bool {
    let n_nodes = aig.num_nodes();
    refs.clear();
    refs.resize(n_nodes, 0);
    for n in (aig.num_inputs() + 1)..n_nodes {
        let (f0, f1) = aig.fanins(n as u32);
        refs[f0.node() as usize] += 1;
        refs[f1.node() as usize] += 1;
    }
    for o in aig.outputs() {
        refs[o.node() as usize] += 1;
    }
    ((aig.num_inputs() + 1)..n_nodes).any(|n| refs[n] == 0)
}

/// One rewriting pass. Semantics are preserved exactly; the result never
/// has more AND nodes than the (cleaned-up) input.
pub fn rewrite(aig: &Aig, cfg: &RewriteConfig) -> Aig {
    if aig.num_ands() == 0 {
        let mut g = aig.clone();
        g.cleanup();
        return g;
    }
    let mut s = take_scratch();
    let Scratch {
        arena,
        refs,
        claimed,
        freed_mark,
        freed,
        touched,
        vals,
        decisions,
        lib_cache,
    } = &mut s;

    // Clone + clean only when the input actually has dangling logic.
    let owned;
    let g: &Aig = if fill_refs(aig, refs) {
        owned = {
            let mut c = aig.clone();
            c.cleanup();
            c
        };
        fill_refs(&owned, refs);
        &owned
    } else {
        aig
    };
    let n_nodes = g.num_nodes();
    let first_and = g.num_inputs() + 1;
    arena.enumerate(
        g,
        &CutConfig {
            k: cfg.cut_size,
            max_cuts: cfg.max_cuts,
        },
    );
    if cfg!(debug_assertions) || crate::opt::check_enabled() {
        if let Err(e) = arena.check_csr() {
            panic!("cut arena CSR invariants violated after enumeration: {e}");
        }
    }

    claimed.clear();
    claimed.resize(n_nodes, false);
    freed_mark.clear();
    freed_mark.resize(n_nodes, false);
    decisions.clear();
    decisions.resize_with(n_nodes, || None);

    let lib = NpnLibrary::global();
    for n in first_and..n_nodes {
        // Deadlines must bind inside the node loop, not only at pass
        // boundaries: one pass over a 200-input external cone can dwarf the
        // whole budget. Decisions made so far still rebuild to a valid
        // graph, so a cancelled pass degrades to a partial rewrite.
        if n & 0x3FF == 0 && crate::cancel::cancelled() {
            break;
        }
        let root = n as u32;
        if claimed[n] {
            continue;
        }
        let mut best: Option<(i64, Decision)> = None;
        for cut in arena.cuts(root) {
            let len = cut.len();
            if len == 1 && cut.leaves[0] == root {
                continue; // the trivial cut rewrites nothing
            }
            if cut.leaves.iter().any(|&l| claimed[l as usize]) {
                continue; // leaf may vanish with an earlier rewrite
            }
            // Borrow the cached entry; it is cloned (two `Arc` bumps) only
            // when a candidate is actually accepted.
            let entry = &*lib_cache
                .entry(cut.tt)
                .or_insert_with(|| lib.entry6(cut.tt));
            let mut leaves = [0u32; MAX_LEAVES];
            leaves[..len].copy_from_slice(cut.leaves);
            let mut leaf_lits = [Lit::FALSE; MAX_LEAVES];
            for (i, &l) in leaves[..len].iter().enumerate() {
                leaf_lits[i] = Lit::new(l, false);
            }
            let imap = entry.input_map(&leaf_lits);

            // Saved: dereference the cone between the cut and the root.
            deref_cone_into(g, root, &leaves[..len], refs, freed, touched);
            for &f in freed.iter() {
                freed_mark[f as usize] = true;
            }
            // Added: dry-run the structure against the structural hash.
            // Nodes claimed by earlier accepted rewrites are dead too —
            // pricing them as free reuse would overstate the gain.
            let (added, out) = dry_run_into(g, &entry.structure, &imap, freed_mark, claimed, vals);
            for &f in freed.iter() {
                freed_mark[f as usize] = false;
            }
            ref_cone(touched, refs);

            // Re-expressing the root as itself is not a rewrite.
            if out.map(|l| l.node()) == Some(root) {
                continue;
            }
            let gain = freed.len() as i64 - added as i64;
            let acceptable = gain > 0 || (cfg.zero_gain && gain == 0);
            if acceptable && best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                best = Some((
                    gain,
                    Decision {
                        leaves,
                        len: len as u8,
                        entry: entry.clone(),
                    },
                ));
            }
        }
        if let Some((_, dec)) = best {
            // Re-dereference the winning cone permanently and claim it so
            // overlapping rewrites are not double counted this pass.
            deref_cone_into(
                g,
                root,
                &dec.leaves[..dec.len as usize],
                refs,
                freed,
                touched,
            );
            for &f in freed.iter() {
                claimed[f as usize] = true;
            }
            decisions[n] = Some(dec);
        }
    }

    let rebuilt = rebuild(g, decisions);
    let result = if rebuilt.num_ands() <= g.num_ands() {
        rebuilt
    } else {
        g.clone()
    };
    recycle_scratch(s);
    result
}

/// The pre-arena rewriting pass: identical decision logic over per-node
/// `Vec<Cut>` sets with freshly allocated candidate buffers. Kept as the
/// differential-test oracle for [`rewrite`]; prefer the arena path.
#[doc(hidden)]
pub fn rewrite_reference(aig: &Aig, cfg: &RewriteConfig) -> Aig {
    let mut g = aig.clone();
    g.cleanup();
    if g.num_ands() == 0 {
        return g;
    }
    let n_nodes = g.num_nodes();
    let first_and = g.num_inputs() + 1;
    let cuts: Vec<Vec<Cut>> = enumerate_cuts_k(&g, cfg.cut_size, cfg.max_cuts);

    let mut refs = vec![0u32; n_nodes];
    for n in first_and..n_nodes {
        let (f0, f1) = g.fanins(n as u32);
        refs[f0.node() as usize] += 1;
        refs[f1.node() as usize] += 1;
    }
    for o in g.outputs() {
        refs[o.node() as usize] += 1;
    }

    let lib = NpnLibrary::global();
    let mut lib_cache: HashMap<u64, LibEntry6> = HashMap::new();
    let mut claimed = vec![false; n_nodes];
    let mut freed_mark = vec![false; n_nodes];
    let mut decisions: Vec<Option<Decision>> = vec![None; n_nodes];

    for n in first_and..n_nodes {
        let root = n as u32;
        if claimed[n] {
            continue;
        }
        let mut best: Option<(i64, Decision)> = None;
        for cut in &cuts[n] {
            if cut.len() == 1 && cut.leaves()[0] == root {
                continue;
            }
            if cut.leaves().iter().any(|&l| claimed[l as usize]) {
                continue;
            }
            let entry = lib_cache
                .entry(cut.tt)
                .or_insert_with(|| lib.entry6(cut.tt))
                .clone();
            let mut leaf_lits = [Lit::FALSE; MAX_LEAVES];
            for (i, &l) in cut.leaves().iter().enumerate() {
                leaf_lits[i] = Lit::new(l, false);
            }
            let imap = entry.input_map(&leaf_lits);

            let (mut freed, mut touched) = (Vec::new(), Vec::new());
            deref_cone_into(&g, root, cut.leaves(), &mut refs, &mut freed, &mut touched);
            for &f in &freed {
                freed_mark[f as usize] = true;
            }
            let mut vals = Vec::new();
            let (added, out) = dry_run_into(
                &g,
                &entry.structure,
                &imap,
                &freed_mark,
                &claimed,
                &mut vals,
            );
            for &f in &freed {
                freed_mark[f as usize] = false;
            }
            ref_cone(&touched, &mut refs);

            if out.map(|l| l.node()) == Some(root) {
                continue;
            }
            let gain = freed.len() as i64 - added as i64;
            let acceptable = gain > 0 || (cfg.zero_gain && gain == 0);
            if acceptable && best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                let mut leaves = [0u32; MAX_LEAVES];
                leaves[..cut.len()].copy_from_slice(cut.leaves());
                best = Some((
                    gain,
                    Decision {
                        leaves,
                        len: cut.len() as u8,
                        entry,
                    },
                ));
            }
        }
        if let Some((_, dec)) = best {
            let (mut freed, mut touched) = (Vec::new(), Vec::new());
            deref_cone_into(
                &g,
                root,
                &dec.leaves[..dec.len as usize],
                &mut refs,
                &mut freed,
                &mut touched,
            );
            for f in freed {
                claimed[f as usize] = true;
            }
            decisions[n] = Some(dec);
        }
    }

    let rebuilt = rebuild(&g, &decisions);
    if rebuilt.num_ands() <= g.num_ands() {
        rebuilt
    } else {
        g
    }
}

/// Dereferences the cone of `root` down to the cut leaves: decrements the
/// fanout count of every non-leaf AND fanin of a dying node, collecting the
/// nodes whose count reaches zero (plus the root itself) into `freed`.
/// Fanins already at zero (killed by an earlier accepted rewrite) are left
/// alone and not counted again. `freed` and `touched` are cleared and
/// refilled (`touched` lists every decrement performed, for [`ref_cone`] to
/// undo).
fn deref_cone_into(
    g: &Aig,
    root: u32,
    leaves: &[u32],
    refs: &mut [u32],
    freed: &mut Vec<u32>,
    touched: &mut Vec<u32>,
) {
    freed.clear();
    touched.clear();
    freed.push(root);
    let mut qi = 0;
    while qi < freed.len() {
        let n = freed[qi];
        qi += 1;
        let (f0, f1) = g.fanins(n);
        for f in [f0, f1] {
            let m = f.node();
            if !g.is_and(m) || leaves.contains(&m) || refs[m as usize] == 0 {
                continue;
            }
            refs[m as usize] -= 1;
            touched.push(m);
            if refs[m as usize] == 0 {
                freed.push(m);
            }
        }
    }
}

/// Exact inverse of [`deref_cone_into`] over the recorded decrement list.
fn ref_cone(touched: &[u32], refs: &mut [u32]) {
    for &m in touched {
        refs[m as usize] += 1;
    }
}

/// Prices instantiating `structure` (4 or 6 inputs, 1 output) over `imap`
/// against graph `g` without mutating it. Returns the number of nodes a
/// real instantiation would create, and — when every step resolves to
/// existing logic — the literal the output lands on. Existing nodes inside
/// the candidate's own dying cone (`freed_mark`) or inside a cone claimed
/// by an earlier accepted rewrite (`claimed`) are priced as new: reusing
/// them would just keep dead logic alive. `vals` is the recycled value map.
fn dry_run_into(
    g: &Aig,
    structure: &Aig,
    imap: &[Lit; MAX_LEAVES],
    freed_mark: &[bool],
    claimed: &[bool],
    vals: &mut Vec<Option<Lit>>,
) -> (usize, Option<Lit>) {
    vals.clear();
    vals.resize(structure.num_nodes(), None);
    vals[0] = Some(Lit::FALSE);
    for (i, &l) in imap.iter().enumerate().take(structure.num_inputs()) {
        vals[i + 1] = Some(l);
    }
    let mut added = 0usize;
    for s in (structure.num_inputs() + 1)..structure.num_nodes() {
        let (f0, f1) = structure.fanins(s as u32);
        let a = vals[f0.node() as usize].map(|l| l.complement_if(f0.is_complemented()));
        let b = vals[f1.node() as usize].map(|l| l.complement_if(f1.is_complemented()));
        vals[s] = match (a, b) {
            (Some(x), Some(y)) => match g.lookup_and(x, y) {
                Some(l)
                    if l.is_constant()
                        || (!freed_mark[l.node() as usize] && !claimed[l.node() as usize]) =>
                {
                    Some(l)
                }
                Some(l) => {
                    added += 1;
                    Some(l)
                }
                None => {
                    added += 1;
                    None
                }
            },
            // One side unresolved: constants still fold for free.
            (Some(c), other) | (other, Some(c)) if c == Lit::FALSE => {
                let _ = other;
                Some(Lit::FALSE)
            }
            (Some(c), other) | (other, Some(c)) if c == Lit::TRUE => other,
            _ => {
                added += 1;
                None
            }
        };
    }
    let o = structure.outputs()[0];
    let out = vals[o.node() as usize].map(|l| l.complement_if(o.is_complemented()));
    (added, out)
}

/// Lazily rebuilds `g` from its outputs with the recorded replacements
/// applied; cones nothing references anymore are never materialized.
fn rebuild(g: &Aig, decisions: &[Option<Decision>]) -> Aig {
    let mut fresh = Aig::new(g.num_inputs());
    let mut map: Vec<Option<Lit>> = vec![None; g.num_nodes()];
    for (i, slot) in map.iter_mut().enumerate().take(g.num_inputs() + 1) {
        *slot = Some(Lit::new(i as u32, false));
    }
    let mut stack: Vec<u32> = g.outputs().iter().map(|o| o.node()).collect();
    while let Some(&n) = stack.last() {
        if map[n as usize].is_some() {
            stack.pop();
            continue;
        }
        let mut deps = [0u32; MAX_LEAVES];
        let nd = match &decisions[n as usize] {
            Some(dec) => {
                deps[..dec.len as usize].copy_from_slice(&dec.leaves[..dec.len as usize]);
                dec.len as usize
            }
            None => {
                let (f0, f1) = g.fanins(n);
                deps[0] = f0.node();
                deps[1] = f1.node();
                2
            }
        };
        let mut ready = true;
        for &d in &deps[..nd] {
            if map[d as usize].is_none() {
                stack.push(d);
                ready = false;
            }
        }
        if !ready {
            continue;
        }
        stack.pop();
        let lit = match &decisions[n as usize] {
            Some(dec) => {
                let mut leaf_lits = [Lit::FALSE; MAX_LEAVES];
                for (i, &l) in dec.leaves[..dec.len as usize].iter().enumerate() {
                    leaf_lits[i] = map[l as usize].expect("leaf built");
                }
                let imap = dec.entry.input_map(&leaf_lits);
                let ni = dec.entry.structure.num_inputs();
                let outs = fresh.append(&dec.entry.structure, &imap[..ni]);
                outs[0].complement_if(dec.entry.output_complement())
            }
            None => {
                let (f0, f1) = g.fanins(n);
                let a = map[f0.node() as usize]
                    .expect("fanin built")
                    .complement_if(f0.is_complemented());
                let b = map[f1.node() as usize]
                    .expect("fanin built")
                    .complement_if(f1.is_complemented());
                fresh.and(a, b)
            }
        };
        map[n as usize] = Some(lit);
    }
    for o in g.outputs() {
        let l = map[o.node() as usize]
            .expect("output cone built")
            .complement_if(o.is_complemented());
        fresh.add_output(l);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    /// A deadline firing inside the node loop stops decision-making early;
    /// the decisions already made still rebuild to an equivalent graph.
    #[test]
    fn tiny_deadline_yields_valid_partial_rewrite() {
        let mut g = Aig::new(8);
        let mut lits = g.inputs();
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..2500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = lits[(state >> 16) as usize % lits.len()];
            let b = lits[(state >> 40) as usize % lits.len()];
            let l = if state.is_multiple_of(2) {
                g.and(a, !b)
            } else {
                g.xor(a, b)
            };
            lits.push(l);
        }
        let out = *lits.last().unwrap();
        g.add_output(out);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let h = crate::cancel::with_token(&token, || rewrite(&g, &RewriteConfig::default()));
        equivalent_exhaustive(&g, &h);
        let token = crate::cancel::CancelToken::with_budget(std::time::Duration::from_nanos(1));
        let h = crate::cancel::with_token(&token, || rewrite(&g, &RewriteConfig::default()));
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn removes_redundant_mux_of_equal_branches() {
        // f = mux(s, g, g') where g and g' are structurally different but
        // equal functions: strash cannot see it, a 4-cut can.
        let mut g = Aig::new(3);
        let (s, a, b) = (g.input(0), g.input(1), g.input(2));
        let t = g.and(a, b);
        let e = {
            // a AND b via double negation of OR-of-complements.
            let o = g.or(!a, !b);
            !o
        };
        let f = g.mux(s, t, e);
        g.add_output(f);
        let before = g.num_ands();
        let h = rewrite(&g, &RewriteConfig::default());
        assert!(h.num_ands() < before, "{} -> {}", before, h.num_ands());
        equivalent_exhaustive(&g, &h);
        // The whole thing is just a AND b.
        assert_eq!(h.num_ands(), 1);
    }

    #[test]
    fn rewrites_sop_to_shared_form() {
        // f = (a & b) | (a & c) | (a & d): 5 ANDs naively, 2 after a*(b|c|d)
        // ... which needs two rewriting steps over 4-cuts.
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let ab = g.and(a, b);
        let ac = g.and(a, c);
        let ad = g.and(a, d);
        let o1 = g.or(ab, ac);
        let f = g.or(o1, ad);
        g.add_output(f);
        let before = g.num_ands();
        let h = rewrite(&g, &RewriteConfig::default());
        assert!(h.num_ands() <= before);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn never_grows_and_preserves_multi_output() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..4]);
        let y = g.and_many(&ins[2..]);
        let z = g.mux(ins[0], x, y);
        g.add_output(x);
        g.add_output(!z);
        g.add_output(Lit::TRUE);
        let before = {
            let mut c = g.clone();
            c.cleanup();
            c.num_ands()
        };
        for zero_gain in [false, true] {
            for cut_size in [4, 6] {
                let h = rewrite(
                    &g,
                    &RewriteConfig {
                        zero_gain,
                        cut_size,
                        ..RewriteConfig::default()
                    },
                );
                assert!(h.num_ands() <= before);
                equivalent_exhaustive(&g, &h);
            }
        }
    }

    #[test]
    fn constant_cone_collapses() {
        // (a XOR b) XOR (a XOR b) = 0 built without strash sharing the two
        // forms: x ^ x folds at the top already, so build x XNOR x' where
        // x' is a structurally different equal function.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = {
            let o = g.or(a, b);
            let n = g.and(a, b);
            g.and(o, !n) // also a XOR b
        };
        let f = g.xnor(x, y); // constant true
        g.add_output(f);
        let h = rewrite(&g, &RewriteConfig::default());
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), 0, "constant cone should vanish");
    }

    #[test]
    fn k6_cuts_reach_across_deeper_cones() {
        // A 6-input redundant structure a 4-cut cannot span at once: two
        // structurally different 6-input parities muxed together.
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let mut chain = ins[0];
        for &x in &ins[1..] {
            chain = g.xor(chain, x);
        }
        let tree = g.xor_many(&ins);
        let f = g.and(chain, tree); // == parity
        g.add_output(f);
        for cfg in [RewriteConfig::default(), RewriteConfig::k6()] {
            let h = rewrite(&g, &cfg);
            assert!(h.num_ands() <= g.num_ands());
            equivalent_exhaustive(&g, &h);
        }
    }

    #[test]
    fn reference_and_arena_paths_agree() {
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..4]);
        let y = g.and_many(&ins[1..]);
        let z = g.mux(ins[0], x, y);
        let w = g.or(z, !x);
        g.add_output(w);
        g.add_output(!z);
        for cfg in [
            RewriteConfig::default(),
            RewriteConfig::k6(),
            RewriteConfig {
                zero_gain: true,
                ..RewriteConfig::k6()
            },
        ] {
            let a = rewrite(&g, &cfg);
            let b = rewrite_reference(&g, &cfg);
            assert_eq!(
                a.structural_fingerprint(),
                b.structural_fingerprint(),
                "arena and reference rewrites diverged"
            );
        }
    }

    #[test]
    fn empty_and_tiny_graphs_pass_through() {
        let g = Aig::constant(3, true);
        let h = rewrite(&g, &RewriteConfig::default());
        assert_eq!(h.num_ands(), 0);
        equivalent_exhaustive(&g, &h);

        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let f = g.and(a, b);
        g.add_output(f);
        let h = rewrite(&g, &RewriteConfig::default());
        assert_eq!(h.num_ands(), 1);
        equivalent_exhaustive(&g, &h);
    }
}
