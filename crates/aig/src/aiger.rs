//! AIGER (`.aag` / `.aig`) serialization.
//!
//! The contest exchanged circuits in AIGER, Biere's standard AIG format. We
//! support the combinational subset (no latches) of both variants: the ASCII
//! form ([`write_aag`] / [`read_aag`]) and the compact binary form
//! ([`write_aig`] / [`read_aig`]) that real ABC emits and consumes — so
//! circuits optimized here round-trip with external tooling without an
//! `aigtoaig` hop.
//!
//! In the binary form input and AND literals are implicit (inputs are
//! `2, 4, …, 2I`; AND `i` defines literal `2(I + 1 + i)` in ascending
//! order) and each AND is stored as two LEB128-style variable-length
//! deltas, `lhs − rhs0` and `rhs0 − rhs1` with `lhs > rhs0 ≥ rhs1`. Our
//! in-memory layout (append-only, fanins strictly below) already satisfies
//! the ordering, so writing is a direct scan.

use std::io::{BufRead, BufReader, Read, Write};

use lsml_pla::ParseError;

use crate::aig::Aig;
use crate::lit::Lit;

/// Writes the AIG in ASCII AIGER format. Pass `&mut writer` to retain
/// ownership.
///
/// Node indices map directly onto AIGER variables (input `i` is literal
/// `2*(i+1)`), so the output is canonical with respect to the in-memory
/// graph.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aag<W: Write>(aig: &Aig, mut writer: W) -> std::io::Result<()> {
    let m = aig.num_nodes() - 1; // maximum variable index
    let i = aig.num_inputs();
    let o = aig.outputs().len();
    let a = aig.num_ands();
    writeln!(writer, "aag {m} {i} 0 {o} {a}")?;
    for idx in 0..i {
        writeln!(writer, "{}", aig.input(idx).raw())?;
    }
    for out in aig.outputs() {
        writeln!(writer, "{}", out.raw())?;
    }
    for n in (i + 1)..aig.num_nodes() {
        let (f0, f1) = aig.fanins(n as u32);
        // AIGER wants lhs > rhs0 >= rhs1.
        let (hi, lo) = if f0.raw() >= f1.raw() {
            (f0, f1)
        } else {
            (f1, f0)
        };
        writeln!(writer, "{} {} {}", 2 * n, hi.raw(), lo.raw())?;
    }
    Ok(())
}

/// Reads an ASCII AIGER file (combinational subset: zero latches).
/// Pass `&mut reader` to retain ownership.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed headers, latch sections, or dangling
/// literal references.
pub fn read_aag<R: Read>(reader: R) -> Result<Aig, ParseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError::new("empty AIGER file"))?
        .map_err(ParseError::from)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseError::new(format!("bad AIGER header `{header}`")));
    }
    let parse = |s: &str| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::new(format!("bad AIGER header field `{s}`")))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    if l != 0 {
        return Err(ParseError::new("latches are not supported"));
    }
    if m < i + a {
        return Err(ParseError::new("inconsistent AIGER header counts"));
    }
    check_header_bounds(m)?;

    let mut next = || -> Result<String, ParseError> {
        lines
            .next()
            .ok_or_else(|| ParseError::new("unexpected end of AIGER file"))?
            .map_err(ParseError::from)
    };

    for k in 0..i {
        let line = next()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(format!("bad input literal `{line}`")))?;
        if lit != 2 * (k as u32 + 1) {
            return Err(ParseError::new(format!(
                "non-canonical input literal {lit}, expected {}",
                2 * (k + 1)
            )));
        }
    }
    let mut output_lits = Vec::with_capacity(capacity_hint(o));
    for _ in 0..o {
        let line = next()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(format!("bad output literal `{line}`")))?;
        output_lits.push(lit);
    }

    // AND definitions: lhs is 2 * node index; nodes appear in ascending order
    // in files we produce, but we tolerate any topological order by indexing.
    let mut defs: Vec<Option<(u32, u32)>> = vec![None; m + 1];
    for _ in 0..a {
        let line = next()?;
        let nums: Vec<u32> = line
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| ParseError::new(format!("bad AND line `{line}`")))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(ParseError::new(format!("bad AND line `{line}`")));
        }
        let lhs = nums[0];
        if !lhs.is_multiple_of(2) || (lhs / 2) as usize > m {
            return Err(ParseError::new(format!("bad AND lhs `{lhs}`")));
        }
        defs[(lhs / 2) as usize] = Some((nums[1], nums[2]));
    }

    // Rebuild with structural hashing. Resolution is iterative (an explicit
    // two-phase worklist, not recursion): deeply chained files — routine in
    // real ABC output — must not blow the call stack, and cyclic definitions
    // must yield a ParseError rather than a hang or abort.
    let mut aig = Aig::new(i);
    let mut map: Vec<Option<Lit>> = vec![None; m + 1];
    map[0] = Some(Lit::FALSE);
    for k in 0..i {
        map[k + 1] = Some(Lit::new(k as u32 + 1, false));
    }
    let mut in_progress = vec![false; m + 1];
    for lit in output_lits {
        let root = (lit / 2) as usize;
        if root > m {
            return Err(ParseError::new(format!(
                "output literal {lit} out of range"
            )));
        }
        let mut stack: Vec<(usize, bool)> = vec![(root, false)];
        while let Some((var, expanded)) = stack.pop() {
            if map[var].is_some() {
                continue;
            }
            if !expanded && in_progress[var] {
                return Err(ParseError::new(format!(
                    "cyclic AIGER definition at variable {var}"
                )));
            }
            let (r0, r1) = defs[var]
                .ok_or_else(|| ParseError::new(format!("undefined AIGER variable {var}")))?;
            let (d0, d1) = ((r0 / 2) as usize, (r1 / 2) as usize);
            if d0 > m || d1 > m {
                return Err(ParseError::new(format!(
                    "AND {var} references a variable beyond the header bound"
                )));
            }
            if expanded {
                let a0 = map[d0].expect("fanin resolved").complement_if(r0 % 2 == 1);
                let a1 = map[d1].expect("fanin resolved").complement_if(r1 % 2 == 1);
                map[var] = Some(aig.and(a0, a1));
                continue;
            }
            in_progress[var] = true;
            stack.push((var, true));
            for d in [d0, d1] {
                if map[d].is_none() {
                    stack.push((d, false));
                }
            }
        }
        let l = map[root]
            .expect("root resolved")
            .complement_if(lit % 2 == 1);
        aig.add_output(l);
    }
    Ok(aig)
}

/// Writes the AIG in binary AIGER format. Pass `&mut writer` to retain
/// ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aig<W: Write>(aig: &Aig, mut writer: W) -> std::io::Result<()> {
    let m = aig.num_nodes() - 1;
    let i = aig.num_inputs();
    let o = aig.outputs().len();
    let a = aig.num_ands();
    writeln!(writer, "aig {m} {i} 0 {o} {a}")?;
    // Inputs are implicit in the binary form; outputs stay ASCII.
    for out in aig.outputs() {
        writeln!(writer, "{}", out.raw())?;
    }
    for n in (i + 1)..aig.num_nodes() {
        let (f0, f1) = aig.fanins(n as u32);
        let (hi, lo) = if f0.raw() >= f1.raw() {
            (f0, f1)
        } else {
            (f1, f0)
        };
        let lhs = 2 * n as u32;
        debug_assert!(lhs > hi.raw() && hi.raw() >= lo.raw());
        write_leb(&mut writer, lhs - hi.raw())?;
        write_leb(&mut writer, hi.raw() - lo.raw())?;
    }
    Ok(())
}

/// Reads a binary AIGER file (combinational subset: zero latches).
/// Pass `&mut reader` to retain ownership.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed headers, latch sections, truncated
/// delta streams, or non-topological AND definitions.
pub fn read_aig<R: Read>(reader: R) -> Result<Aig, ParseError> {
    let mut reader = BufReader::new(reader);
    let header = read_line(&mut reader)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseError::new(format!(
            "bad binary AIGER header `{header}`"
        )));
    }
    let parse = |s: &str| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::new(format!("bad AIGER header field `{s}`")))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    if l != 0 {
        return Err(ParseError::new("latches are not supported"));
    }
    if m != i + a {
        return Err(ParseError::new(
            "binary AIGER requires contiguous variables (m = i + a)",
        ));
    }
    check_header_bounds(m)?;

    let mut output_lits = Vec::with_capacity(capacity_hint(o));
    for _ in 0..o {
        let line = read_line(&mut reader)?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(format!("bad output literal `{line}`")))?;
        if (lit / 2) as usize > m {
            return Err(ParseError::new(format!(
                "output literal {lit} out of range"
            )));
        }
        output_lits.push(lit);
    }

    let mut aig = Aig::new(i);
    // `lits[v]` is the in-memory literal for AIGER variable `v`. Binary
    // AIGER defines ANDs in ascending variable order with fanins strictly
    // below, so one forward scan rebuilds the graph (structural hashing may
    // compact duplicate definitions).
    let mut lits: Vec<Lit> = Vec::with_capacity(m + 1);
    lits.push(Lit::FALSE);
    for k in 0..i {
        lits.push(Lit::new(k as u32 + 1, false));
    }
    for k in 0..a {
        let lhs = 2 * (i + 1 + k) as u32;
        let d0 = read_leb(&mut reader)?;
        let d1 = read_leb(&mut reader)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseError::new(format!("AND {lhs}: delta0 {d0} underflows")))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| ParseError::new(format!("AND {lhs}: delta1 {d1} underflows")))?;
        if d0 == 0 {
            return Err(ParseError::new(format!(
                "AND {lhs}: rhs0 must be below lhs"
            )));
        }
        let f0 = resolve_binary(rhs0, &lits)?;
        let f1 = resolve_binary(rhs1, &lits)?;
        lits.push(aig.and(f0, f1));
    }
    for lit in output_lits {
        let l = resolve_binary(lit, &lits)?;
        aig.add_output(l);
    }
    Ok(aig)
}

/// Hard cap on header-declared variable counts, shared by every untrusted
/// parser in this crate ([`read_aag`], [`read_aig`], and the `.bench`
/// reader in [`crate::bench`]).
///
/// 2^22 variables is orders of magnitude beyond anything this workspace
/// produces (the contest caps circuits at 5000 ANDs) while keeping the
/// header-sized `defs`/`map` tables in [`read_aag`] around 100 MB even for
/// a maximally lying header — a hostile header yields a [`ParseError`], not
/// an allocation abort or OOM kill.
pub const MAX_PARSE_VARS: usize = 1 << 22;

/// Rejects variable counts above [`MAX_PARSE_VARS`] *before* any allocation
/// is sized from the header.
fn check_header_bounds(m: usize) -> Result<(), ParseError> {
    if m > MAX_PARSE_VARS {
        return Err(ParseError::new(format!(
            "AIGER variable count {m} exceeds the parser limit ({MAX_PARSE_VARS})"
        )));
    }
    Ok(())
}

/// Allocation hint for header-declared element counts: trust small headers,
/// let lying ones grow incrementally until the truncated body errors out.
fn capacity_hint(n: usize) -> usize {
    n.min(1 << 20)
}

fn resolve_binary(raw: u32, lits: &[Lit]) -> Result<Lit, ParseError> {
    let var = (raw / 2) as usize;
    let l = lits
        .get(var)
        .ok_or_else(|| ParseError::new(format!("literal {raw} references undefined variable")))?;
    Ok(l.complement_if(raw % 2 == 1))
}

/// Reads one `\n`-terminated ASCII line from a byte stream (the binary
/// format mixes ASCII header/output lines with raw delta bytes, so the
/// line-oriented `BufRead::lines` cannot be used).
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, ParseError> {
    let mut buf = Vec::new();
    reader
        .read_until(b'\n', &mut buf)
        .map_err(ParseError::from)?;
    if buf.is_empty() {
        return Err(ParseError::new("unexpected end of AIGER file"));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ParseError::new("non-UTF8 AIGER header line"))
}

/// LEB128-style unsigned encoding: 7 bits per byte, high bit = continuation.
fn write_leb<W: Write>(writer: &mut W, mut x: u32) -> std::io::Result<()> {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

fn read_leb<R: Read>(reader: &mut R) -> Result<u32, ParseError> {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader
            .read_exact(&mut byte)
            .map_err(|_| ParseError::new("truncated binary AIGER delta"))?;
        let b = byte[0];
        if shift >= 32 || (shift == 28 && (b & 0x7F) > 0x0F) {
            return Err(ParseError::new("binary AIGER delta overflows 32 bits"));
        }
        x |= u32::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.xor(a, b);
        let f = g.mux(c, x, !a);
        g.add_output(f);
        g.add_output(!x);
        g
    }

    #[test]
    fn roundtrip_preserves_function() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let h = read_aag(buf.as_slice()).expect("read");
        assert_eq!(h.num_inputs(), 3);
        assert_eq!(h.outputs().len(), 2);
        for m in 0..8u32 {
            let bits = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(g.eval(&bits), h.eval(&bits), "mismatch on {m:03b}");
        }
    }

    #[test]
    fn header_shape() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let header = text.lines().next().expect("header");
        let f: Vec<&str> = header.split_whitespace().collect();
        assert_eq!(f[0], "aag");
        assert_eq!(f[2], "3"); // inputs
        assert_eq!(f[3], "0"); // latches
        assert_eq!(f[4], "2"); // outputs
    }

    #[test]
    fn constant_output_roundtrip() {
        let g = Aig::constant(2, true);
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let h = read_aag(buf.as_slice()).expect("read");
        assert_eq!(h.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn rejects_latches() {
        let err = read_aag("aag 1 0 1 0 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("latches"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_aag("not an aiger".as_bytes()).is_err());
        assert!(read_aag("".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_aig(&g, &mut buf).expect("write");
        let h = read_aig(buf.as_slice()).expect("read");
        assert_eq!(h.num_inputs(), 3);
        assert_eq!(h.outputs().len(), 2);
        assert_eq!(h.num_ands(), g.num_ands());
        for m in 0..8u32 {
            let bits = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(g.eval(&bits), h.eval(&bits), "mismatch on {m:03b}");
        }
    }

    #[test]
    fn binary_agrees_with_ascii() {
        let g = sample_aig();
        let (mut aag, mut aig_buf) = (Vec::new(), Vec::new());
        write_aag(&g, &mut aag).expect("write aag");
        write_aig(&g, &mut aig_buf).expect("write aig");
        let from_ascii = read_aag(aag.as_slice()).expect("read aag");
        let from_binary = read_aig(aig_buf.as_slice()).expect("read aig");
        for m in 0..8u32 {
            let bits = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(from_ascii.eval(&bits), from_binary.eval(&bits));
        }
        // The binary body (after header + output lines) is delta bytes, so
        // the file is strictly smaller once the graph has a few ANDs.
        assert!(aig_buf.len() < aag.len());
    }

    #[test]
    fn binary_constant_and_passthrough_outputs() {
        let mut g = Aig::new(2);
        g.add_output(Lit::TRUE);
        g.add_output(g.input(1));
        let mut buf = Vec::new();
        write_aig(&g, &mut buf).expect("write");
        let h = read_aig(buf.as_slice()).expect("read");
        assert_eq!(h.eval(&[false, false]), vec![true, false]);
        assert_eq!(h.eval(&[false, true]), vec![true, true]);
    }

    #[test]
    fn binary_wide_graph_exercises_multibyte_deltas() {
        // An OR chain whose late ANDs reference input 0: deltas exceed 127
        // and need the LEB continuation byte.
        let mut g = Aig::new(70);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.or(acc, x);
        }
        g.add_output(acc);
        let mut buf = Vec::new();
        write_aig(&g, &mut buf).expect("write");
        let h = read_aig(buf.as_slice()).expect("read");
        assert_eq!(h.num_ands(), g.num_ands());
        let all_false = vec![false; 70];
        let mut one_set = all_false.clone();
        one_set[37] = true;
        assert_eq!(h.eval(&all_false), vec![false]);
        assert_eq!(h.eval(&one_set), vec![true]);
    }

    #[test]
    fn binary_rejects_malformed() {
        // Latches.
        assert!(read_aig("aig 1 0 1 0 0\n".as_bytes()).is_err());
        // Non-contiguous variable count (m != i + a).
        assert!(read_aig("aig 5 1 0 0 1\n".as_bytes()).is_err());
        // Truncated delta stream.
        assert!(read_aig("aig 2 1 0 1 1\n4\n".as_bytes()).is_err());
        // Zero delta0 (rhs0 == lhs).
        assert!(read_aig(&b"aig 2 1 0 1 1\n4\n\x00\x00"[..]).is_err());
        assert!(read_aig("".as_bytes()).is_err());
    }

    #[test]
    fn hostile_header_counts_error_instead_of_aborting() {
        // Astronomically large variable counts must yield ParseError before
        // any header-sized allocation happens.
        assert!(read_aag("aag 99999999999999999 0 0 0 0\n".as_bytes()).is_err());
        // Just over MAX_PARSE_VARS is rejected too, not only usize-breaking
        // counts: the cap binds before the `vec![None; m + 1]` tables.
        let over = MAX_PARSE_VARS + 1;
        assert!(read_aag(format!("aag {over} 0 0 0 0\n").as_bytes()).is_err());
        assert!(read_aig("aig 99999999999999999 0 0 0 99999999999999999\n".as_bytes()).is_err());
        // A lying output count hits truncated-file errors, not an alloc abort.
        assert!(read_aig("aig 0 0 0 99999999999999 0\n".as_bytes()).is_err());
        assert!(read_aag("aag 1 1 0 99999999999999 0\n2\n".as_bytes()).is_err());
    }

    #[test]
    fn leb_roundtrip() {
        for x in [0u32, 1, 127, 128, 129, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            write_leb(&mut buf, x).expect("write");
            let back = read_leb(&mut buf.as_slice()).expect("read");
            assert_eq!(back, x);
        }
        // Overflowing encodings are rejected.
        assert!(read_leb(&mut &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01][..]).is_err());
    }
}
