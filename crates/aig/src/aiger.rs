//! ASCII AIGER (`.aag`) serialization.
//!
//! The contest exchanged circuits in AIGER, Biere's standard AIG format. We
//! support the combinational subset (no latches) of the ASCII variant, which
//! is what `aigtoaig` converts to and from the binary form.

use std::io::{BufRead, BufReader, Read, Write};

use lsml_pla::ParseError;

use crate::aig::Aig;
use crate::lit::Lit;

/// Writes the AIG in ASCII AIGER format. Pass `&mut writer` to retain
/// ownership.
///
/// Node indices map directly onto AIGER variables (input `i` is literal
/// `2*(i+1)`), so the output is canonical with respect to the in-memory
/// graph.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aag<W: Write>(aig: &Aig, mut writer: W) -> std::io::Result<()> {
    let m = aig.num_nodes() - 1; // maximum variable index
    let i = aig.num_inputs();
    let o = aig.outputs().len();
    let a = aig.num_ands();
    writeln!(writer, "aag {m} {i} 0 {o} {a}")?;
    for idx in 0..i {
        writeln!(writer, "{}", aig.input(idx).raw())?;
    }
    for out in aig.outputs() {
        writeln!(writer, "{}", out.raw())?;
    }
    for n in (i + 1)..aig.num_nodes() {
        let (f0, f1) = aig.fanins(n as u32);
        // AIGER wants lhs > rhs0 >= rhs1.
        let (hi, lo) = if f0.raw() >= f1.raw() {
            (f0, f1)
        } else {
            (f1, f0)
        };
        writeln!(writer, "{} {} {}", 2 * n, hi.raw(), lo.raw())?;
    }
    Ok(())
}

/// Reads an ASCII AIGER file (combinational subset: zero latches).
/// Pass `&mut reader` to retain ownership.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed headers, latch sections, or dangling
/// literal references.
pub fn read_aag<R: Read>(reader: R) -> Result<Aig, ParseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError::new("empty AIGER file"))?
        .map_err(ParseError::from)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseError::new(format!("bad AIGER header `{header}`")));
    }
    let parse = |s: &str| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::new(format!("bad AIGER header field `{s}`")))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    if l != 0 {
        return Err(ParseError::new("latches are not supported"));
    }
    if m < i + a {
        return Err(ParseError::new("inconsistent AIGER header counts"));
    }

    let mut next = || -> Result<String, ParseError> {
        lines
            .next()
            .ok_or_else(|| ParseError::new("unexpected end of AIGER file"))?
            .map_err(ParseError::from)
    };

    for k in 0..i {
        let line = next()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(format!("bad input literal `{line}`")))?;
        if lit != 2 * (k as u32 + 1) {
            return Err(ParseError::new(format!(
                "non-canonical input literal {lit}, expected {}",
                2 * (k + 1)
            )));
        }
    }
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = next()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(format!("bad output literal `{line}`")))?;
        output_lits.push(lit);
    }

    // AND definitions: lhs is 2 * node index; nodes appear in ascending order
    // in files we produce, but we tolerate any topological order by indexing.
    let mut defs: Vec<Option<(u32, u32)>> = vec![None; m + 1];
    for _ in 0..a {
        let line = next()?;
        let nums: Vec<u32> = line
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| ParseError::new(format!("bad AND line `{line}`")))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(ParseError::new(format!("bad AND line `{line}`")));
        }
        let lhs = nums[0];
        if !lhs.is_multiple_of(2) || (lhs / 2) as usize > m {
            return Err(ParseError::new(format!("bad AND lhs `{lhs}`")));
        }
        defs[(lhs / 2) as usize] = Some((nums[1], nums[2]));
    }

    // Rebuild with structural hashing, resolving definitions recursively.
    let mut aig = Aig::new(i);
    let mut map: Vec<Option<Lit>> = vec![None; m + 1];
    map[0] = Some(Lit::FALSE);
    for k in 0..i {
        map[k + 1] = Some(Lit::new(k as u32 + 1, false));
    }

    fn resolve(
        var: usize,
        defs: &[Option<(u32, u32)>],
        map: &mut [Option<Lit>],
        aig: &mut Aig,
    ) -> Result<Lit, ParseError> {
        if let Some(l) = map[var] {
            return Ok(l);
        }
        let (r0, r1) =
            defs[var].ok_or_else(|| ParseError::new(format!("undefined AIGER variable {var}")))?;
        let a0 = resolve((r0 / 2) as usize, defs, map, aig)?.complement_if(r0 % 2 == 1);
        let a1 = resolve((r1 / 2) as usize, defs, map, aig)?.complement_if(r1 % 2 == 1);
        let l = aig.and(a0, a1);
        map[var] = Some(l);
        Ok(l)
    }

    for lit in output_lits {
        let var = (lit / 2) as usize;
        if var > m {
            return Err(ParseError::new(format!(
                "output literal {lit} out of range"
            )));
        }
        let l = resolve(var, &defs, &mut map, &mut aig)?.complement_if(lit % 2 == 1);
        aig.add_output(l);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.xor(a, b);
        let f = g.mux(c, x, !a);
        g.add_output(f);
        g.add_output(!x);
        g
    }

    #[test]
    fn roundtrip_preserves_function() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let h = read_aag(buf.as_slice()).expect("read");
        assert_eq!(h.num_inputs(), 3);
        assert_eq!(h.outputs().len(), 2);
        for m in 0..8u32 {
            let bits = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(g.eval(&bits), h.eval(&bits), "mismatch on {m:03b}");
        }
    }

    #[test]
    fn header_shape() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let header = text.lines().next().expect("header");
        let f: Vec<&str> = header.split_whitespace().collect();
        assert_eq!(f[0], "aag");
        assert_eq!(f[2], "3"); // inputs
        assert_eq!(f[3], "0"); // latches
        assert_eq!(f[4], "2"); // outputs
    }

    #[test]
    fn constant_output_roundtrip() {
        let g = Aig::constant(2, true);
        let mut buf = Vec::new();
        write_aag(&g, &mut buf).expect("write");
        let h = read_aag(buf.as_slice()).expect("read");
        assert_eq!(h.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn rejects_latches() {
        let err = read_aag("aag 1 0 1 0 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("latches"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_aag("not an aiger".as_bytes()).is_err());
        assert!(read_aag("".as_bytes()).is_err());
    }
}
