//! BENCH (`.bench`) serialization — the ISCAS/LGSynth netlist format.
//!
//! Real benchmark corpora mix AIGER with `.bench` netlists (named signals,
//! one gate per line: `f = AND(a, b)`), so external ingestion accepts both
//! (see `lsml-suite`'s `ingest` module for the `--format auto` detection).
//! We support the combinational subset: `INPUT`/`OUTPUT` declarations and
//! `AND`/`NAND`/`OR`/`NOR`/`XOR`/`XNOR`/`NOT`/`BUFF` gates with arbitrary
//! definition order; `DFF` and other sequential elements are rejected with
//! a structured error.
//!
//! # Hardening contract
//!
//! Like the AIGER readers, [`read_bench`] is written against *untrusted*
//! input and must never panic, abort, or allocate unboundedly, whatever the
//! bytes (fuzz-proven in `tests/parser_fuzz.rs`):
//!
//! * total input is capped at [`MAX_BENCH_BYTES`] before buffering;
//! * distinct signal names are capped at the shared AIGER variable bound
//!   ([`crate::aiger`]'s parser limit), gate fan-in at [`MAX_BENCH_FANIN`],
//!   and name length at [`MAX_NAME_LEN`];
//! * cyclic definitions, undefined or re-defined signals, and arity
//!   violations all surface as [`ParseError`] — resolution is an explicit
//!   worklist, so deeply chained files cannot blow the call stack.
//!
//! # Round-trip shape
//!
//! [`write_bench`] names input `i` as `i{i}` and AND node `n` as `n{n}`,
//! materializes complemented edges as `NOT` aliases, and drives each output
//! through a final `BUFF`/`NOT` gate. Reading that back re-creates the AND
//! nodes in their original creation order (`NOT`/`BUFF` are pure edge
//! complements, never nodes), so a write→read round trip reproduces the
//! graph *structurally* — identical [`Aig::structural_fingerprint`] — not
//! merely functionally (pinned by proptest in `tests/bench_props.rs`).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use lsml_pla::ParseError;

use crate::aig::Aig;
use crate::aiger::MAX_PARSE_VARS;
use crate::lit::Lit;

/// Total bytes [`read_bench`] will consume before erroring: a parser-level
/// backstop (ingestion layers usually cap file size earlier and tighter).
pub const MAX_BENCH_BYTES: usize = 64 * 1024 * 1024;

/// Maximum fan-ins of one gate line. Real `.bench` cones keep wide gates
/// far below this; a hostile line with thousands of fan-ins is rejected
/// rather than expanded into an unbounded AND tree.
pub const MAX_BENCH_FANIN: usize = 256;

/// Maximum length of one signal name.
pub const MAX_NAME_LEN: usize = 512;

/// Gate operators of the combinational subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GateOp {
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Not,
    Buff,
}

impl GateOp {
    fn parse(s: &str) -> Option<GateOp> {
        // Case-insensitive: corpora mix `AND`, `and` and `And`.
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(GateOp::And),
            "NAND" => Some(GateOp::Nand),
            "OR" => Some(GateOp::Or),
            "NOR" => Some(GateOp::Nor),
            "XOR" => Some(GateOp::Xor),
            "XNOR" => Some(GateOp::Xnor),
            "NOT" => Some(GateOp::Not),
            "BUFF" | "BUF" => Some(GateOp::Buff),
            _ => None,
        }
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            GateOp::Not | GateOp::Buff => n == 1,
            _ => (2..=MAX_BENCH_FANIN).contains(&n),
        }
    }
}

/// One signal's definition: a gate over named fan-ins.
struct GateDef {
    op: GateOp,
    fanins: Vec<u32>,
    line: usize,
}

/// Interns `name`, enforcing the name-length and signal-count caps.
fn intern(names: &mut HashMap<String, u32>, name: &str, line: usize) -> Result<u32, ParseError> {
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return Err(ParseError::new(format!(
            "signal name of {} bytes (limit {MAX_NAME_LEN})",
            name.len()
        ))
        .at_line(line));
    }
    if let Some(&id) = names.get(name) {
        return Ok(id);
    }
    if names.len() >= MAX_PARSE_VARS {
        return Err(ParseError::new(format!(
            "more than {MAX_PARSE_VARS} distinct signals (parser limit)"
        ))
        .at_line(line));
    }
    let id = names.len() as u32;
    names.insert(name.to_owned(), id);
    Ok(id)
}

/// Splits `NAME ( a, b, c )` into the head token and the argument list.
fn split_call(s: &str, line: usize) -> Result<(&str, Vec<&str>), ParseError> {
    let open = s
        .find('(')
        .ok_or_else(|| ParseError::new(format!("expected `(` in `{s}`")).at_line(line))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| ParseError::new(format!("expected `)` in `{s}`")).at_line(line))?;
    if close < open {
        return Err(ParseError::new(format!("mismatched parentheses in `{s}`")).at_line(line));
    }
    let head = s[..open].trim();
    let body = s[open + 1..close].trim();
    let args: Vec<&str> = if body.is_empty() {
        Vec::new()
    } else {
        body.split(',').map(str::trim).collect()
    };
    Ok((head, args))
}

/// Reads a combinational `.bench` netlist. Never panics on arbitrary input;
/// every defect — sequential elements, cycles, undefined or duplicated
/// signals, cap violations — is a structured [`ParseError`] carrying the
/// offending line number.
///
/// # Errors
///
/// Returns [`ParseError`] as described above; see the
/// [module docs](self) for the full hardening contract.
pub fn read_bench<R: Read>(reader: R) -> Result<Aig, ParseError> {
    let reader = BufReader::new(reader.take(MAX_BENCH_BYTES as u64 + 1));
    let mut names: HashMap<String, u32> = HashMap::new();
    let mut inputs: Vec<u32> = Vec::new();
    let mut outputs: Vec<(u32, usize)> = Vec::new();
    let mut defs: HashMap<u32, GateDef> = HashMap::new();
    let mut def_order: Vec<u32> = Vec::new();
    let mut is_input: Vec<bool> = Vec::new();
    let mut bytes_seen = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| ParseError::from(e).at_line(lineno))?;
        bytes_seen += line.len() + 1;
        if bytes_seen > MAX_BENCH_BYTES {
            return Err(ParseError::new(format!(
                "input exceeds {MAX_BENCH_BYTES} bytes (parser limit)"
            ))
            .at_line(lineno));
        }
        let text = match line.find('#') {
            Some(pos) => line[..pos].trim(),
            None => line.trim(),
        };
        if text.is_empty() {
            continue;
        }
        if let Some(eq) = text.find('=') {
            // Gate definition: `name = OP(args)`.
            let name = text[..eq].trim();
            let id = intern(&mut names, name, lineno)?;
            let (op_name, arg_names) = split_call(text[eq + 1..].trim(), lineno)?;
            let Some(op) = GateOp::parse(op_name) else {
                if op_name.to_ascii_uppercase().starts_with("DFF") {
                    return Err(ParseError::new(
                        "sequential element `DFF` — only combinational BENCH is supported",
                    )
                    .at_line(lineno));
                }
                return Err(ParseError::new(format!("unknown gate `{op_name}`")).at_line(lineno));
            };
            if !op.arity_ok(arg_names.len()) {
                return Err(ParseError::new(format!(
                    "gate `{op_name}` with {} fan-in(s) (limit {MAX_BENCH_FANIN})",
                    arg_names.len()
                ))
                .at_line(lineno));
            }
            let mut fanins = Vec::with_capacity(arg_names.len());
            for a in arg_names {
                fanins.push(intern(&mut names, a, lineno)?);
            }
            if defs.contains_key(&id) {
                return Err(
                    ParseError::new(format!("signal `{name}` defined twice")).at_line(lineno)
                );
            }
            defs.insert(
                id,
                GateDef {
                    op,
                    fanins,
                    line: lineno,
                },
            );
            def_order.push(id);
        } else {
            let (head, args) = split_call(text, lineno)?;
            let decl = head.to_ascii_uppercase();
            if args.len() != 1 {
                return Err(ParseError::new(format!(
                    "`{decl}` wants one signal, got {}",
                    args.len()
                ))
                .at_line(lineno));
            }
            let id = intern(&mut names, args[0], lineno)?;
            match decl.as_str() {
                "INPUT" => {
                    if is_input.len() <= id as usize {
                        is_input.resize(id as usize + 1, false);
                    }
                    if is_input[id as usize] {
                        return Err(
                            ParseError::new(format!("input `{}` declared twice", args[0]))
                                .at_line(lineno),
                        );
                    }
                    is_input[id as usize] = true;
                    inputs.push(id);
                }
                "OUTPUT" => outputs.push((id, lineno)),
                other => {
                    return Err(
                        ParseError::new(format!("unknown declaration `{other}`")).at_line(lineno)
                    )
                }
            }
        }
    }

    // Map signal ids to literals. Inputs first, then every definition in
    // file order, resolving out-of-order fan-ins through an explicit
    // worklist (no recursion: hostile chains must not blow the stack, and
    // cycles must be a ParseError, not a hang).
    let n_ids = names.len();
    let mut map: Vec<Option<Lit>> = vec![None; n_ids];
    let mut aig = Aig::new(inputs.len());
    for (k, &id) in inputs.iter().enumerate() {
        if defs.contains_key(&id) {
            return Err(ParseError::new(format!(
                "signal id {id} is both an INPUT and a gate"
            )));
        }
        map[id as usize] = Some(Lit::new(k as u32 + 1, false));
    }
    let mut in_progress = vec![false; n_ids];
    for &root in &def_order {
        if map[root as usize].is_some() {
            continue;
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if map[id as usize].is_some() {
                continue;
            }
            let def = defs
                .get(&id)
                .ok_or_else(|| ParseError::new(format!("undefined signal id {id}")))?;
            if expanded {
                let fan: Vec<Lit> = def
                    .fanins
                    .iter()
                    .map(|&f| map[f as usize].expect("fanin resolved"))
                    .collect();
                let lit = match def.op {
                    GateOp::And => aig.and_many(&fan),
                    GateOp::Nand => !aig.and_many(&fan),
                    GateOp::Or => aig.or_many(&fan),
                    GateOp::Nor => !aig.or_many(&fan),
                    GateOp::Xor => aig.xor_many(&fan),
                    GateOp::Xnor => !aig.xor_many(&fan),
                    GateOp::Not => !fan[0],
                    GateOp::Buff => fan[0],
                };
                map[id as usize] = Some(lit);
                in_progress[id as usize] = false;
                continue;
            }
            if in_progress[id as usize] {
                return Err(
                    ParseError::new(format!("cyclic definition through signal id {id}"))
                        .at_line(def.line),
                );
            }
            in_progress[id as usize] = true;
            stack.push((id, true));
            for &f in &def.fanins {
                if map[f as usize].is_none() {
                    if !defs.contains_key(&f) {
                        return Err(ParseError::new(format!(
                            "fan-in id {f} is neither an INPUT nor defined"
                        ))
                        .at_line(def.line));
                    }
                    stack.push((f, false));
                }
            }
        }
    }

    for (id, lineno) in outputs {
        let lit = map[id as usize].ok_or_else(|| {
            ParseError::new(format!("OUTPUT of undefined signal id {id}")).at_line(lineno)
        })?;
        aig.add_output(lit);
    }
    Ok(aig)
}

/// Writes the AIG as a combinational `.bench` netlist. Pass `&mut writer`
/// to retain ownership. See the [module docs](self) for the name scheme and
/// the round-trip guarantee.
///
/// # Errors
///
/// Propagates I/O errors; a constant output on a zero-input graph is
/// `InvalidInput` (BENCH has no constant literal to express it with).
pub fn write_bench<W: Write>(aig: &Aig, mut w: W) -> std::io::Result<()> {
    let ni = aig.num_inputs();
    for i in 0..ni {
        writeln!(w, "INPUT(i{i})")?;
    }
    for j in 0..aig.outputs().len() {
        writeln!(w, "OUTPUT(po{j})")?;
    }
    // Positive-phase name of a node.
    let name_of = |n: u32| -> String {
        if n == 0 {
            unreachable!("constant fanins are folded at construction");
        } else if (n as usize) <= ni {
            format!("i{}", n - 1)
        } else {
            format!("n{n}")
        }
    };
    // NOT aliases are emitted lazily, once per complemented node.
    let mut negated: Vec<bool> = vec![false; aig.num_nodes()];
    let edge = |w: &mut W, l: Lit, negated: &mut Vec<bool>| -> std::io::Result<String> {
        let base = name_of(l.node());
        if !l.is_complemented() {
            return Ok(base);
        }
        if !negated[l.node() as usize] {
            writeln!(w, "{base}_b = NOT({base})")?;
            negated[l.node() as usize] = true;
        }
        Ok(format!("{base}_b"))
    };
    for n in (ni + 1)..aig.num_nodes() {
        let (f0, f1) = aig.fanins(n as u32);
        let a = edge(&mut w, f0, &mut negated)?;
        let b = edge(&mut w, f1, &mut negated)?;
        writeln!(w, "n{n} = AND({a}, {b})")?;
    }
    for (j, &o) in aig.outputs().iter().enumerate() {
        if o.node() == 0 {
            // Constant outputs: XNOR(x, x) = 1, XOR(x, x) = 0.
            if ni == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "constant output on a zero-input graph has no BENCH form",
                ));
            }
            let op = if o == Lit::TRUE { "XNOR" } else { "XOR" };
            writeln!(w, "po{j} = {op}(i0, i0)")?;
        } else {
            let base = name_of(o.node());
            let op = if o.is_complemented() { "NOT" } else { "BUFF" };
            writeln!(w, "po{j} = {op}({base})")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.xor(a, b);
        let f = g.mux(c, x, !a);
        g.add_output(f);
        g.add_output(!x);
        g
    }

    #[test]
    fn roundtrip_is_structurally_identical() {
        let g = sample_aig();
        let mut buf = Vec::new();
        write_bench(&g, &mut buf).expect("write");
        let h = read_bench(buf.as_slice()).expect("read");
        assert_eq!(h.num_inputs(), g.num_inputs());
        assert_eq!(h.outputs().len(), g.outputs().len());
        assert_eq!(
            h.structural_fingerprint(),
            g.structural_fingerprint(),
            "round trip must reproduce the graph structurally"
        );
    }

    #[test]
    fn parses_handwritten_netlist_any_definition_order() {
        // `f` is defined before its fanin `c`; resolution must not care.
        let src = "\
# a comment
INPUT(a)
INPUT(b)
OUTPUT(f)
f = NAND(c, a)
c = OR(a, b)
";
        let g = read_bench(src.as_bytes()).expect("parse");
        assert_eq!(g.num_inputs(), 2);
        // f = !( (a|b) & a ) = !a.
        assert_eq!(g.eval(&[false, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn gate_zoo_evaluates_correctly() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
OUTPUT(z)
x = XNOR(a, b)
n = NOT(a)
y = NOR(n, b)
z = BUFF(n)
";
        let g = read_bench(src.as_bytes()).expect("parse");
        // x = a XNOR b, y = NOR(!a, b) = a & !b, z = !a.
        assert_eq!(g.eval(&[false, false]), vec![true, false, true]);
        assert_eq!(g.eval(&[true, false]), vec![false, true, false]);
        assert_eq!(g.eval(&[true, true]), vec![true, false, false]);
    }

    #[test]
    fn wide_gates_expand_to_and_trees() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(f)
f = AND(a, b, c, d)
";
        let g = read_bench(src.as_bytes()).expect("parse");
        assert_eq!(g.eval(&[true, true, true, true]), vec![true]);
        assert_eq!(g.eval(&[true, true, false, true]), vec![false]);
    }

    #[test]
    fn constant_outputs_roundtrip() {
        let mut g = Aig::new(2);
        g.add_output(Lit::TRUE);
        g.add_output(Lit::FALSE);
        g.add_output(g.input(1));
        let mut buf = Vec::new();
        write_bench(&g, &mut buf).expect("write");
        let h = read_bench(buf.as_slice()).expect("read");
        assert_eq!(h.eval(&[false, true]), vec![true, false, true]);
    }

    #[test]
    fn rejects_sequential_cycles_and_garbage() {
        let dff = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let err = read_bench(dff.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("DFF"), "{err}");

        let cyc = "INPUT(a)\nOUTPUT(x)\nx = AND(y, a)\ny = AND(x, a)\n";
        let err = read_bench(cyc.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("cyclic"), "{err}");

        assert!(read_bench("x = AND(a\n".as_bytes()).is_err());
        assert!(read_bench("OUTPUT(f)\n".as_bytes()).is_err());
        assert!(read_bench("INPUT(a)\nINPUT(a)\n".as_bytes()).is_err());
        assert!(read_bench("f = WIBBLE(a, b)\n".as_bytes()).is_err());
        // Garbage without structure parses to an empty graph or errors,
        // never panics (the fuzz test drives this much harder).
        let _ = read_bench("%%% total nonsense %%%".as_bytes());
    }

    #[test]
    fn arity_violations_are_structured_errors() {
        assert!(read_bench("INPUT(a)\nf = NOT(a, a)\n".as_bytes()).is_err());
        assert!(read_bench("INPUT(a)\nf = AND(a)\n".as_bytes()).is_err());
        let many = (0..MAX_BENCH_FANIN + 1)
            .map(|_| "a")
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!("INPUT(a)\nf = AND({many})\n");
        assert!(read_bench(src.as_bytes()).is_err());
    }

    #[test]
    fn undefined_fanin_is_an_error() {
        let src = "INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n";
        let err = read_bench(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");
    }
}
