//! Hashing primitives for the engine's hot paths.
//!
//! Two things live here:
//!
//! * [`FNV_OFFSET`] / [`fnv1a_mix`] — the one FNV-1a mixing step behind
//!   every stable fingerprint in the tree (structural graph fingerprints,
//!   pass/pipeline fingerprints, the sweep's signature-bucket hashes, the
//!   compile cache's budget fingerprints in `lsml-core`);
//! * `FxHasher` — a multiply-rotate map hasher (rustc's FxHash recipe) for
//!   the crate's hot maps. The structural hash, the rewrite pass's
//!   table → entry cache, and the sweep's buckets all probe maps millions
//!   of times per compile with small fixed-width keys; `std`'s default
//!   SipHash is DoS-resistant but costs more than the probe itself there,
//!   and none of these maps ever see attacker-controlled keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a mixing step over a 64-bit value.
#[inline]
pub fn fnv1a_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Multiply-rotate hasher: `h = (rotl(h, 5) ^ v) * K` per written word.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), u64::from(i) << 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&(u64::from(i) << 3)));
        }
        assert_eq!(m.get(&(1000, 7000)), None);
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = h.finish();
        assert_ne!(a, b);
    }
}
