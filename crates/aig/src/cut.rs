//! K-feasible cut enumeration with truth-table computation (k ≤ 4).
//!
//! A *cut* of node `n` is a set of nodes (the *leaves*) such that every path
//! from a primary input to `n` passes through a leaf. Cuts are the unit of
//! local resynthesis: the cone between the leaves and `n` computes a Boolean
//! function of at most `k` variables, recorded here as a 16-bit truth table,
//! and DAG-aware rewriting ([`crate::rewrite`]) replaces that cone with a
//! precomputed optimal structure for the function's NPN class.
//!
//! Enumeration is the standard bottom-up cross product (ABC's cut sweep):
//! node indices are already topological (the graph is append-only), so one
//! ascending scan merges the fanins' cut sets. Cut sets are capped per node
//! (priority cuts) and filtered for duplicates and dominated cuts. Truth
//! tables are *normalized*: a leaf the function does not actually depend on
//! is dropped, which both shrinks the cut and exposes redundant cones
//! (`f = leaf`, `f = const`) to the rewriter.

use crate::aig::Aig;

/// Maximum number of leaves per cut.
pub const MAX_LEAVES: usize = 4;

/// Truth table of variable `i` in a 4-variable table.
const VAR_TT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// One k-feasible cut: sorted leaf node ids plus the cone's function as a
/// 4-variable truth table (leaf `i` = variable `i`; variables at or above
/// [`Cut::len`] are don't-cares the table provably does not depend on).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cut {
    leaves: [u32; MAX_LEAVES],
    len: u8,
    /// The cone's function over the leaves.
    pub tt: u16,
}

impl Cut {
    /// The trivial cut `{n}` with function `f = leaf0`.
    pub fn trivial(n: u32) -> Cut {
        Cut {
            leaves: [n, 0, 0, 0],
            len: 1,
            tt: VAR_TT[0],
        }
    }

    /// The sorted leaf node ids.
    #[inline]
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the cut has no leaves (the cone is a constant function).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every leaf of `self` is also a leaf of `other`.
    fn dominates(&self, other: &Cut) -> bool {
        self.leaves().iter().all(|l| other.leaves().contains(l))
    }

    /// Drops leaves the truth table does not depend on, compacting both the
    /// leaf array and the table.
    fn normalize(&mut self) {
        let mut v = 0usize;
        while v < self.len as usize {
            let hi = cofactor1(self.tt, v);
            let lo = cofactor0(self.tt, v);
            if hi == lo {
                // Remove variable v: shift higher variables down.
                self.tt = lo;
                for i in v..self.len as usize - 1 {
                    self.leaves[i] = self.leaves[i + 1];
                    self.tt = swap_down(self.tt, i);
                }
                self.len -= 1;
            } else {
                v += 1;
            }
        }
        for i in self.len as usize..MAX_LEAVES {
            self.leaves[i] = 0;
        }
    }
}

/// Negative cofactor of `tt` with respect to variable `v` (the result no
/// longer depends on `v`).
pub(crate) fn cofactor0(tt: u16, v: usize) -> u16 {
    let lo = tt & !VAR_TT[v];
    lo | (lo << (1 << v))
}

/// Positive cofactor of `tt` with respect to variable `v`.
pub(crate) fn cofactor1(tt: u16, v: usize) -> u16 {
    let hi = tt & VAR_TT[v];
    hi | (hi >> (1 << v))
}

/// Swaps adjacent variables `v` and `v + 1` in the truth table — the
/// primitive out of which every permutation is composed.
fn swap_down(tt: u16, v: usize) -> u16 {
    debug_assert!(v < 3);
    let shift = 1 << v;
    // Bits where var v = 1 and var v+1 = 0 move up; the mirror bits move
    // down.  Masks for the four (v, v+1) value combinations:
    let a = VAR_TT[v] & !VAR_TT[v + 1]; // v=1, v+1=0
    let b = !VAR_TT[v] & VAR_TT[v + 1]; // v=0, v+1=1
    (tt & !(a | b)) | ((tt & a) << shift) | ((tt & b) >> shift)
}

/// Re-expresses `tt` (over `from` leaves) over the `union` leaf set: every
/// variable of `from` is mapped to the position of the same leaf in `union`.
fn expand(tt: u16, from: &[u32], union: &[u32]) -> u16 {
    let mut pos = [0usize; MAX_LEAVES];
    for (i, leaf) in from.iter().enumerate() {
        pos[i] = union.iter().position(|u| u == leaf).expect("leaf in union");
    }
    let mut out = 0u16;
    for m in 0..16u16 {
        let mut idx = 0u16;
        for (i, &p) in pos.iter().enumerate().take(from.len()) {
            idx |= ((m >> p) & 1) << i;
        }
        out |= ((tt >> idx) & 1) << m;
    }
    out
}

/// Merges two fanin cuts into a cut of the AND node, or `None` when the leaf
/// union exceeds [`MAX_LEAVES`]. `c0_compl`/`c1_compl` are the fanin edge
/// complements.
fn merge(c0: &Cut, c0_compl: bool, c1: &Cut, c1_compl: bool) -> Option<Cut> {
    let mut union = [0u32; MAX_LEAVES];
    let mut len = 0usize;
    let (l0, l1) = (c0.leaves(), c1.leaves());
    let (mut i, mut j) = (0usize, 0usize);
    while i < l0.len() || j < l1.len() {
        let next = match (l0.get(i), l1.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
                a
            }
            (Some(&a), Some(&b)) if a < b => {
                i += 1;
                a
            }
            (Some(_), Some(&b)) => {
                j += 1;
                b
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => unreachable!(),
        };
        if len == MAX_LEAVES {
            return None;
        }
        union[len] = next;
        len += 1;
    }
    let t0 = expand(c0.tt, l0, &union[..len]) ^ if c0_compl { 0xFFFF } else { 0 };
    let t1 = expand(c1.tt, l1, &union[..len]) ^ if c1_compl { 0xFFFF } else { 0 };
    let mut cut = Cut {
        leaves: union,
        len: len as u8,
        tt: t0 & t1,
    };
    cut.normalize();
    Some(cut)
}

/// Enumerates up to `max_cuts` cuts per node (the trivial cut included) for
/// every node of the graph, indexed by node id. Constants and primary
/// inputs carry only their trivial cut.
pub fn enumerate_cuts(aig: &Aig, max_cuts: usize) -> Vec<Vec<Cut>> {
    let max_cuts = max_cuts.max(2);
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    for n in 0..aig.num_nodes() as u32 {
        if !aig.is_and(n) {
            cuts.push(vec![Cut::trivial(n)]);
            continue;
        }
        let (f0, f1) = aig.fanins(n);
        let mut set: Vec<Cut> = Vec::with_capacity(max_cuts);
        'merge: for c0 in &cuts[f0.node() as usize] {
            for c1 in &cuts[f1.node() as usize] {
                let Some(cut) = merge(c0, f0.is_complemented(), c1, f1.is_complemented()) else {
                    continue;
                };
                // Drop duplicates and dominated cuts; a new cut that is
                // dominated by an existing one is itself dropped.
                if set.iter().any(|c| c.dominates(&cut)) {
                    continue;
                }
                set.retain(|c| !cut.dominates(c));
                set.push(cut);
                if set.len() >= max_cuts - 1 {
                    break 'merge;
                }
            }
        }
        set.push(Cut::trivial(n));
        cuts.push(set);
    }
    cuts
}

/// Evaluates a cut's truth table on one assignment of its leaves (used by
/// tests and debug assertions).
pub fn eval_cut(cut: &Cut, leaf_values: &[bool]) -> bool {
    assert_eq!(leaf_values.len(), cut.len());
    let mut idx = 0u16;
    for (i, &v) in leaf_values.iter().enumerate() {
        idx |= u16::from(v) << i;
    }
    (cut.tt >> idx) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks every cut of every node against scalar evaluation.
    fn check_all_cuts(g: &Aig) {
        let ni = g.num_inputs();
        let cuts = enumerate_cuts(g, 8);
        for m in 0..(1u64 << ni) {
            let bits: Vec<bool> = (0..ni).map(|i| (m >> i) & 1 == 1).collect();
            // Node values via the public eval path: re-derive by walking.
            let mut values = vec![false; g.num_nodes()];
            for (i, &b) in bits.iter().enumerate() {
                values[i + 1] = b;
            }
            for n in (ni + 1)..g.num_nodes() {
                let (f0, f1) = g.fanins(n as u32);
                let v0 = values[f0.node() as usize] ^ f0.is_complemented();
                let v1 = values[f1.node() as usize] ^ f1.is_complemented();
                values[n] = v0 && v1;
            }
            for n in 0..g.num_nodes() {
                for cut in &cuts[n] {
                    let leaf_values: Vec<bool> =
                        cut.leaves().iter().map(|&l| values[l as usize]).collect();
                    assert_eq!(
                        eval_cut(cut, &leaf_values),
                        values[n],
                        "cut {cut:?} of node {n} wrong on input {m:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cut_truth_tables_match_simulation() {
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let x = g.xor(ins[0], ins[1]);
        let y = g.mux(ins[2], x, ins[3]);
        let z = g.and(y, !x);
        g.add_output(z);
        check_all_cuts(&g);
    }

    #[test]
    fn parity_cuts() {
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let p = g.xor_many(&ins);
        g.add_output(p);
        check_all_cuts(&g);
        // The root *node* must own a 4-leaf cut computing parity (possibly
        // complemented, when the output literal is a complemented edge).
        let cuts = enumerate_cuts(&g, 8);
        let root = p.node() as usize;
        let parity_cut = cuts[root]
            .iter()
            .find(|c| c.leaves() == [1, 2, 3, 4])
            .expect("4-input cut");
        let expect = 0x6996u16 ^ if p.is_complemented() { 0xFFFF } else { 0 };
        assert_eq!(parity_cut.tt, expect);
    }

    #[test]
    fn redundant_leaves_are_dropped() {
        // f = (a AND b) OR (a AND !b) = a: the 2-leaf cut normalizes to {a}.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let t0 = g.and(a, b);
        // Build the redundant form around strash: two distinct AND nodes.
        let t1 = g.and(a, !b);
        let f = g.or(t0, t1);
        g.add_output(f);
        let cuts = enumerate_cuts(&g, 8);
        let root_cuts = &cuts[f.node() as usize];
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [a.node()]),
            "expected a 1-leaf cut {{a}}, got {root_cuts:?}"
        );
        check_all_cuts(&g);
    }

    #[test]
    fn leaves_stay_sorted_and_capped() {
        let mut g = Aig::new(8);
        let ins = g.inputs();
        let f = g.and_many(&ins);
        g.add_output(f);
        for set in enumerate_cuts(&g, 6) {
            assert!(set.len() <= 6);
            for cut in &set {
                assert!(cut.len() <= MAX_LEAVES);
                assert!(cut.leaves().windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn cofactor_and_swap_primitives() {
        // tt = x0 XOR x2 as a 4-var table.
        let tt = VAR_TT[0] ^ VAR_TT[2];
        assert_eq!(cofactor0(tt, 0), VAR_TT[2]);
        assert_eq!(cofactor1(tt, 0), !VAR_TT[2]);
        // Swapping vars 0 and 1 turns x0^x2 into x1^x2.
        assert_eq!(swap_down(tt, 0), VAR_TT[1] ^ VAR_TT[2]);
        // Swap is an involution.
        for v in 0..3 {
            assert_eq!(swap_down(swap_down(0x1234, v), v), 0x1234);
        }
    }
}
