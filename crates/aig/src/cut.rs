//! K-feasible cut enumeration with truth-table computation (k ≤ 6).
//!
//! A *cut* of node `n` is a set of nodes (the *leaves*) such that every path
//! from a primary input to `n` passes through a leaf. Cuts are the unit of
//! local resynthesis: the cone between the leaves and `n` computes a Boolean
//! function of at most `k` variables, recorded here as a 64-bit truth table,
//! and DAG-aware rewriting ([`crate::rewrite`]) replaces that cone with a
//! precomputed structure for the function's NPN class.
//!
//! Enumeration is the standard bottom-up cross product (ABC's cut sweep):
//! node indices are already topological (the graph is append-only), so one
//! ascending scan merges the fanins' cut sets. Cut sets are capped per node
//! (priority cuts) and filtered for duplicates and dominated cuts. Truth
//! tables are *normalized*: a leaf the function does not actually depend on
//! is dropped, which both shrinks the cut and exposes redundant cones
//! (`f = leaf`, `f = const`) to the rewriter.
//!
//! # Wavefront parallelism
//!
//! When the pool has workers (gated by [`crate::par`], which also holds
//! the consolidated `LSML_*` runtime-knob table), large graphs enumerate
//! level by level: each level's nodes fan out in fixed chunks, every
//! chunk reads only cut sets at strictly lower levels, and the results
//! commit in node-id order — reproducing the serial CSR buffers **byte
//! for byte** (asserted by this module's tests and the `par_props`
//! proptests).
//!
//! # Priority-cut data layout
//!
//! The hot path stores cut sets in a per-pass bump arena ([`CutArena`])
//! instead of per-node `Vec<Cut>`s. The arena is two flat buffers plus a CSR
//! index:
//!
//! * **`leaf_buf`** — every cut's sorted leaf ids, back to back; cut `c`
//!   owns `leaf_buf[starts[c] .. starts[c] + lens[c]]`;
//! * **`tts`** — one 64-bit truth word per cut, parallel to `starts`/`lens`;
//! * **`node_off`** — `node_off[n] .. node_off[n + 1]` is node `n`'s cut
//!   range in the cut arrays (ascending node order, trivial cut last).
//!
//! One [`CutArena::enumerate`] call performs exactly three buffer growths in
//! the steady state (the buffers are retained across passes via the rewrite
//! scratch free list), and dominance filtering runs in-place on a small
//! fixed-capacity candidate scratch before each node's set is committed to
//! the arena. Truth tables are always stored *vacuous-extended*: variables
//! at or above the cut's leaf count are don't-cares, so the low `2^len` bits
//! replicate through all 64. That invariant is what lets the merge step remap
//! a fanin table onto the union leaf set with a handful of bitwise
//! adjacent-variable swaps ([`insert_vacuous`]) instead of a per-minterm
//! rebuild.
//!
//! The pre-arena `Vec<Vec<Cut>>` enumeration is retained, behaviorally
//! identical, as [`enumerate_cuts`] / [`enumerate_cuts_k`] — the
//! differential-test oracle for the arena (see `tests/cut_npn_props.rs`).

use crate::aig::Aig;

/// Maximum number of leaves per cut.
pub const MAX_LEAVES: usize = 6;

/// Truth table of variable `i` in a 6-variable table (shared with
/// [`crate::npn`]'s canonizers).
pub(crate) const VAR_TT: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// One k-feasible cut: sorted leaf node ids plus the cone's function as a
/// 6-variable truth table (leaf `i` = variable `i`; variables at or above
/// [`Cut::len`] are don't-cares the table provably does not depend on, so
/// the low `2^len` bits replicate through the full word).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cut {
    leaves: [u32; MAX_LEAVES],
    len: u8,
    /// The cone's function over the leaves.
    pub tt: u64,
}

impl Cut {
    /// The trivial cut `{n}` with function `f = leaf0`.
    pub fn trivial(n: u32) -> Cut {
        Cut {
            leaves: [n, 0, 0, 0, 0, 0],
            len: 1,
            tt: VAR_TT[0],
        }
    }

    /// A cut from explicit parts (used by the arena's views and tests).
    pub fn from_parts(leaves: &[u32], tt: u64) -> Cut {
        assert!(leaves.len() <= MAX_LEAVES, "too many leaves");
        let mut arr = [0u32; MAX_LEAVES];
        arr[..leaves.len()].copy_from_slice(leaves);
        Cut {
            leaves: arr,
            len: leaves.len() as u8,
            tt,
        }
    }

    /// The sorted leaf node ids.
    #[inline]
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the cut has no leaves (the cone is a constant function).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every leaf of `self` is also a leaf of `other` (two-pointer
    /// subset walk — both leaf lists are sorted).
    fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len {
            return false;
        }
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0usize;
        for &l in a {
            while j < b.len() && b[j] < l {
                j += 1;
            }
            if j == b.len() || b[j] != l {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Drops leaves the truth table does not depend on, compacting both the
    /// leaf array and the table.
    fn normalize(&mut self) {
        let mut v = 0usize;
        while v < self.len as usize {
            let hi = cofactor1(self.tt, v);
            let lo = cofactor0(self.tt, v);
            if hi == lo {
                // Remove variable v: shift higher variables down.
                self.tt = lo;
                for i in v..self.len as usize - 1 {
                    self.leaves[i] = self.leaves[i + 1];
                    self.tt = swap_down(self.tt, i);
                }
                self.len -= 1;
            } else {
                v += 1;
            }
        }
        for i in self.len as usize..MAX_LEAVES {
            self.leaves[i] = 0;
        }
    }
}

/// Negative cofactor of `tt` with respect to variable `v` (the result no
/// longer depends on `v`).
pub(crate) fn cofactor0(tt: u64, v: usize) -> u64 {
    let lo = tt & !VAR_TT[v];
    lo | (lo << (1 << v))
}

/// Positive cofactor of `tt` with respect to variable `v`.
pub(crate) fn cofactor1(tt: u64, v: usize) -> u64 {
    let hi = tt & VAR_TT[v];
    hi | (hi >> (1 << v))
}

/// Swaps adjacent variables `v` and `v + 1` in the truth table — the
/// primitive out of which every permutation is composed.
pub(crate) fn swap_down(tt: u64, v: usize) -> u64 {
    debug_assert!(v < MAX_LEAVES - 1);
    let shift = 1 << v;
    // Bits where var v = 1 and var v+1 = 0 move up; the mirror bits move
    // down.  Masks for the four (v, v+1) value combinations:
    let a = VAR_TT[v] & !VAR_TT[v + 1]; // v=1, v+1=0
    let b = !VAR_TT[v] & VAR_TT[v + 1]; // v=0, v+1=1
    (tt & !(a | b)) | ((tt & a) << shift) | ((tt & b) >> shift)
}

/// Swaps arbitrary variables `a < b` via one delta swap (a table position
/// with bit `a` set and bit `b` clear trades places with its mirror).
/// The NPN lane walk inlines this per-chunk (shared masks across lanes);
/// kept as the reference primitive for the swap-chain tests.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn swap_vars(tt: u64, a: usize, b: usize) -> u64 {
    debug_assert!(a < b && b < MAX_LEAVES);
    let shift = (1usize << b) - (1usize << a);
    let up = VAR_TT[a] & !VAR_TT[b]; // a=1, b=0 moves up
    let down = !VAR_TT[a] & VAR_TT[b]; // a=0, b=1 moves down
    (tt & !(up | down)) | ((tt & up) << shift) | ((tt & down) >> shift)
}

/// Complements variable `v` (the table of `f(.., !x_v, ..)`).
pub(crate) fn flip_var(tt: u64, v: usize) -> u64 {
    let shift = 1 << v;
    ((tt & VAR_TT[v]) >> shift) | ((tt & !VAR_TT[v]) << shift)
}

/// Inserts a vacuous (don't-care) variable at position `p` of a table whose
/// active width (mapped variables so far) is `active`, shifting every
/// variable in `p..active` one position up. Requires the table to be
/// vacuous-extended above `active` (every stored cut table is): the
/// rotation brings the vacuous variable at `active` down to `p` via
/// adjacent swaps, and swaps entirely above `active` would be no-ops, so
/// they are skipped.
fn insert_vacuous(tt: u64, p: usize, active: usize) -> u64 {
    let mut t = tt;
    for v in (p..active.min(MAX_LEAVES - 1)).rev() {
        t = swap_down(t, v);
    }
    t
}

/// Re-expresses `tt` (over `from` leaves) over the `union` leaf set. `from`
/// is always a sorted subsequence of `union` (the merge step unions sorted
/// leaf lists), so the remap is a left-to-right walk inserting one vacuous
/// variable per union position missing from `from`.
fn expand(tt: u64, from: &[u32], union: &[u32]) -> u64 {
    let mut out = tt;
    let mut j = 0usize;
    let mut active = from.len();
    for (p, &u) in union.iter().enumerate() {
        if j < from.len() && from[j] == u {
            j += 1;
        } else {
            out = insert_vacuous(out, p, active);
            active += 1;
        }
    }
    debug_assert_eq!(j, from.len(), "from is not a subsequence of union");
    out
}

/// Merges two fanin cuts (leaf slices + vacuous-extended truth words) into
/// a cut of the AND node, or `None` when the leaf union exceeds `k`.
/// `c0_compl`/`c1_compl` are the fanin edge complements.
fn merge_parts(
    l0: &[u32],
    t0: u64,
    c0_compl: bool,
    l1: &[u32],
    t1: u64,
    c1_compl: bool,
    k: usize,
) -> Option<Cut> {
    let mut union = [0u32; MAX_LEAVES];
    let mut len = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < l0.len() || j < l1.len() {
        let next = match (l0.get(i), l1.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
                a
            }
            (Some(&a), Some(&b)) if a < b => {
                i += 1;
                a
            }
            (Some(_), Some(&b)) => {
                j += 1;
                b
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => unreachable!(),
        };
        if len == k {
            return None;
        }
        union[len] = next;
        len += 1;
    }
    let t0 = expand(t0, l0, &union[..len]) ^ if c0_compl { u64::MAX } else { 0 };
    let t1 = expand(t1, l1, &union[..len]) ^ if c1_compl { u64::MAX } else { 0 };
    let mut cut = Cut {
        leaves: union,
        len: len as u8,
        tt: t0 & t1,
    };
    cut.normalize();
    Some(cut)
}

/// Minimum nodes above the reused prefix before [`CutArena::enumerate`]
/// takes the wavefront-parallel path — below this the level pass and side
/// table cost more than the serial loop.
const PAR_ENUM_MIN_NODES: usize = 256;

/// Minimum nodes per wavefront chunk (amortizes the per-chunk spawn).
const PAR_ENUM_MIN_CHUNK: usize = 32;

/// A borrowed fanin cut list for [`merge_fanin_cuts`]: either a committed
/// CSR range of the arena (serial path and reused-prefix reads) or a fresh
/// per-node vector produced by a wavefront chunk that has not been
/// committed yet.
#[derive(Copy, Clone)]
enum CutListRef<'a> {
    Csr {
        arena: &'a CutArena,
        range: (usize, usize),
    },
    Slice(&'a [Cut]),
}

impl<'a> CutListRef<'a> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            CutListRef::Csr { range, .. } => range.1 - range.0,
            CutListRef::Slice(cuts) => cuts.len(),
        }
    }

    /// Leaf slice and truth word of the `i`-th cut.
    #[inline]
    fn get(&self, i: usize) -> (&'a [u32], u64) {
        match self {
            CutListRef::Csr { arena, range } => {
                let c = range.0 + i;
                let s = arena.starts[c] as usize;
                (&arena.leaf_buf[s..s + arena.lens[c] as usize], arena.tts[c])
            }
            CutListRef::Slice(cuts) => (cuts[i].leaves(), cuts[i].tt),
        }
    }
}

/// Shared merge core of the serial and wavefront enumeration paths: fills
/// `cand` (cleared first) with the dominance-filtered pairwise merges of
/// the two fanin cut lists, capped at `cfg.max_cuts - 1` (the caller
/// appends the trivial cut). Iteration order matches the original serial
/// loop exactly, so the resulting cut set — and therefore the CSR bytes —
/// are identical no matter which path ran.
fn merge_fanin_cuts(
    l0: CutListRef<'_>,
    c0_compl: bool,
    l1: CutListRef<'_>,
    c1_compl: bool,
    cfg: &CutConfig,
    cand: &mut Vec<Cut>,
) {
    cand.clear();
    'merge: for i0 in 0..l0.len() {
        let (v0, t0) = l0.get(i0);
        for i1 in 0..l1.len() {
            let (v1, t1) = l1.get(i1);
            let Some(cut) = merge_parts(v0, t0, c0_compl, v1, t1, c1_compl, cfg.k) else {
                continue;
            };
            // Drop duplicates and dominated cuts; a new cut that is
            // dominated by an existing one is itself dropped.
            if cand.iter().any(|c| c.dominates(&cut)) {
                continue;
            }
            cand.retain(|c| !cut.dominates(c));
            cand.push(cut);
            if cand.len() >= cfg.max_cuts - 1 {
                break 'merge;
            }
        }
    }
}

/// [`merge_parts`] over owned [`Cut`]s (the reference enumeration).
fn merge(c0: &Cut, c0_compl: bool, c1: &Cut, c1_compl: bool, k: usize) -> Option<Cut> {
    merge_parts(
        c0.leaves(),
        c0.tt,
        c0_compl,
        c1.leaves(),
        c1.tt,
        c1_compl,
        k,
    )
}

/// Configuration for cut enumeration.
#[derive(Copy, Clone, Debug)]
pub struct CutConfig {
    /// Maximum leaves per cut (clamped to `2..=MAX_LEAVES`).
    pub k: usize,
    /// Cuts kept per node, the trivial cut included (at least 2).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig { k: 4, max_cuts: 8 }
    }
}

impl CutConfig {
    fn clamped(self) -> CutConfig {
        CutConfig {
            k: self.k.clamp(2, MAX_LEAVES),
            max_cuts: self.max_cuts.max(2),
        }
    }
}

/// A borrowed view of one cut stored in a [`CutArena`].
#[derive(Copy, Clone, Debug)]
pub struct CutView<'a> {
    /// The sorted leaf node ids.
    pub leaves: &'a [u32],
    /// The cone's function over the leaves (vacuous-extended).
    pub tt: u64,
}

impl CutView<'_> {
    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the cut has no leaves (constant cone).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// An owned [`Cut`] copy (tests and the reference comparison).
    pub fn to_cut(&self) -> Cut {
        Cut::from_parts(self.leaves, self.tt)
    }
}

/// Per-pass bump arena holding every node's cut set in flat buffers — see
/// the module docs for the exact layout. Reusable across passes: buffers are
/// cleared, not freed, by [`CutArena::enumerate`].
#[derive(Default)]
pub struct CutArena {
    /// Flat leaf storage (all cuts back to back).
    leaf_buf: Vec<u32>,
    /// Truth word per cut.
    tts: Vec<u64>,
    /// Leaf-slice start per cut (into `leaf_buf`).
    starts: Vec<u32>,
    /// Leaf count per cut.
    lens: Vec<u8>,
    /// CSR offsets: node `n` owns cuts `node_off[n] .. node_off[n + 1]`.
    node_off: Vec<u32>,
    /// In-place dominance-filter scratch for the node under construction.
    cand: Vec<Cut>,
    /// Fanin snapshot of the last enumerated graph: `(f0.raw, f1.raw)` per
    /// AND node, `(u32::MAX, u32::MAX)` for the constant and the inputs.
    /// Drives the common-prefix check of the incremental path.
    prev_fanins: Vec<(u32, u32)>,
    /// Input count of the last enumerated graph.
    prev_num_inputs: usize,
    /// Clamped `(k, max_cuts)` of the last enumeration.
    prev_cfg: (usize, usize),
    /// Generation stamp per node: which [`CutArena::enumerate`] call last
    /// (re)computed the node's cut set. Reused prefix nodes keep their old
    /// stamp.
    node_gen: Vec<u32>,
    /// Monotone enumeration counter (the current generation).
    generation: u32,
    /// Nodes (constant and inputs included) whose cut sets survived from
    /// the previous call in the latest enumeration.
    reused_prefix: usize,
}

impl CutArena {
    /// An empty arena.
    pub fn new() -> CutArena {
        CutArena::default()
    }

    /// Snapshot of the raw CSR buffers, for the byte-identity assertions
    /// shared by this module's tests and the `crate::par_props` proptests:
    /// the wavefront path must reproduce the serial buffers verbatim, not
    /// just equivalent cut sets.
    #[cfg(test)]
    #[allow(clippy::type_complexity)]
    pub(crate) fn csr_bytes(&self) -> (Vec<u32>, Vec<u32>, Vec<u8>, Vec<u32>, Vec<u64>) {
        (
            self.node_off.clone(),
            self.starts.clone(),
            self.lens.clone(),
            self.leaf_buf.clone(),
            self.tts.clone(),
        )
    }

    /// Enumerates up to `cfg.max_cuts` cuts per node (the trivial cut
    /// included) for every node of the graph. Constants and primary inputs
    /// carry only their trivial cut. Buffers are reused.
    ///
    /// Enumeration is **incremental across calls**: a node's cut set
    /// depends only on its own fanins, the cut sets of lower-indexed nodes
    /// and the (clamped) configuration, so when the new graph shares a node
    /// prefix with the previously enumerated one — the common case when a
    /// candidate is a delta over the last compiled cone, or across rewrite
    /// iterations that only touch the top of the graph — the shared
    /// prefix's cut sets are kept verbatim (validated fanin pair by fanin
    /// pair against a stored snapshot) and enumeration restarts at the
    /// first divergence. Results are always identical to a from-scratch
    /// enumeration; reused nodes keep their [`CutArena::node_generation`]
    /// stamp.
    pub fn enumerate(&mut self, aig: &Aig, cfg: &CutConfig) {
        self.enumerate_with(aig, cfg, false);
    }

    /// [`CutArena::enumerate`] with the wavefront path forced on
    /// regardless of pool size or node count — test/differential hook
    /// pinning the byte-identity of the two paths without relying on the
    /// (process-latched) thread-pool size.
    pub(crate) fn enumerate_with(&mut self, aig: &Aig, cfg: &CutConfig, force_wavefront: bool) {
        let cfg = cfg.clamped();
        let n_nodes = aig.num_nodes();
        self.generation = self.generation.wrapping_add(1);

        // Longest common node prefix with the previous enumeration.
        let mut start = 0usize;
        if self.prev_num_inputs == aig.num_inputs() && self.prev_cfg == (cfg.k, cfg.max_cuts) {
            let lim = self.prev_fanins.len().min(n_nodes);
            while start < lim && self.prev_fanins[start] == fanin_snapshot(aig, start as u32) {
                start += 1;
            }
        }
        self.reused_prefix = start;
        if start == 0 {
            self.leaf_buf.clear();
            self.tts.clear();
            self.starts.clear();
            self.lens.clear();
            self.node_off.clear();
            self.node_gen.clear();
            self.node_off.reserve(n_nodes + 1);
            self.node_off.push(0);
        } else {
            // Truncate the CSR buffers to the reused prefix.
            let keep_cuts = self.node_off[start] as usize;
            let keep_leaves = if keep_cuts == self.starts.len() {
                self.leaf_buf.len()
            } else {
                self.starts[keep_cuts] as usize
            };
            self.leaf_buf.truncate(keep_leaves);
            self.tts.truncate(keep_cuts);
            self.starts.truncate(keep_cuts);
            self.lens.truncate(keep_cuts);
            self.node_off.truncate(start + 1);
            self.node_gen.truncate(start);
        }
        self.prev_fanins.truncate(start);
        self.prev_fanins
            .extend((start..n_nodes).map(|n| fanin_snapshot(aig, n as u32)));
        self.prev_num_inputs = aig.num_inputs();
        self.prev_cfg = (cfg.k, cfg.max_cuts);
        self.node_gen.resize(n_nodes, self.generation);

        // Wavefront fan-out pays off only when the pool has workers and
        // enough nodes need recomputing; otherwise the serial CSR loop is
        // strictly cheaper (no level pass, no side table). Both paths
        // produce byte-identical buffers — pinned by tests and proptests.
        if force_wavefront
            || (crate::par::effective_workers() > 1 && n_nodes - start >= PAR_ENUM_MIN_NODES)
        {
            self.enumerate_wavefront(aig, &cfg, start, n_nodes);
            return;
        }

        let mut cand = std::mem::take(&mut self.cand);
        for n in start as u32..n_nodes as u32 {
            if !aig.is_and(n) {
                self.push_cut(&Cut::trivial(n));
                self.node_off.push(self.tts.len() as u32);
                continue;
            }
            let (f0, f1) = aig.fanins(n);
            let l0 = CutListRef::Csr {
                arena: self,
                range: (
                    self.node_off[f0.node() as usize] as usize,
                    self.node_off[f0.node() as usize + 1] as usize,
                ),
            };
            let l1 = CutListRef::Csr {
                arena: self,
                range: (
                    self.node_off[f1.node() as usize] as usize,
                    self.node_off[f1.node() as usize + 1] as usize,
                ),
            };
            merge_fanin_cuts(
                l0,
                f0.is_complemented(),
                l1,
                f1.is_complemented(),
                &cfg,
                &mut cand,
            );
            cand.push(Cut::trivial(n));
            for c in &cand {
                self.push_cut(c);
            }
            self.node_off.push(self.tts.len() as u32);
        }
        self.cand = cand;
    }

    /// The wavefront-parallel body of [`CutArena::enumerate`]: nodes are
    /// bucketed by [`Aig::levels`] wavefront, each level's AND nodes fan
    /// out over the pool in fixed chunks (an AND's fanins sit at strictly
    /// lower levels, so chunks only read completed cut sets), and the
    /// per-node results are committed to the CSR buffers in node-id order —
    /// byte-identical to the serial loop for every partition, because each
    /// node's cut set is a pure function of its fanins' cut sets and the
    /// commit order is fixed.
    fn enumerate_wavefront(&mut self, aig: &Aig, cfg: &CutConfig, start: usize, n_nodes: usize) {
        use rayon::prelude::*;

        /// Where a node's cut set lives before the final CSR commit.
        enum NodeCuts {
            /// Not computed yet (an AND above the reused prefix whose
            /// level has not been processed).
            Pending,
            /// Already resident in the arena (reused-prefix node).
            Csr(usize, usize),
            /// Computed this call, waiting for commit.
            Fresh(Vec<Cut>),
        }

        let mut side: Vec<NodeCuts> = Vec::with_capacity(n_nodes);
        for n in 0..n_nodes as u32 {
            if (n as usize) < start {
                side.push(NodeCuts::Csr(
                    self.node_off[n as usize] as usize,
                    self.node_off[n as usize + 1] as usize,
                ));
            } else if !aig.is_and(n) {
                side.push(NodeCuts::Fresh(vec![Cut::trivial(n)]));
            } else {
                side.push(NodeCuts::Pending);
            }
        }

        // Level buckets for the nodes to (re)compute.
        let levels = aig.levels();
        let max_level = (start..n_nodes)
            .filter(|&n| aig.is_and(n as u32))
            .map(|n| levels[n] as usize)
            .max()
            .unwrap_or(0);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
        for n in start..n_nodes {
            if aig.is_and(n as u32) {
                buckets[levels[n] as usize].push(n as u32);
            }
        }

        fn fetch<'a>(arena: &'a CutArena, side: &'a [NodeCuts], n: u32) -> CutListRef<'a> {
            match &side[n as usize] {
                NodeCuts::Csr(lo, hi) => CutListRef::Csr {
                    arena,
                    range: (*lo, *hi),
                },
                NodeCuts::Fresh(cuts) => CutListRef::Slice(cuts),
                NodeCuts::Pending => unreachable!("fanin level not yet processed"),
            }
        }

        let arena: &CutArena = self;
        for bucket in buckets.iter().filter(|b| !b.is_empty()) {
            let chunk = crate::par::chunk_len(bucket.len(), PAR_ENUM_MIN_CHUNK);
            let chunks: Vec<&[u32]> = bucket.chunks(chunk).collect();
            let computed: Vec<Vec<(u32, Vec<Cut>)>> = chunks
                .par_iter()
                .map(|nodes| {
                    let mut out = Vec::with_capacity(nodes.len());
                    let mut cand: Vec<Cut> = Vec::new();
                    for &n in *nodes {
                        let (f0, f1) = aig.fanins(n);
                        merge_fanin_cuts(
                            fetch(arena, &side, f0.node()),
                            f0.is_complemented(),
                            fetch(arena, &side, f1.node()),
                            f1.is_complemented(),
                            cfg,
                            &mut cand,
                        );
                        cand.push(Cut::trivial(n));
                        out.push((n, cand.clone()));
                    }
                    out
                })
                .collect();
            for row in computed {
                for (n, cuts) in row {
                    side[n as usize] = NodeCuts::Fresh(cuts);
                }
            }
        }

        // Deterministic commit: node-id order, exactly like the serial loop.
        for entry in side.iter().take(n_nodes).skip(start) {
            match entry {
                NodeCuts::Fresh(cuts) => {
                    for c in cuts {
                        self.push_cut(c);
                    }
                }
                _ => unreachable!("every node above the prefix was computed"),
            }
            self.node_off.push(self.tts.len() as u32);
        }
    }

    /// The cut index range of node `n`.
    #[inline]
    fn range(&self, n: u32) -> std::ops::Range<usize> {
        self.node_off[n as usize] as usize..self.node_off[n as usize + 1] as usize
    }

    #[inline]
    fn view(&self, c: usize) -> CutView<'_> {
        let s = self.starts[c] as usize;
        CutView {
            leaves: &self.leaf_buf[s..s + self.lens[c] as usize],
            tt: self.tts[c],
        }
    }

    fn push_cut(&mut self, cut: &Cut) {
        self.starts.push(self.leaf_buf.len() as u32);
        self.lens.push(cut.len);
        self.leaf_buf.extend_from_slice(cut.leaves());
        self.tts.push(cut.tt);
    }

    /// Iterates the cuts of node `n` in enumeration order (trivial cut
    /// last).
    pub fn cuts(&self, n: u32) -> impl Iterator<Item = CutView<'_>> + '_ {
        self.range(n).map(move |c| self.view(c))
    }

    /// Total number of cuts stored.
    pub fn num_cuts(&self) -> usize {
        self.tts.len()
    }

    /// Number of nodes enumerated.
    pub fn num_nodes(&self) -> usize {
        self.node_off.len().saturating_sub(1)
    }

    /// The enumeration generation that last computed node `n`'s cut set
    /// (nodes reused across calls keep the stamp of the call that actually
    /// built them).
    #[inline]
    pub fn node_generation(&self, n: u32) -> u32 {
        self.node_gen[n as usize]
    }

    /// The current enumeration generation (increments per
    /// [`CutArena::enumerate`] call).
    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// How many leading nodes of the latest [`CutArena::enumerate`] call
    /// reused the previous call's cut sets (constant and inputs included).
    #[inline]
    pub fn reused_prefix(&self) -> usize {
        self.reused_prefix
    }

    /// Debug-mode verifier for the arena's CSR layout (see the module docs
    /// for the layout itself). Returns the first violation as a message.
    ///
    /// Checked invariants:
    ///
    /// * the cut arrays (`starts`/`lens`/`tts`) are parallel and the leaf
    ///   slices tile `leaf_buf` exactly (contiguous, in order, no gaps);
    /// * `node_off` is a well-formed CSR index: starts at 0, nondecreasing,
    ///   ends at the cut count, one nonempty range per node;
    /// * every node's last cut is its trivial cut `{n}` with table `x₀`;
    /// * every cut respects the clamped `k` of the last enumeration, has
    ///   strictly sorted in-range leaves, and its truth table is
    ///   vacuous-extended (no dependence on variables at or above the leaf
    ///   count);
    /// * the per-node generation stamps cover exactly the enumerated nodes.
    ///
    /// Runs in `O(cuts × k)`. The rewrite pass calls this after enumeration
    /// in debug builds and when `LSML_CHECK=1`.
    pub fn check_csr(&self) -> Result<(), String> {
        let n_cuts = self.tts.len();
        if self.starts.len() != n_cuts || self.lens.len() != n_cuts {
            return Err(format!(
                "cut arrays disagree: {} starts, {} lens, {n_cuts} tts",
                self.starts.len(),
                self.lens.len()
            ));
        }
        if self.node_off.is_empty() {
            return if n_cuts == 0 && self.leaf_buf.is_empty() && self.node_gen.is_empty() {
                Ok(())
            } else {
                Err("empty CSR index over non-empty cut arrays".to_string())
            };
        }
        let n_nodes = self.node_off.len() - 1;
        if self.node_off[0] != 0 {
            return Err(format!("node_off[0] = {}, want 0", self.node_off[0]));
        }
        if *self.node_off.last().unwrap() as usize != n_cuts {
            return Err(format!(
                "node_off ends at {} but {n_cuts} cuts are stored",
                self.node_off.last().unwrap()
            ));
        }
        if self.node_gen.len() != n_nodes {
            return Err(format!(
                "{} generation stamps for {n_nodes} nodes",
                self.node_gen.len()
            ));
        }
        // Leaf slices must tile `leaf_buf` back to back.
        let mut expect_start = 0usize;
        for c in 0..n_cuts {
            if self.starts[c] as usize != expect_start {
                return Err(format!(
                    "cut {c} starts at {} but the previous cut ends at {expect_start}",
                    self.starts[c]
                ));
            }
            expect_start += self.lens[c] as usize;
        }
        if expect_start != self.leaf_buf.len() {
            return Err(format!(
                "cuts cover {expect_start} leaf slots of {}",
                self.leaf_buf.len()
            ));
        }
        let k = if self.prev_cfg.0 == 0 {
            MAX_LEAVES
        } else {
            self.prev_cfg.0
        };
        for n in 0..n_nodes {
            let range = self.range(n as u32);
            if range.is_empty() {
                return Err(format!("node {n} has no cuts (not even trivial)"));
            }
            if range.end < range.start || range.end > n_cuts {
                return Err(format!(
                    "node {n} cut range {}..{} is malformed",
                    range.start, range.end
                ));
            }
            let last = self.view(range.end - 1);
            if last.leaves != [n as u32] || last.tt != VAR_TT[0] {
                return Err(format!(
                    "node {n}'s last cut is {:?}/{:#x}, want the trivial cut",
                    last.leaves, last.tt
                ));
            }
            for c in range {
                let v = self.view(c);
                if v.len() > k {
                    return Err(format!(
                        "cut {c} of node {n} has {} leaves, clamped k is {k}",
                        v.len()
                    ));
                }
                if !v.leaves.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!(
                        "cut {c} of node {n} leaves not strictly sorted: {:?}",
                        v.leaves
                    ));
                }
                if let Some(&l) = v.leaves.iter().find(|&&l| l as usize >= n_nodes) {
                    return Err(format!(
                        "cut {c} of node {n} has out-of-range leaf {l} (of {n_nodes} nodes)"
                    ));
                }
                for var in v.len()..MAX_LEAVES {
                    if cofactor0(v.tt, var) != v.tt {
                        return Err(format!(
                            "cut {c} of node {n} ({} leaves) depends on variable {var}: \
                             table {:#x} is not vacuous-extended",
                            v.len(),
                            v.tt
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The per-node fanin snapshot used by the incremental prefix check: raw
/// fanin literals for an AND, a sentinel for the constant and the inputs.
#[inline]
fn fanin_snapshot(aig: &Aig, n: u32) -> (u32, u32) {
    if aig.is_and(n) {
        let (f0, f1) = aig.fanins(n);
        (f0.raw(), f1.raw())
    } else {
        (u32::MAX, u32::MAX)
    }
}

/// Reference enumeration returning per-node `Vec<Cut>`s — behaviorally
/// identical to [`CutArena::enumerate`] (same merge order, dominance
/// filtering and caps) but allocation-heavy. Kept as the differential-test
/// oracle; hot paths use the arena.
#[doc(hidden)]
pub fn enumerate_cuts_k(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    let cfg = CutConfig { k, max_cuts }.clamped();
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    for n in 0..aig.num_nodes() as u32 {
        if !aig.is_and(n) {
            cuts.push(vec![Cut::trivial(n)]);
            continue;
        }
        let (f0, f1) = aig.fanins(n);
        let mut set: Vec<Cut> = Vec::with_capacity(cfg.max_cuts);
        'merge: for c0 in &cuts[f0.node() as usize] {
            for c1 in &cuts[f1.node() as usize] {
                let Some(cut) = merge(c0, f0.is_complemented(), c1, f1.is_complemented(), cfg.k)
                else {
                    continue;
                };
                if set.iter().any(|c| c.dominates(&cut)) {
                    continue;
                }
                set.retain(|c| !cut.dominates(c));
                set.push(cut);
                if set.len() >= cfg.max_cuts - 1 {
                    break 'merge;
                }
            }
        }
        set.push(Cut::trivial(n));
        cuts.push(set);
    }
    cuts
}

/// [`enumerate_cuts_k`] at the full `k = MAX_LEAVES`.
pub fn enumerate_cuts(aig: &Aig, max_cuts: usize) -> Vec<Vec<Cut>> {
    enumerate_cuts_k(aig, MAX_LEAVES, max_cuts)
}

/// Evaluates a cut's truth table on one assignment of its leaves (used by
/// tests and debug assertions).
pub fn eval_cut(cut: &Cut, leaf_values: &[bool]) -> bool {
    assert_eq!(leaf_values.len(), cut.len());
    let mut idx = 0u32;
    for (i, &v) in leaf_values.iter().enumerate() {
        idx |= u32::from(v) << i;
    }
    (cut.tt >> idx) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks every cut of every node against scalar evaluation.
    fn check_all_cuts(g: &Aig) {
        let ni = g.num_inputs();
        let cuts = enumerate_cuts(g, 8);
        for m in 0..(1u64 << ni) {
            let bits: Vec<bool> = (0..ni).map(|i| (m >> i) & 1 == 1).collect();
            // Node values via the public eval path: re-derive by walking.
            let mut values = vec![false; g.num_nodes()];
            for (i, &b) in bits.iter().enumerate() {
                values[i + 1] = b;
            }
            for n in (ni + 1)..g.num_nodes() {
                let (f0, f1) = g.fanins(n as u32);
                let v0 = values[f0.node() as usize] ^ f0.is_complemented();
                let v1 = values[f1.node() as usize] ^ f1.is_complemented();
                values[n] = v0 && v1;
            }
            for n in 0..g.num_nodes() {
                for cut in &cuts[n] {
                    let leaf_values: Vec<bool> =
                        cut.leaves().iter().map(|&l| values[l as usize]).collect();
                    assert_eq!(
                        eval_cut(cut, &leaf_values),
                        values[n],
                        "cut {cut:?} of node {n} wrong on input {m:b}"
                    );
                }
            }
        }
    }

    /// The arena must reproduce the reference sets cut for cut.
    fn check_arena_matches_reference(g: &Aig, k: usize, max_cuts: usize) {
        let reference = enumerate_cuts_k(g, k, max_cuts);
        let mut arena = CutArena::new();
        arena.enumerate(g, &CutConfig { k, max_cuts });
        assert_eq!(arena.num_nodes(), g.num_nodes());
        for n in 0..g.num_nodes() as u32 {
            let got: Vec<Cut> = arena.cuts(n).map(|v| v.to_cut()).collect();
            assert_eq!(got, reference[n as usize], "node {n} (k={k})");
        }
    }

    /// Re-enumerating a mutated graph on a warm arena must match a cold
    /// arena cut for cut, while actually reusing the untouched prefix.
    #[test]
    fn incremental_reenumeration_matches_cold_arena() {
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor(ins[0], ins[1]);
        let y = g.mux(ins[2], x, ins[3]);
        g.add_output(y);

        let cfg = CutConfig { k: 4, max_cuts: 8 };
        let mut warm = CutArena::new();
        warm.enumerate(&g, &cfg);
        let gen1 = warm.generation();
        let prefix_nodes = g.num_nodes();

        // Delta: extend the graph (prefix untouched).
        let z = g.and(y, ins[4]);
        let w = g.xor(z, !x);
        g.add_output(w);
        warm.enumerate(&g, &cfg);
        assert_eq!(warm.reused_prefix(), prefix_nodes);
        assert!(warm.node_generation(y.node()) == gen1);
        assert!(warm.node_generation(w.node()) == warm.generation());
        let mut cold = CutArena::new();
        cold.enumerate(&g, &cfg);
        assert_arenas_equal(&warm, &cold, g.num_nodes());

        // A changed config invalidates everything.
        let k6 = CutConfig { k: 6, max_cuts: 8 };
        warm.enumerate(&g, &k6);
        assert_eq!(warm.reused_prefix(), 0);
        let mut cold6 = CutArena::new();
        cold6.enumerate(&g, &k6);
        assert_arenas_equal(&warm, &cold6, g.num_nodes());

        // Shrinking to an unrelated graph still matches cold enumeration.
        let mut h = Aig::new(5);
        let hins = h.inputs();
        let ho = h.or(hins[1], hins[3]);
        h.add_output(ho);
        warm.enumerate(&h, &cfg);
        let mut coldh = CutArena::new();
        coldh.enumerate(&h, &cfg);
        assert_arenas_equal(&warm, &coldh, h.num_nodes());
    }

    fn assert_arenas_equal(a: &CutArena, b: &CutArena, n_nodes: usize) {
        assert_eq!(a.num_nodes(), n_nodes);
        assert_eq!(b.num_nodes(), n_nodes);
        for n in 0..n_nodes as u32 {
            let ca: Vec<Cut> = a.cuts(n).map(|v| v.to_cut()).collect();
            let cb: Vec<Cut> = b.cuts(n).map(|v| v.to_cut()).collect();
            assert_eq!(ca, cb, "node {n}");
        }
    }

    /// Byte-level CSR equality — stricter than [`assert_arenas_equal`]:
    /// the wavefront path must reproduce the serial buffers verbatim, not
    /// just equivalent cut sets.
    fn assert_arenas_bytes_equal(a: &CutArena, b: &CutArena) {
        assert_eq!(a.node_off, b.node_off, "node_off");
        assert_eq!(a.starts, b.starts, "starts");
        assert_eq!(a.lens, b.lens, "lens");
        assert_eq!(a.leaf_buf, b.leaf_buf, "leaf_buf");
        assert_eq!(a.tts, b.tts, "tts");
    }

    /// A multi-level pseudo-random graph with a few hundred ANDs so the
    /// wavefront path sees several non-trivial levels and chunks.
    fn layered_test_aig() -> Aig {
        let mut g = Aig::new(8);
        let mut layer = g.inputs();
        let mut salt = 0x9E37_79B9_7F4A_7C15u64;
        for _round in 0..6 {
            let mut next = Vec::new();
            for i in 0..layer.len() {
                let a = layer[i];
                let b = layer[(i * 7 + 3) % layer.len()];
                salt = salt
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                next.push(if salt & 1 == 0 {
                    g.xor(a, b)
                } else {
                    g.and(a, !b)
                });
            }
            layer = next;
        }
        for &l in &layer {
            g.add_output(l);
        }
        g
    }

    /// The wavefront-parallel enumeration must reproduce the serial CSR
    /// byte for byte — cold and incremental, at k = 4 and k = 6.
    #[test]
    fn wavefront_enumeration_matches_serial_bytes() {
        let mut g = layered_test_aig();
        for k in [4usize, 6] {
            let cfg = CutConfig { k, max_cuts: 8 };
            let mut serial = CutArena::new();
            serial.enumerate(&g, &cfg);
            let mut wave = CutArena::new();
            wave.enumerate_with(&g, &cfg, true);
            assert_arenas_bytes_equal(&serial, &wave);
        }

        // Incremental: extend the graph, re-enumerate the warm wavefront
        // arena, and compare against a cold serial enumeration. The warm
        // arena must both reuse the prefix and stay byte-identical.
        let cfg = CutConfig { k: 6, max_cuts: 8 };
        let mut wave = CutArena::new();
        wave.enumerate_with(&g, &cfg, true);
        let prefix = g.num_nodes();
        let ins = g.inputs();
        let extra = g.xor(ins[0], ins[5]);
        let top = g.and(extra, ins[2]);
        g.add_output(top);
        wave.enumerate_with(&g, &cfg, true);
        assert_eq!(wave.reused_prefix(), prefix);
        let mut cold = CutArena::new();
        cold.enumerate(&g, &cfg);
        assert_arenas_bytes_equal(&cold, &wave);
    }

    #[test]
    fn cut_truth_tables_match_simulation() {
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let x = g.xor(ins[0], ins[1]);
        let y = g.mux(ins[2], x, ins[3]);
        let z = g.and(y, !x);
        g.add_output(z);
        check_all_cuts(&g);
        for k in [2, 4, 6] {
            check_arena_matches_reference(&g, k, 8);
        }
    }

    #[test]
    fn parity_cuts() {
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let p = g.xor_many(&ins);
        g.add_output(p);
        check_all_cuts(&g);
        // The root *node* must own a 4-leaf cut computing parity (possibly
        // complemented, when the output literal is a complemented edge).
        let cuts = enumerate_cuts(&g, 8);
        let root = p.node() as usize;
        let parity_cut = cuts[root]
            .iter()
            .find(|c| c.leaves() == [1, 2, 3, 4])
            .expect("4-input cut");
        // 4-var parity vacuous-extended through the 64-bit table.
        let expect = 0x6996_6996_6996_6996u64 ^ if p.is_complemented() { u64::MAX } else { 0 };
        assert_eq!(parity_cut.tt, expect);
    }

    #[test]
    fn six_input_parity_has_full_cut() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let p = g.xor_many(&ins);
        g.add_output(p);
        let cuts = enumerate_cuts(&g, 12);
        let root = p.node() as usize;
        let full = cuts[root]
            .iter()
            .find(|c| c.leaves() == [1, 2, 3, 4, 5, 6])
            .expect("6-input cut");
        // 6-var parity: popcount of the index, odd → 1.
        let mut expect = 0u64;
        for m in 0..64u64 {
            if m.count_ones() % 2 == 1 {
                expect |= 1 << m;
            }
        }
        assert_eq!(
            full.tt ^ if p.is_complemented() { u64::MAX } else { 0 },
            expect
        );
    }

    #[test]
    fn redundant_leaves_are_dropped() {
        // f = (a AND b) OR (a AND !b) = a: the 2-leaf cut normalizes to {a}.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let t0 = g.and(a, b);
        // Build the redundant form around strash: two distinct AND nodes.
        let t1 = g.and(a, !b);
        let f = g.or(t0, t1);
        g.add_output(f);
        let cuts = enumerate_cuts(&g, 8);
        let root_cuts = &cuts[f.node() as usize];
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [a.node()]),
            "expected a 1-leaf cut {{a}}, got {root_cuts:?}"
        );
        check_all_cuts(&g);
    }

    #[test]
    fn leaves_stay_sorted_and_capped() {
        let mut g = Aig::new(8);
        let ins = g.inputs();
        let f = g.and_many(&ins);
        g.add_output(f);
        for set in enumerate_cuts(&g, 6) {
            assert!(set.len() <= 6);
            for cut in &set {
                assert!(cut.len() <= MAX_LEAVES);
                assert!(cut.leaves().windows(2).all(|w| w[0] < w[1]));
            }
        }
        check_arena_matches_reference(&g, 6, 6);
        check_arena_matches_reference(&g, 4, 8);
    }

    #[test]
    fn cofactor_and_swap_primitives() {
        // tt = x0 XOR x2 as a 6-var table.
        let tt = VAR_TT[0] ^ VAR_TT[2];
        assert_eq!(cofactor0(tt, 0), VAR_TT[2]);
        assert_eq!(cofactor1(tt, 0), !VAR_TT[2]);
        // Swapping vars 0 and 1 turns x0^x2 into x1^x2.
        assert_eq!(swap_down(tt, 0), VAR_TT[1] ^ VAR_TT[2]);
        // Swap is an involution.
        for v in 0..MAX_LEAVES - 1 {
            assert_eq!(
                swap_down(swap_down(0x1234_5678_9ABC_DEF0, v), v),
                0x1234_5678_9ABC_DEF0
            );
        }
        // General delta swap agrees with a chain of adjacent swaps.
        for (a, b) in [(0usize, 2usize), (1, 4), (0, 5), (2, 5)] {
            let t = 0xDEAD_BEEF_0123_4567u64;
            let mut chained = t;
            for v in a..b {
                chained = swap_down(chained, v);
            }
            for v in (a..b - 1).rev() {
                chained = swap_down(chained, v);
            }
            assert_eq!(swap_vars(t, a, b), chained, "swap {a}<->{b}");
        }
        // flip_var is an involution and moves VAR_TT to its complement.
        for (v, &var_tt) in VAR_TT.iter().enumerate() {
            assert_eq!(flip_var(var_tt, v), !var_tt);
            assert_eq!(
                flip_var(flip_var(0x0F1E_2D3C_4B5A_6978, v), v),
                0x0F1E_2D3C_4B5A_6978
            );
        }
    }

    #[test]
    fn insert_vacuous_shifts_variables_up() {
        // tt = x0 & x1 (vacuous-extended); inserting at 0 gives x1 & x2,
        // inserting at 1 gives x0 & x2.
        let tt = VAR_TT[0] & VAR_TT[1];
        assert_eq!(insert_vacuous(tt, 0, 2), VAR_TT[1] & VAR_TT[2]);
        assert_eq!(insert_vacuous(tt, 1, 2), VAR_TT[0] & VAR_TT[2]);
        assert_eq!(insert_vacuous(tt, 2, 2), tt);
        // Skipping swaps above the active width must not change behavior.
        assert_eq!(insert_vacuous(tt, 0, MAX_LEAVES), VAR_TT[1] & VAR_TT[2]);
        // expand maps a 2-leaf table onto a 4-leaf union.
        let out = expand(tt, &[3, 7], &[1, 3, 5, 7]);
        assert_eq!(out, VAR_TT[1] & VAR_TT[3]);
    }
}
