//! And-Inverter Graph (AIG) package.
//!
//! An AIG represents Boolean functions as a DAG of two-input AND gates whose
//! edges may be complemented — the standard logic-synthesis data structure
//! (Biere's AIGER, Berkeley ABC). The IWLS 2020 contest required every learnt
//! function to be delivered as an AIG with at most 5000 AND nodes.
//!
//! This crate provides:
//!
//! * [`Aig`] — the graph itself, with structural hashing, constant folding,
//!   levels and dangling-node cleanup.
//! * [`sim`] — word-parallel (64 patterns per word) simulation.
//! * [`aiger`] — ASCII (`.aag`) and binary (`.aig`) AIGER reader/writer.
//! * [`circuits`] — bit-vector circuit builders (adders, comparators,
//!   multipliers, popcount, symmetric functions, majority).
//! * [`cut`] / [`npn`] — k ≤ 6 priority-cut enumeration with 64-bit truth
//!   tables (arena-backed) and semi-canonical NPN canonization with the
//!   optimal-structure library.
//! * [`rewrite`] — DAG-aware cut/NPN rewriting (ABC's `rewrite`).
//! * [`sweep`] — simulation-guided equivalence sweeping.
//! * [`opt`] — the composable [`Pass`](opt::Pass) /
//!   [`Pipeline`](opt::Pipeline) layer chaining the exact passes
//!   (`balance | rewrite | sweep | cleanup`, iterated to fixpoint).
//! * [`approx`] — the random-simulation approximation pass Team 1 used to
//!   push oversized AIGs under the contest's node limit, now interleaved
//!   with the exact pipeline (see [`approx::reduce`]).
//!
//! # Examples
//!
//! ```
//! use lsml_aig::Aig;
//!
//! // f = (a XOR b) AND c
//! let mut aig = Aig::new(3);
//! let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
//! let x = aig.xor(a, b);
//! let f = aig.and(x, c);
//! aig.add_output(f);
//!
//! assert_eq!(aig.eval(&[true, false, true]), vec![true]);
//! assert_eq!(aig.eval(&[true, true, true]), vec![false]);
//! assert_eq!(aig.num_ands(), 4); // XOR costs 3 ANDs, plus the final AND
//! ```

pub mod aig;
pub mod aiger;
pub mod approx;
pub mod bench;
pub mod cancel;
pub mod circuits;
pub mod cut;
pub mod fxhash;
pub mod lit;
pub mod npn;
pub mod opt;
pub mod par;
#[cfg(test)]
mod par_props;
pub mod rewrite;
pub mod sim;
pub mod sweep;

pub use aig::Aig;
pub use approx::{reduce, ApproxConfig};
pub use lit::Lit;
pub use opt::{Pass, Pipeline};

#[cfg(test)]
pub(crate) mod testutil {
    use crate::aig::Aig;

    /// Asserts two AIGs agree on every input assignment (exhaustive, so
    /// capped at 12 inputs). Shared by the rewrite/sweep/opt test modules.
    pub(crate) fn equivalent_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert!(a.num_inputs() <= 12, "exhaustive check limited");
        for m in 0..(1u64 << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "mismatch at {m:b}");
        }
    }
}
