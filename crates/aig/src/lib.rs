//! And-Inverter Graph (AIG) package.
//!
//! An AIG represents Boolean functions as a DAG of two-input AND gates whose
//! edges may be complemented — the standard logic-synthesis data structure
//! (Biere's AIGER, Berkeley ABC). The IWLS 2020 contest required every learnt
//! function to be delivered as an AIG with at most 5000 AND nodes.
//!
//! This crate provides:
//!
//! * [`Aig`] — the graph itself, with structural hashing, constant folding,
//!   levels and dangling-node cleanup.
//! * [`sim`] — word-parallel (64 patterns per word) simulation.
//! * [`aiger`] — ASCII AIGER (`.aag`) reader/writer.
//! * [`circuits`] — bit-vector circuit builders (adders, comparators,
//!   multipliers, popcount, symmetric functions, majority).
//! * [`approx`] — the random-simulation approximation pass Team 1 used to
//!   push oversized AIGs under the contest's node limit.
//! * [`opt`] — light restructuring (balance) for depth reduction.
//!
//! # Examples
//!
//! ```
//! use lsml_aig::Aig;
//!
//! // f = (a XOR b) AND c
//! let mut aig = Aig::new(3);
//! let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
//! let x = aig.xor(a, b);
//! let f = aig.and(x, c);
//! aig.add_output(f);
//!
//! assert_eq!(aig.eval(&[true, false, true]), vec![true]);
//! assert_eq!(aig.eval(&[true, true, true]), vec![false]);
//! assert_eq!(aig.num_ands(), 4); // XOR costs 3 ANDs, plus the final AND
//! ```

pub mod aig;
pub mod aiger;
pub mod approx;
pub mod circuits;
pub mod lit;
pub mod opt;
pub mod sim;

pub use aig::Aig;
pub use approx::{approximate, ApproxConfig};
pub use lit::Lit;
