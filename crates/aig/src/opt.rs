//! Composable AIG optimization passes.
//!
//! The contest teams post-processed their AIGs with ABC scripts (`resyn2`,
//! `compress2rs`, …) — *sequences* of DAG-aware passes iterated to a
//! fixpoint. This module is the equivalent: a [`Pass`] is one semantics-
//! preserving graph-to-graph transformation, a [`Pipeline`] chains them, and
//! [`Pipeline::run_fixpoint`] iterates the chain while it keeps helping.
//!
//! Available passes:
//!
//! * [`BalancePass`] — depth-minimal restructuring of maximal AND trees
//!   (ABC's `balance`), via [`balance`];
//! * [`RewritePass`] — DAG-aware cut/NPN rewriting with shared-logic gain
//!   accounting ([`crate::rewrite`]), optionally zero-gain, k ∈ 2..=6;
//! * [`SweepPass`] — simulation-guided equivalence sweeping
//!   ([`crate::sweep`]);
//! * [`CleanupPass`] — drop logic unreachable from the outputs.
//!
//! # The fixpoint cache
//!
//! Pipelines are deterministic, so a graph that already sits at a pipeline's
//! fixpoint will sit there forever. [`Pipeline::run_fixpoint`] therefore
//! remembers, process-wide, every ([`Aig::structural_fingerprint`],
//! [`Pipeline::fingerprint`]) pair it has driven to convergence, and returns
//! immediately when asked to optimize such a graph again. That turns the
//! redundant "exact prelude" of [`crate::approx::reduce`] — and any repeated
//! compile of a structurally identical candidate — into a hash probe; no
//! caller has to thread an "already optimized" flag by hand.
//!
//! # Examples
//!
//! Build the default `resyn2`-style pipeline and run it to a fixpoint:
//!
//! ```
//! use lsml_aig::opt::{BalancePass, CleanupPass, Pipeline, RewritePass, SweepPass};
//! use lsml_aig::Aig;
//!
//! // A deliberately redundant graph: two structurally different XORs.
//! let mut g = Aig::new(3);
//! let (a, b, c) = (g.input(0), g.input(1), g.input(2));
//! let x1 = g.xor(a, b);
//! let o = g.or(a, b);
//! let n = g.and(a, b);
//! let x2 = g.and(o, !n); // also a XOR b
//! let f = g.mux(c, x1, !x2);
//! g.add_output(f);
//!
//! let pipeline = Pipeline::resyn(0); // balance | rewrite | sweep | cleanup
//! let h = pipeline.run_fixpoint(&g, 4);
//! assert!(h.num_ands() < g.num_ands());
//! assert_eq!(h.eval(&[true, false, true]), g.eval(&[true, false, true]));
//!
//! // Pipelines compose freely:
//! let custom = Pipeline::new()
//!     .then(BalancePass)
//!     .then(RewritePass::default())
//!     .then(SweepPass::seeded(7))
//!     .then(CleanupPass);
//! assert_eq!(custom.describe(), "balance | rewrite | sweep | cleanup");
//! ```

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

use crate::aig::Aig;
use crate::fxhash::{fnv1a_mix, FNV_OFFSET};
use crate::lit::Lit;
use crate::rewrite::{rewrite, RewriteConfig};
use crate::sweep::{sweep, SweepConfig};

fn fnv_str(h: u64, s: &str) -> u64 {
    s.bytes().fold(h, |h, b| fnv1a_mix(h, u64::from(b)))
}

/// Whether the structural verifiers run after every pass: **`LSML_CHECK=1`**
/// in the environment (read once per process). Independent of build profile
/// — release binaries can be checked too; debug builds additionally verify
/// once per [`Pipeline::run_fixpoint`] round regardless of the variable.
/// Listed with every other `LSML_*` runtime knob in the [`crate::par`]
/// module docs.
pub fn check_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("LSML_CHECK").as_deref() == Ok("1"))
}

/// One semantics-preserving AIG transformation.
pub trait Pass: Send + Sync {
    /// Short display name (`"balance"`, `"rewrite"`, …).
    fn name(&self) -> &'static str;

    /// Runs the pass. Implementations must preserve functionality exactly.
    fn run(&self, aig: &Aig) -> Aig;

    /// A stable fingerprint of the pass *configuration*: two passes with
    /// equal fingerprints must transform every graph identically (the
    /// fixpoint cache keys on it). The default hashes only the name —
    /// passes with tunable configuration must fold that in too.
    fn fingerprint(&self) -> u64 {
        fnv_str(FNV_OFFSET, self.name())
    }
}

/// ABC-style `balance` as a [`Pass`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &'static str {
        "balance"
    }
    fn run(&self, aig: &Aig) -> Aig {
        balance(aig)
    }
}

/// DAG-aware cut/NPN rewriting as a [`Pass`].
#[derive(Clone, Debug, Default)]
pub struct RewritePass(pub RewriteConfig);

impl RewritePass {
    /// The zero-gain variant (ABC's `rwz`): accepts reshaping replacements
    /// that do not change the node count.
    pub fn zero_gain() -> RewritePass {
        RewritePass(RewriteConfig {
            zero_gain: true,
            ..RewriteConfig::default()
        })
    }

    /// This pass with the given maximum cut size (2..=6).
    pub fn with_cut_size(mut self, cut_size: usize) -> RewritePass {
        self.0.cut_size = cut_size;
        self
    }
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        match (self.0.zero_gain, self.0.cut_size) {
            (false, 6) => "rewrite -K 6",
            (true, 6) => "rewrite -z -K 6",
            (false, _) => "rewrite",
            (true, _) => "rewrite -z",
        }
    }
    fn run(&self, aig: &Aig) -> Aig {
        rewrite(aig, &self.0)
    }
    fn fingerprint(&self) -> u64 {
        let mut h = fnv_str(FNV_OFFSET, self.name());
        h = fnv1a_mix(h, u64::from(self.0.zero_gain));
        h = fnv1a_mix(h, self.0.max_cuts as u64);
        fnv1a_mix(h, self.0.cut_size as u64)
    }
}

/// Simulation-guided equivalence sweeping as a [`Pass`].
#[derive(Clone, Debug, Default)]
pub struct SweepPass(pub SweepConfig);

impl SweepPass {
    /// A sweep with the given signature seed and default limits.
    pub fn seeded(seed: u64) -> SweepPass {
        SweepPass(SweepConfig {
            seed,
            ..SweepConfig::default()
        })
    }
}

impl Pass for SweepPass {
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn run(&self, aig: &Aig) -> Aig {
        sweep(aig, &self.0)
    }
    fn fingerprint(&self) -> u64 {
        let cfg = &self.0;
        let mut h = fnv_str(FNV_OFFSET, self.name());
        for v in [
            cfg.rounds as u64,
            cfg.seed,
            cfg.max_support as u64,
            cfg.max_cone as u64,
            cfg.max_pairs as u64,
        ] {
            h = fnv1a_mix(h, v);
        }
        if let Some(cols) = &cfg.stimulus {
            h = fnv1a_mix(h, cols.num_inputs() as u64);
            h = fnv1a_mix(h, cols.num_examples() as u64);
            for i in 0..cols.num_inputs() {
                for &w in cols.column(i) {
                    h = fnv1a_mix(h, w);
                }
            }
        }
        h
    }
}

/// Dangling-logic removal as a [`Pass`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }
    fn run(&self, aig: &Aig) -> Aig {
        let mut g = aig.clone();
        g.cleanup();
        g
    }
}

/// Lock stripes of the sharded fixpoint cache (a power of two: the shard
/// index is the top bits of the multiplicatively mixed key hash).
const FIXPOINT_SHARDS: usize = 16;

/// The shard a key lives in: both key halves are folded together and
/// Fibonacci-mixed so structurally close fingerprints spread evenly.
fn fixpoint_shard_of(key: &(u128, u64)) -> usize {
    let folded = (key.0 as u64) ^ ((key.0 >> 64) as u64) ^ key.1;
    (folded.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (FIXPOINT_SHARDS - 1)
}

/// One lock stripe of the fixpoint cache: an LRU-stamped map of (graph
/// fingerprint, pipeline fingerprint) pairs known to be at a fixpoint.
/// Entry accounting against the shared byte budget lives in the owning
/// [`ShardedFixpointCache`]'s atomic, not here.
#[derive(Default)]
struct FixpointShard {
    /// Value = last-touch tick.
    map: HashMap<(u128, u64), u64>,
    tick: u64,
    evictions: u64,
}

/// The lock-striped, byte-budgeted fixpoint cache: [`FIXPOINT_SHARDS`]
/// independently locked LRU maps sharing one atomic entry count. Probes
/// and inserts on different shards never contend. The budget (entry
/// capacity derived from `LSML_FIXPOINT_CACHE_BYTES`) is global: when the
/// shared count exceeds it, the inserting shard evicts its
/// least-recently-touched quarter (never the whole cache), so long
/// portfolio sweeps keep their hot entries while cold ones age out.
struct ShardedFixpointCache {
    shards: [Mutex<FixpointShard>; FIXPOINT_SHARDS],
    /// Resident entries across all shards.
    entries: AtomicU64,
}

impl ShardedFixpointCache {
    /// LRU-refreshing membership probe in the key's shard.
    fn probe(&self, key: (u128, u64)) -> bool {
        self.shards[fixpoint_shard_of(&key)]
            .lock()
            .expect("fixpoint cache lock")
            .probe(key)
    }

    /// Records `key` as a known fixpoint, then enforces the shared entry
    /// budget: while the global count exceeds the capacity, the inserting
    /// shard drops its least-recently-touched quarter, and remaining
    /// pressure is relieved by sweeping the other shards one lock at a
    /// time (never holding two shard locks at once).
    fn insert(&self, key: (u128, u64)) {
        let cap = (fixpoint_cache_budget() / FIXPOINT_ENTRY_BYTES).max(16) as u64;
        self.insert_with_cap(key, cap);
    }

    /// [`ShardedFixpointCache::insert`] with an explicit entry capacity
    /// (shared with the loom model surface, which pins tiny capacities).
    fn insert_with_cap(&self, key: (u128, u64), cap: u64) {
        let idx = fixpoint_shard_of(&key);
        {
            let mut st = self.shards[idx].lock().expect("fixpoint cache lock");
            if st.insert(key) {
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
            while self.entries.load(Ordering::Relaxed) > cap && st.map.len() > 1 {
                let dropped = st.evict_quarter();
                self.entries.fetch_sub(dropped as u64, Ordering::Relaxed);
            }
        }
        // Remaining pressure sits in other stripes: sweep them one lock at
        // a time (never two at once), draining a stripe entirely if need
        // be — only the inserting shard is guaranteed to keep its newest
        // entry.
        let mut i = (idx + 1) % FIXPOINT_SHARDS;
        while self.entries.load(Ordering::Relaxed) > cap && i != idx {
            let mut st = self.shards[i].lock().expect("fixpoint cache lock");
            while self.entries.load(Ordering::Relaxed) > cap && !st.map.is_empty() {
                let dropped = st.evict_quarter();
                self.entries.fetch_sub(dropped as u64, Ordering::Relaxed);
            }
            drop(st);
            i = (i + 1) % FIXPOINT_SHARDS;
        }
    }

    /// Empties every shard (eviction counters keep running).
    fn clear(&self) {
        for shard in &self.shards {
            let mut st = shard.lock().expect("fixpoint cache lock");
            let dropped = st.map.len();
            st.map.clear();
            self.entries.fetch_sub(dropped as u64, Ordering::Relaxed);
        }
    }

    /// `(resident entries, evictions)` summed over shards.
    fn totals(&self) -> (usize, u64) {
        let mut evictions = 0u64;
        for shard in &self.shards {
            evictions += shard.lock().expect("fixpoint cache lock").evictions;
        }
        (self.entries.load(Ordering::Relaxed) as usize, evictions)
    }

    /// Checks the accounting invariant against an explicit capacity: the
    /// shared atomic must equal the per-shard map sizes' sum, and the
    /// resident count must not exceed `cap`. Holds **every** shard lock
    /// while reading — mutations only ever happen under some shard lock
    /// (one at a time), so this observes a consistent snapshot even while
    /// inserts race on other threads, and cannot deadlock.
    fn verify_with_cap(&self, cap: usize) -> Result<(), String> {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("fixpoint cache lock"))
            .collect();
        let sum: usize = guards.iter().map(|st| st.map.len()).sum();
        let accounted = self.entries.load(Ordering::Relaxed) as usize;
        if sum != accounted {
            return Err(format!(
                "fixpoint cache entry count drifted: accounted {accounted} != resident {sum}"
            ));
        }
        if sum > cap {
            return Err(format!(
                "fixpoint cache holds {sum} entries, budget caps it at {cap}"
            ));
        }
        Ok(())
    }

    /// [`ShardedFixpointCache::verify_with_cap`] against the env-derived
    /// budget.
    fn verify(&self) -> Result<(), String> {
        self.verify_with_cap((fixpoint_cache_budget() / FIXPOINT_ENTRY_BYTES).max(16))
    }
}

fn fixpoint_cache() -> &'static ShardedFixpointCache {
    static CACHE: OnceLock<ShardedFixpointCache> = OnceLock::new();
    CACHE.get_or_init(|| ShardedFixpointCache {
        shards: std::array::from_fn(|_| Mutex::new(FixpointShard::default())),
        entries: AtomicU64::new(0),
    })
}

/// Estimated bytes per fixpoint-cache entry (key + tick + table overhead).
const FIXPOINT_ENTRY_BYTES: usize = 64;

/// The fixpoint cache's byte budget: `LSML_FIXPOINT_CACHE_BYTES` when set to
/// a positive integer, otherwise a generous 8 MiB (~128k entries). Listed
/// with every other `LSML_*` runtime knob in the [`crate::par`] module
/// docs.
fn fixpoint_cache_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("LSML_FIXPOINT_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(8 << 20)
    })
}

/// Drops every fixpoint-cache entry (benchmark hygiene: lets cold-vs-cold
/// comparisons start from the same state).
pub fn fixpoint_cache_clear() {
    fixpoint_cache().clear();
}

/// `(live entries, LRU evictions so far)` of the process-wide fixpoint
/// cache, summed over its lock stripes.
pub fn fixpoint_cache_stats() -> (usize, u64) {
    fixpoint_cache().totals()
}

/// Checks the fixpoint cache's budget and accounting invariants: the
/// shared entry count must match the per-shard maps, and never exceed the
/// configured capacity after an insert has completed. Concurrency stress
/// tests call this between hammer rounds.
pub fn fixpoint_cache_verify() -> Result<(), String> {
    fixpoint_cache().verify()
}

/// Every (graph fingerprint, pipeline fingerprint) pair currently known to
/// be at a fixpoint, across all shards, in sorted order (so identical cache
/// contents export identical snapshots). Warm-start persistence
/// (`lsml-serve`) serializes this; pair with [`fixpoint_cache_import`].
pub fn fixpoint_cache_export() -> Vec<(u128, u64)> {
    let cache = fixpoint_cache();
    let mut keys = Vec::new();
    for shard in &cache.shards {
        let st = shard.lock().expect("fixpoint cache lock");
        keys.extend(st.map.keys().copied());
    }
    keys.sort_unstable();
    keys
}

/// Re-seeds the fixpoint cache with previously exported keys (a warm boot
/// from a snapshot). Inserts run through the ordinary budget-enforcing
/// path, so an oversized snapshot is trimmed exactly like live pressure.
pub fn fixpoint_cache_import(keys: &[(u128, u64)]) {
    let cache = fixpoint_cache();
    for &key in keys {
        cache.insert(key);
    }
}

/// Model-check surface (`--cfg lsml_loom` only): a *fresh*, non-global
/// fixpoint cache with an explicit entry capacity, so `loom::model` bodies
/// can explore probe/insert/evict races on the sharded design from a known
/// initial state (the process-wide cache behind a `OnceLock` is
/// deliberately not modeled).
#[cfg(lsml_loom)]
pub mod loom_api {
    use super::*;

    /// A private fixpoint cache over the same [`ShardedFixpointCache`]
    /// machinery (same stripes, same shadow `Mutex`es, same shared atomic
    /// entry count) the process-wide cache uses — but with its own
    /// capacity instead of the env-derived budget.
    pub struct LoomFixpointCache {
        state: ShardedFixpointCache,
        cap: u64,
    }

    /// The shard a key maps to — lets models pick keys that land on the
    /// same stripe (lock contention) or distinct stripes (cross-shard
    /// accounting).
    pub fn shard_index(key: (u128, u64)) -> usize {
        fixpoint_shard_of(&key)
    }

    /// Number of lock stripes.
    pub const SHARDS: usize = FIXPOINT_SHARDS;

    impl LoomFixpointCache {
        /// A fresh cache capped at `cap` entries.
        pub fn with_capacity(cap: usize) -> Self {
            LoomFixpointCache {
                state: ShardedFixpointCache {
                    shards: std::array::from_fn(|_| Mutex::new(FixpointShard::default())),
                    entries: AtomicU64::new(0),
                },
                cap: cap as u64,
            }
        }

        /// LRU-refreshing membership probe.
        pub fn probe(&self, key: (u128, u64)) -> bool {
            self.state.probe(key)
        }

        /// Records `key`, enforcing the entry capacity through the very
        /// code path the process-wide cache uses (own-shard quarter
        /// eviction first, then a one-lock-at-a-time sweep of the other
        /// stripes).
        pub fn insert(&self, key: (u128, u64)) {
            self.state.insert_with_cap(key, self.cap);
        }

        /// `(resident entries, evictions)` over all shards.
        pub fn stats(&self) -> (usize, u64) {
            self.state.totals()
        }

        /// Accounting check: the shared atomic equals the per-shard sum
        /// and respects the capacity. Takes a consistent all-locks
        /// snapshot, so it is sound even while inserts race.
        pub fn verify(&self) -> Result<(), String> {
            self.state.verify_with_cap(self.cap as usize)
        }
    }
}

impl FixpointShard {
    /// LRU-refreshing membership probe.
    fn probe(&mut self, key: (u128, u64)) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some(t) => {
                *t = tick;
                true
            }
            None => false,
        }
    }

    /// Inserts `key`; true when it was not already resident (the caller
    /// bumps the shared entry count by exactly the net growth).
    fn insert(&mut self, key: (u128, u64)) -> bool {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key, tick).is_none()
    }

    /// Evicts the least-recently-touched quarter of this shard in one
    /// pass; returns how many entries were dropped.
    fn evict_quarter(&mut self) -> usize {
        let mut ticks: Vec<u64> = self.map.values().copied().collect();
        let cut = ticks.len() / 4;
        ticks.select_nth_unstable(cut);
        let threshold = ticks[cut];
        let before = self.map.len();
        self.map.retain(|_, t| *t > threshold);
        let dropped = before - self.map.len();
        self.evictions += dropped as u64;
        dropped
    }
}

/// A sequence of passes applied in order.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn then(mut self, pass: impl Pass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// The default synthesis script, modeled on ABC's `resyn2`:
    /// `balance | rewrite | rewrite -z | sweep | cleanup`. The seed feeds
    /// the sweep's random signature stimulus.
    pub fn resyn(seed: u64) -> Pipeline {
        Pipeline::resyn_with(
            SweepConfig {
                seed,
                ..SweepConfig::default()
            },
            RewriteConfig::default().cut_size,
        )
    }

    /// [`Pipeline::resyn`] with k = 6 rewriting layered on top of the k = 4
    /// passes (ABC-style `rw; rw -K 6`): the 64-bit-cut rounds only ever
    /// refine what the classic rounds found, so the k = 6 script reduces at
    /// least as much as [`Pipeline::resyn`], at higher per-round cost.
    pub fn resyn_k6(seed: u64) -> Pipeline {
        Pipeline::resyn_with(
            SweepConfig {
                seed,
                ..SweepConfig::default()
            },
            6,
        )
    }

    /// [`Pipeline::resyn`] with a caller-provided sweep configuration (e.g.
    /// application [`BitColumns`](lsml_pla::BitColumns) stimulus feeding the
    /// signatures).
    pub fn resyn_with_sweep(sweep: SweepConfig) -> Pipeline {
        Pipeline::resyn_with(sweep, RewriteConfig::default().cut_size)
    }

    /// The single source of truth for the resyn pass list: caller-provided
    /// sweep configuration and rewrite cut size. A cut size above the
    /// default appends wider-cut rewrite rounds after the classic ones
    /// rather than replacing them.
    pub fn resyn_with(sweep: SweepConfig, cut_size: usize) -> Pipeline {
        let mut p = Pipeline::new()
            .then(BalancePass)
            .then(RewritePass::default())
            .then(RewritePass::zero_gain());
        if cut_size > RewriteConfig::default().cut_size {
            p = p
                .then(RewritePass::default().with_cut_size(cut_size))
                .then(RewritePass::zero_gain().with_cut_size(cut_size));
        }
        p.then(SweepPass(sweep)).then(CleanupPass)
    }

    /// `name | name | …` for logs and tests.
    pub fn describe(&self) -> String {
        self.passes
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// A stable fingerprint of the full pass sequence and every pass's
    /// configuration; the fixpoint cache and the compile cache key on it.
    pub fn fingerprint(&self) -> u64 {
        self.passes
            .iter()
            .fold(FNV_OFFSET, |h, p| fnv1a_mix(h, p.fingerprint()))
    }

    /// Runs every pass once, in order. With `LSML_CHECK=1` (see
    /// [`check_enabled`]) the full structural verifier
    /// ([`Aig::check_invariants`]) runs after every pass and panics naming
    /// the offending pass on the first violation.
    ///
    /// Stops between passes once the calling thread's cancellation token
    /// ([`crate::cancel`]) fires. Every pass is semantics-preserving, so the
    /// early return is a valid (just less optimized) graph.
    pub fn run(&self, aig: &Aig) -> Aig {
        let mut current = aig.clone();
        for pass in &self.passes {
            if crate::cancel::cancelled() {
                return current;
            }
            current = pass.run(&current);
            if check_enabled() {
                if let Err(e) = current.check_invariants() {
                    panic!("AIG invariants violated after pass `{}`: {e}", pass.name());
                }
            }
        }
        current
    }

    /// Iterates the pipeline until the AND count (then the depth) stops
    /// improving, at most `max_rounds` times. Never returns a graph larger
    /// than the cleaned-up input.
    ///
    /// Graphs already driven to this pipeline's fixpoint (in this process)
    /// are recognized by structural fingerprint and returned without
    /// re-running a single pass — see the module docs.
    pub fn run_fixpoint(&self, aig: &Aig, max_rounds: usize) -> Aig {
        let mut best = aig.clone();
        best.cleanup();
        if max_rounds == 0 {
            return best;
        }
        let pipe_fp = self.fingerprint();
        if fixpoint_cache().probe((best.structural_fingerprint(), pipe_fp)) {
            return best;
        }
        let mut converged = false;
        for _ in 0..max_rounds {
            let next = self.run(&best);
            // Debug builds verify every round even without `LSML_CHECK=1`
            // (the per-pass checks inside `run` stay opt-in: they multiply
            // the verifier cost by the pass count).
            #[cfg(debug_assertions)]
            if let Err(e) = next.check_invariants() {
                panic!(
                    "AIG invariants violated by pipeline `{}`: {e}",
                    self.describe()
                );
            }
            let smaller = next.num_ands() < best.num_ands();
            let same_but_shallower =
                next.num_ands() == best.num_ands() && next.depth() < best.depth();
            let improved = smaller || same_but_shallower;
            if improved {
                best = next;
            }
            if crate::cancel::cancelled() {
                // A cancelled round may have skipped passes, so "no
                // improvement" proves nothing about convergence: return the
                // best graph so far and never memoize it as a fixpoint.
                return best;
            }
            if !improved {
                converged = true;
                break;
            }
        }
        if converged {
            fixpoint_cache().insert((best.structural_fingerprint(), pipe_fp));
        }
        best
    }
}

/// Rebuilds the AIG with every maximal conjunction restructured as a balanced
/// tree (deepest operands combined last). Functionality is preserved; depth
/// typically drops, node count never grows beyond the original cone sizes
/// (structural hashing dedups shared sub-terms). Levels of the fresh graph
/// are tracked incrementally (one push per created node) instead of
/// recomputed per combine, which is what makes the pass linear.
pub fn balance(aig: &Aig) -> Aig {
    let mut b = Balancer {
        fresh: Aig::new(aig.num_inputs()),
        levels: vec![0u32; aig.num_inputs() + 1],
        memo: vec![None; aig.num_nodes()],
    };
    let outputs: Vec<Lit> = aig.outputs().to_vec();
    let mut result = Vec::with_capacity(outputs.len());
    for o in outputs {
        let l = b.build(aig, o.node()).complement_if(o.is_complemented());
        result.push(l);
    }
    for l in result {
        b.fresh.add_output(l);
    }
    b.fresh
}

/// The balancing rebuild state: the fresh graph plus its incrementally
/// maintained levels (`levels.len() == fresh.num_nodes()` at all times) and
/// the old-node → fresh-literal memo.
struct Balancer {
    fresh: Aig,
    levels: Vec<u32>,
    memo: Vec<Option<Lit>>,
}

impl Balancer {
    /// `fresh.and` plus level bookkeeping for newly created nodes.
    fn and_tracked(&mut self, a: Lit, b: Lit) -> Lit {
        let before = self.fresh.num_nodes();
        let l = self.fresh.and(a, b);
        if self.fresh.num_nodes() > before {
            let lv = 1 + self.levels[a.node() as usize].max(self.levels[b.node() as usize]);
            self.levels.push(lv);
        }
        l
    }

    /// Recursively rebuilds node `n` of `old` inside `fresh`.
    fn build(&mut self, old: &Aig, n: u32) -> Lit {
        if let Some(l) = self.memo[n as usize] {
            return l;
        }
        let l = if !old.is_and(n) {
            Lit::new(n, false) // constant or input: same index in `fresh`
        } else {
            // Collect the maximal AND-tree rooted here: leaves are edges that
            // are complemented, non-AND, or AND nodes referenced through
            // complements.
            let mut leaves: Vec<Lit> = Vec::new();
            collect_conjunction(old, Lit::new(n, false), &mut leaves);
            // Rebuild each leaf, then combine from shallowest to deepest.
            let mut built: Vec<Lit> = leaves
                .iter()
                .map(|&leaf| {
                    self.build(old, leaf.node())
                        .complement_if(leaf.is_complemented())
                })
                .collect();
            built.sort_by_key(|l| std::cmp::Reverse(self.levels[l.node() as usize]));
            // Repeatedly AND the two shallowest operands (at the end after
            // the descending sort), re-inserting the fresh AND in level
            // order — the greedy near-optimal tree, matching ABC's balance.
            while built.len() > 1 {
                let a = built.pop().expect("len > 1");
                let b = built.pop().expect("len > 1");
                let ab = self.and_tracked(a, b);
                let lv = self.levels[ab.node() as usize];
                let pos = built
                    .iter()
                    .position(|l| self.levels[l.node() as usize] <= lv)
                    .unwrap_or(built.len());
                built.insert(pos, ab);
            }
            built.pop().unwrap_or(Lit::TRUE)
        };
        self.memo[n as usize] = Some(l);
        l
    }
}

/// Collects the leaves of the maximal conjunction reachable from `root`
/// through uncomplemented AND edges.
fn collect_conjunction(aig: &Aig, root: Lit, leaves: &mut Vec<Lit>) {
    if root.is_complemented() || !aig.is_and(root.node()) {
        leaves.push(root);
        return;
    }
    let (f0, f1) = aig.fanins(root.node());
    collect_conjunction(aig, f0, leaves);
    collect_conjunction(aig, f1, leaves);
}

/// Balance + cleanup until the size stops improving (at most `rounds`
/// iterations). A cheap stand-in for ABC's `compress2rs`; for the full
/// DAG-aware script use [`Pipeline::resyn`].
pub fn compress(aig: &Aig, rounds: usize) -> Aig {
    Pipeline::new()
        .then(BalancePass)
        .then(CleanupPass)
        .run_fixpoint(aig, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    #[test]
    fn balance_flattens_chains() {
        // Left-deep AND chain over 8 inputs: depth 7 -> balanced depth 3.
        let mut g = Aig::new(8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let x = g.input(i);
            acc = g.and(acc, x);
        }
        g.add_output(acc);
        assert_eq!(g.depth(), 7);
        let h = balance(&g);
        assert_eq!(h.depth(), 3);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_preserves_xor_logic() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.xor(acc, x);
        }
        let chain = g.and_many(&ins[..3]);
        let f = g.and(acc, !chain);
        g.add_output(f);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_handles_constants_and_multi_outputs() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.and(a, b);
        g.add_output(Lit::TRUE);
        g.add_output(!x);
        g.add_output(c);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_levels_match_recomputed_levels() {
        // The incremental level tracking must agree with Aig::levels on the
        // finished graph.
        let mut g = Aig::new(7);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..5]);
        let y = g.and_many(&ins[2..]);
        let f = g.mux(ins[6], x, y);
        g.add_output(f);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
        // Rebuild through the Balancer to inspect its levels.
        let mut b = Balancer {
            fresh: Aig::new(g.num_inputs()),
            levels: vec![0u32; g.num_inputs() + 1],
            memo: vec![None; g.num_nodes()],
        };
        for o in g.outputs().to_vec() {
            b.build(&g, o.node());
        }
        assert_eq!(b.levels, b.fresh.levels());
    }

    #[test]
    fn compress_never_grows() {
        let mut g = Aig::new(10);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.and(acc, x);
        }
        let p = g.xor_many(&ins);
        let f = g.or(acc, p);
        g.add_output(f);
        let before = g.num_ands();
        let h = compress(&g, 3);
        assert!(h.num_ands() <= before);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn pipeline_composes_and_describes() {
        let p = Pipeline::resyn(0);
        assert_eq!(
            p.describe(),
            "balance | rewrite | rewrite -z | sweep | cleanup"
        );
        assert_eq!(Pipeline::new().describe(), "");
    }

    #[test]
    fn fingerprints_separate_configurations() {
        assert_eq!(
            Pipeline::resyn(3).fingerprint(),
            Pipeline::resyn(3).fingerprint()
        );
        assert_ne!(
            Pipeline::resyn(3).fingerprint(),
            Pipeline::resyn(4).fingerprint()
        );
        assert_ne!(
            Pipeline::resyn(3).fingerprint(),
            Pipeline::resyn_k6(3).fingerprint()
        );
        assert_ne!(
            Pipeline::new().then(BalancePass).fingerprint(),
            Pipeline::new().then(CleanupPass).fingerprint()
        );
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let f = g.xor(a, b);
        g.add_output(f);
        let h = Pipeline::new().run(&g);
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), g.num_ands());
    }

    #[test]
    fn resyn_beats_balance_on_redundant_graph() {
        // Three structurally distinct copies of the same function, muxed.
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let x1 = g.xor(a, b);
        let o = g.or(a, b);
        let n = g.and(a, b);
        let x2 = g.and(o, !n);
        let p = g.and(a, !b);
        let q = g.and(!a, b);
        let x3 = g.or(p, q);
        let m1 = g.mux(c, x1, x2);
        let f = g.mux(d, m1, x3);
        g.add_output(f);

        let balanced = balance(&g);
        let piped = Pipeline::resyn(0).run_fixpoint(&g, 4);
        assert!(
            piped.num_ands() < balanced.num_ands(),
            "pipeline {} vs balance {}",
            piped.num_ands(),
            balanced.num_ands()
        );
        equivalent_exhaustive(&g, &piped);
        // The whole graph is one XOR: 3 ANDs.
        assert_eq!(piped.num_ands(), 3);
    }

    #[test]
    fn fixpoint_never_grows() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and_many(&ins[1..]);
        let f = g.mux(ins[0], x, y);
        g.add_output(f);
        let mut cleaned = g.clone();
        cleaned.cleanup();
        let h = Pipeline::resyn(3).run_fixpoint(&g, 4);
        assert!(h.num_ands() <= cleaned.num_ands());
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn cancelled_run_returns_valid_partial_result() {
        use crate::cancel::{with_token, CancelToken};
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let x1 = g.xor(a, b);
        let o = g.or(a, b);
        let n = g.and(a, b);
        let x2 = g.and(o, !n);
        let m1 = g.mux(c, x1, x2);
        let f = g.mux(d, m1, x1);
        g.add_output(f);
        let token = CancelToken::new();
        token.cancel();
        let h = with_token(&token, || Pipeline::resyn(0).run(&g));
        // Cancelled before the first pass: the identity graph comes back,
        // still semantically equal.
        assert_eq!(h.num_ands(), g.num_ands());
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn cancelled_fixpoint_never_memoizes() {
        use crate::cancel::{with_token, CancelToken};
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..4]);
        let y = g.and_many(&ins[1..]);
        let f = g.mux(ins[0], x, y);
        g.add_output(f);
        // A unique seed gives this pipeline a fingerprint no other test
        // shares, so global-cache assertions are race-free.
        let p = Pipeline::resyn(0x00C0_FFEE_CA11);
        let pipe_fp = p.fingerprint();
        let token = CancelToken::new();
        token.cancel();
        let h = with_token(&token, || p.run_fixpoint(&g, 4));
        equivalent_exhaustive(&g, &h);
        let key = (h.structural_fingerprint(), pipe_fp);
        assert!(
            !fixpoint_cache_export().contains(&key),
            "a cancelled run must not be recorded as a fixpoint"
        );
        // The same run without the token converges and IS recorded.
        let done = p.run_fixpoint(&g, 8);
        let key = (done.structural_fingerprint(), pipe_fp);
        assert!(fixpoint_cache_export().contains(&key));
        // Import of an export is idempotent: the key stays resident.
        fixpoint_cache_import(&[key]);
        assert!(fixpoint_cache_export().contains(&key));
    }

    #[test]
    fn fixpoint_cache_returns_identical_results() {
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor_many(&ins[..4]);
        let y = g.and_many(&ins[1..]);
        let f = g.mux(ins[0], x, y);
        g.add_output(f);
        let p = Pipeline::resyn(41);
        let first = p.run_fixpoint(&g, 4);
        // Re-running on the converged result must be the cached no-op path
        // and return the structurally identical graph.
        let again = p.run_fixpoint(&first, 4);
        assert_eq!(
            first.structural_fingerprint(),
            again.structural_fingerprint()
        );
        // A different pipeline seed is a different cache key; results must
        // still be semantically equal.
        let other = Pipeline::resyn(42).run_fixpoint(&first, 4);
        equivalent_exhaustive(&first, &other);
    }
}
