//! Light AIG restructuring.
//!
//! The contest teams post-processed their AIGs with ABC (`resyn2`,
//! `compress2rs`, …). We provide the pass that matters most for the reported
//! metrics: **balance**, which rebuilds maximal AND-trees as depth-minimal
//! trees with fanins combined in level order (ABC's `balance`), plus a
//! convenience [`compress`] that alternates balancing and cleanup.

use std::collections::HashMap;

use crate::aig::Aig;
use crate::lit::Lit;

/// Rebuilds the AIG with every maximal conjunction restructured as a balanced
/// tree (deepest operands combined last). Functionality is preserved; depth
/// typically drops, node count never grows beyond the original cone sizes
/// (structural hashing dedups shared sub-terms).
pub fn balance(aig: &Aig) -> Aig {
    let mut fresh = Aig::new(aig.num_inputs());
    let mut memo: HashMap<u32, Lit> = HashMap::new();
    let outputs: Vec<Lit> = aig.outputs().to_vec();
    let mut result = Vec::with_capacity(outputs.len());
    for o in outputs {
        let l = build(aig, o.node(), &mut fresh, &mut memo).complement_if(o.is_complemented());
        result.push(l);
    }
    for l in result {
        fresh.add_output(l);
    }
    fresh
}

/// Recursively rebuilds node `n` of `old` inside `fresh`.
fn build(old: &Aig, n: u32, fresh: &mut Aig, memo: &mut HashMap<u32, Lit>) -> Lit {
    if let Some(&l) = memo.get(&n) {
        return l;
    }
    let l = if !old.is_and(n) {
        Lit::new(n, false) // constant or input: same index in `fresh`
    } else {
        // Collect the maximal AND-tree rooted here: leaves are edges that are
        // complemented, non-AND, or AND nodes referenced through complements.
        let mut leaves: Vec<Lit> = Vec::new();
        collect_conjunction(old, Lit::new(n, false), &mut leaves);
        // Rebuild each leaf, then combine from shallowest to deepest.
        let mut built: Vec<Lit> = leaves
            .iter()
            .map(|&leaf| build(old, leaf.node(), fresh, memo).complement_if(leaf.is_complemented()))
            .collect();
        let levels = fresh.levels();
        built.sort_by_key(|l| std::cmp::Reverse(levels[l.node() as usize]));
        // Repeatedly AND the two shallowest operands (at the end after the
        // descending sort). Recompute levels lazily: popping from the sorted
        // tail plus pushing the fresh AND keeps the heap property well enough
        // for a near-optimal tree, matching ABC's greedy balance.
        while built.len() > 1 {
            let a = built.pop().expect("len > 1");
            let b = built.pop().expect("len > 1");
            let ab = fresh.and(a, b);
            // Insert keeping descending level order.
            let lv = fresh.levels()[ab.node() as usize];
            let pos = built
                .iter()
                .position(|l| fresh.levels()[l.node() as usize] <= lv)
                .unwrap_or(built.len());
            built.insert(pos, ab);
        }
        built.pop().unwrap_or(Lit::TRUE)
    };
    memo.insert(n, l);
    l
}

/// Collects the leaves of the maximal conjunction reachable from `root`
/// through uncomplemented AND edges.
fn collect_conjunction(aig: &Aig, root: Lit, leaves: &mut Vec<Lit>) {
    if root.is_complemented() || !aig.is_and(root.node()) {
        leaves.push(root);
        return;
    }
    let (f0, f1) = aig.fanins(root.node());
    collect_conjunction(aig, f0, leaves);
    collect_conjunction(aig, f1, leaves);
}

/// Balance + cleanup until the size stops improving (at most `rounds`
/// iterations). A cheap stand-in for ABC's `compress2rs` script.
pub fn compress(aig: &Aig, rounds: usize) -> Aig {
    let mut best = aig.clone();
    best.cleanup();
    for _ in 0..rounds {
        let mut next = balance(&best);
        next.cleanup();
        let smaller = next.num_ands() < best.num_ands();
        let same_size_shallower = next.num_ands() == best.num_ands() && next.depth() < best.depth();
        if !(smaller || same_size_shallower) {
            break;
        }
        best = next;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert!(a.num_inputs() <= 12, "exhaustive check limited");
        for m in 0..(1u64 << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "mismatch at {m:b}");
        }
    }

    #[test]
    fn balance_flattens_chains() {
        // Left-deep AND chain over 8 inputs: depth 7 -> balanced depth 3.
        let mut g = Aig::new(8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let x = g.input(i);
            acc = g.and(acc, x);
        }
        g.add_output(acc);
        assert_eq!(g.depth(), 7);
        let h = balance(&g);
        assert_eq!(h.depth(), 3);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_preserves_xor_logic() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.xor(acc, x);
        }
        let chain = g.and_many(&ins[..3]);
        let f = g.and(acc, !chain);
        g.add_output(f);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_handles_constants_and_multi_outputs() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.and(a, b);
        g.add_output(Lit::TRUE);
        g.add_output(!x);
        g.add_output(c);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn compress_never_grows() {
        let mut g = Aig::new(10);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.and(acc, x);
        }
        let p = g.xor_many(&ins);
        let f = g.or(acc, p);
        g.add_output(f);
        let before = g.num_ands();
        let h = compress(&g, 3);
        assert!(h.num_ands() <= before);
        equivalent_exhaustive(&g, &h);
    }
}
