//! Composable AIG optimization passes.
//!
//! The contest teams post-processed their AIGs with ABC scripts (`resyn2`,
//! `compress2rs`, …) — *sequences* of DAG-aware passes iterated to a
//! fixpoint. This module is the equivalent: a [`Pass`] is one semantics-
//! preserving graph-to-graph transformation, a [`Pipeline`] chains them, and
//! [`Pipeline::run_fixpoint`] iterates the chain while it keeps helping.
//!
//! Available passes:
//!
//! * [`BalancePass`] — depth-minimal restructuring of maximal AND trees
//!   (ABC's `balance`), via [`balance`];
//! * [`RewritePass`] — DAG-aware cut/NPN rewriting with shared-logic gain
//!   accounting ([`crate::rewrite`]), optionally zero-gain;
//! * [`SweepPass`] — simulation-guided equivalence sweeping
//!   ([`crate::sweep`]);
//! * [`CleanupPass`] — drop logic unreachable from the outputs.
//!
//! # Examples
//!
//! Build the default `resyn2`-style pipeline and run it to a fixpoint:
//!
//! ```
//! use lsml_aig::opt::{BalancePass, CleanupPass, Pipeline, RewritePass, SweepPass};
//! use lsml_aig::Aig;
//!
//! // A deliberately redundant graph: two structurally different XORs.
//! let mut g = Aig::new(3);
//! let (a, b, c) = (g.input(0), g.input(1), g.input(2));
//! let x1 = g.xor(a, b);
//! let o = g.or(a, b);
//! let n = g.and(a, b);
//! let x2 = g.and(o, !n); // also a XOR b
//! let f = g.mux(c, x1, !x2);
//! g.add_output(f);
//!
//! let pipeline = Pipeline::resyn(0); // balance | rewrite | sweep | cleanup
//! let h = pipeline.run_fixpoint(&g, 4);
//! assert!(h.num_ands() < g.num_ands());
//! assert_eq!(h.eval(&[true, false, true]), g.eval(&[true, false, true]));
//!
//! // Pipelines compose freely:
//! let custom = Pipeline::new()
//!     .then(BalancePass)
//!     .then(RewritePass::default())
//!     .then(SweepPass::seeded(7))
//!     .then(CleanupPass);
//! assert_eq!(custom.describe(), "balance | rewrite | sweep | cleanup");
//! ```

use std::collections::HashMap;

use crate::aig::Aig;
use crate::lit::Lit;
use crate::rewrite::{rewrite, RewriteConfig};
use crate::sweep::{sweep, SweepConfig};

/// One semantics-preserving AIG transformation.
pub trait Pass: Send + Sync {
    /// Short display name (`"balance"`, `"rewrite"`, …).
    fn name(&self) -> &'static str;

    /// Runs the pass. Implementations must preserve functionality exactly.
    fn run(&self, aig: &Aig) -> Aig;
}

/// ABC-style `balance` as a [`Pass`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &'static str {
        "balance"
    }
    fn run(&self, aig: &Aig) -> Aig {
        balance(aig)
    }
}

/// DAG-aware cut/NPN rewriting as a [`Pass`].
#[derive(Clone, Debug, Default)]
pub struct RewritePass(pub RewriteConfig);

impl RewritePass {
    /// The zero-gain variant (ABC's `rwz`): accepts reshaping replacements
    /// that do not change the node count.
    pub fn zero_gain() -> RewritePass {
        RewritePass(RewriteConfig {
            zero_gain: true,
            ..RewriteConfig::default()
        })
    }
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        if self.0.zero_gain {
            "rewrite -z"
        } else {
            "rewrite"
        }
    }
    fn run(&self, aig: &Aig) -> Aig {
        rewrite(aig, &self.0)
    }
}

/// Simulation-guided equivalence sweeping as a [`Pass`].
#[derive(Clone, Debug, Default)]
pub struct SweepPass(pub SweepConfig);

impl SweepPass {
    /// A sweep with the given signature seed and default limits.
    pub fn seeded(seed: u64) -> SweepPass {
        SweepPass(SweepConfig {
            seed,
            ..SweepConfig::default()
        })
    }
}

impl Pass for SweepPass {
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn run(&self, aig: &Aig) -> Aig {
        sweep(aig, &self.0)
    }
}

/// Dangling-logic removal as a [`Pass`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }
    fn run(&self, aig: &Aig) -> Aig {
        let mut g = aig.clone();
        g.cleanup();
        g
    }
}

/// A sequence of passes applied in order.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn then(mut self, pass: impl Pass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// The default synthesis script, modeled on ABC's `resyn2`:
    /// `balance | rewrite | rewrite -z | sweep | cleanup`. The seed feeds
    /// the sweep's random signature stimulus.
    pub fn resyn(seed: u64) -> Pipeline {
        Pipeline::resyn_with_sweep(SweepConfig {
            seed,
            ..SweepConfig::default()
        })
    }

    /// [`Pipeline::resyn`] with a caller-provided sweep configuration (e.g.
    /// application [`BitColumns`](lsml_pla::BitColumns) stimulus feeding the
    /// signatures) — the single source of truth for the resyn pass list.
    pub fn resyn_with_sweep(sweep: SweepConfig) -> Pipeline {
        Pipeline::new()
            .then(BalancePass)
            .then(RewritePass::default())
            .then(RewritePass::zero_gain())
            .then(SweepPass(sweep))
            .then(CleanupPass)
    }

    /// `name | name | …` for logs and tests.
    pub fn describe(&self) -> String {
        self.passes
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Runs every pass once, in order.
    pub fn run(&self, aig: &Aig) -> Aig {
        let mut current = aig.clone();
        for pass in &self.passes {
            current = pass.run(&current);
        }
        current
    }

    /// Iterates the pipeline until the AND count (then the depth) stops
    /// improving, at most `max_rounds` times. Never returns a graph larger
    /// than the cleaned-up input.
    pub fn run_fixpoint(&self, aig: &Aig, max_rounds: usize) -> Aig {
        let mut best = aig.clone();
        best.cleanup();
        for _ in 0..max_rounds {
            let next = self.run(&best);
            let smaller = next.num_ands() < best.num_ands();
            let same_but_shallower =
                next.num_ands() == best.num_ands() && next.depth() < best.depth();
            if !(smaller || same_but_shallower) {
                break;
            }
            best = next;
        }
        best
    }
}

/// Rebuilds the AIG with every maximal conjunction restructured as a balanced
/// tree (deepest operands combined last). Functionality is preserved; depth
/// typically drops, node count never grows beyond the original cone sizes
/// (structural hashing dedups shared sub-terms).
pub fn balance(aig: &Aig) -> Aig {
    let mut fresh = Aig::new(aig.num_inputs());
    let mut memo: HashMap<u32, Lit> = HashMap::new();
    let outputs: Vec<Lit> = aig.outputs().to_vec();
    let mut result = Vec::with_capacity(outputs.len());
    for o in outputs {
        let l = build(aig, o.node(), &mut fresh, &mut memo).complement_if(o.is_complemented());
        result.push(l);
    }
    for l in result {
        fresh.add_output(l);
    }
    fresh
}

/// Recursively rebuilds node `n` of `old` inside `fresh`.
fn build(old: &Aig, n: u32, fresh: &mut Aig, memo: &mut HashMap<u32, Lit>) -> Lit {
    if let Some(&l) = memo.get(&n) {
        return l;
    }
    let l = if !old.is_and(n) {
        Lit::new(n, false) // constant or input: same index in `fresh`
    } else {
        // Collect the maximal AND-tree rooted here: leaves are edges that are
        // complemented, non-AND, or AND nodes referenced through complements.
        let mut leaves: Vec<Lit> = Vec::new();
        collect_conjunction(old, Lit::new(n, false), &mut leaves);
        // Rebuild each leaf, then combine from shallowest to deepest.
        let mut built: Vec<Lit> = leaves
            .iter()
            .map(|&leaf| build(old, leaf.node(), fresh, memo).complement_if(leaf.is_complemented()))
            .collect();
        let levels = fresh.levels();
        built.sort_by_key(|l| std::cmp::Reverse(levels[l.node() as usize]));
        // Repeatedly AND the two shallowest operands (at the end after the
        // descending sort). Recompute levels lazily: popping from the sorted
        // tail plus pushing the fresh AND keeps the heap property well enough
        // for a near-optimal tree, matching ABC's greedy balance.
        while built.len() > 1 {
            let a = built.pop().expect("len > 1");
            let b = built.pop().expect("len > 1");
            let ab = fresh.and(a, b);
            // Insert keeping descending level order.
            let lv = fresh.levels()[ab.node() as usize];
            let pos = built
                .iter()
                .position(|l| fresh.levels()[l.node() as usize] <= lv)
                .unwrap_or(built.len());
            built.insert(pos, ab);
        }
        built.pop().unwrap_or(Lit::TRUE)
    };
    memo.insert(n, l);
    l
}

/// Collects the leaves of the maximal conjunction reachable from `root`
/// through uncomplemented AND edges.
fn collect_conjunction(aig: &Aig, root: Lit, leaves: &mut Vec<Lit>) {
    if root.is_complemented() || !aig.is_and(root.node()) {
        leaves.push(root);
        return;
    }
    let (f0, f1) = aig.fanins(root.node());
    collect_conjunction(aig, f0, leaves);
    collect_conjunction(aig, f1, leaves);
}

/// Balance + cleanup until the size stops improving (at most `rounds`
/// iterations). A cheap stand-in for ABC's `compress2rs`; for the full
/// DAG-aware script use [`Pipeline::resyn`].
pub fn compress(aig: &Aig, rounds: usize) -> Aig {
    Pipeline::new()
        .then(BalancePass)
        .then(CleanupPass)
        .run_fixpoint(aig, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::equivalent_exhaustive;

    #[test]
    fn balance_flattens_chains() {
        // Left-deep AND chain over 8 inputs: depth 7 -> balanced depth 3.
        let mut g = Aig::new(8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let x = g.input(i);
            acc = g.and(acc, x);
        }
        g.add_output(acc);
        assert_eq!(g.depth(), 7);
        let h = balance(&g);
        assert_eq!(h.depth(), 3);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_preserves_xor_logic() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.xor(acc, x);
        }
        let chain = g.and_many(&ins[..3]);
        let f = g.and(acc, !chain);
        g.add_output(f);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn balance_handles_constants_and_multi_outputs() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.and(a, b);
        g.add_output(Lit::TRUE);
        g.add_output(!x);
        g.add_output(c);
        let h = balance(&g);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn compress_never_grows() {
        let mut g = Aig::new(10);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.and(acc, x);
        }
        let p = g.xor_many(&ins);
        let f = g.or(acc, p);
        g.add_output(f);
        let before = g.num_ands();
        let h = compress(&g, 3);
        assert!(h.num_ands() <= before);
        equivalent_exhaustive(&g, &h);
    }

    #[test]
    fn pipeline_composes_and_describes() {
        let p = Pipeline::resyn(0);
        assert_eq!(
            p.describe(),
            "balance | rewrite | rewrite -z | sweep | cleanup"
        );
        assert_eq!(Pipeline::new().describe(), "");
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let f = g.xor(a, b);
        g.add_output(f);
        let h = Pipeline::new().run(&g);
        equivalent_exhaustive(&g, &h);
        assert_eq!(h.num_ands(), g.num_ands());
    }

    #[test]
    fn resyn_beats_balance_on_redundant_graph() {
        // Three structurally distinct copies of the same function, muxed.
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let x1 = g.xor(a, b);
        let o = g.or(a, b);
        let n = g.and(a, b);
        let x2 = g.and(o, !n);
        let p = g.and(a, !b);
        let q = g.and(!a, b);
        let x3 = g.or(p, q);
        let m1 = g.mux(c, x1, x2);
        let f = g.mux(d, m1, x3);
        g.add_output(f);

        let balanced = balance(&g);
        let piped = Pipeline::resyn(0).run_fixpoint(&g, 4);
        assert!(
            piped.num_ands() < balanced.num_ands(),
            "pipeline {} vs balance {}",
            piped.num_ands(),
            balanced.num_ands()
        );
        equivalent_exhaustive(&g, &piped);
        // The whole graph is one XOR: 3 ANDs.
        assert_eq!(piped.num_ands(), 3);
    }

    #[test]
    fn fixpoint_never_grows() {
        let mut g = Aig::new(6);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and_many(&ins[1..]);
        let f = g.mux(ins[0], x, y);
        g.add_output(f);
        let mut cleaned = g.clone();
        cleaned.cleanup();
        let h = Pipeline::resyn(3).run_fixpoint(&g, 4);
        assert!(h.num_ands() <= cleaned.num_ands());
        equivalent_exhaustive(&g, &h);
    }
}
