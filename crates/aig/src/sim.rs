//! Word-parallel AIG simulation (64 patterns per machine word).
//!
//! Two families of entry points:
//!
//! * pattern-fed ([`eval_patterns`], [`eval_patterns_multi`],
//!   [`pattern_one_counts`]) — transpose a row-major `&[Pattern]` batch into
//!   simulation words on the fly;
//! * column-fed ([`eval_columns`], [`accuracy_columns`]) — consume a
//!   [`BitColumns`] view whose word layout *is* the stimulus format (bit
//!   `k % 64` of word `k / 64` = example `k`), so evaluation involves no
//!   per-call transposition at all. Datasets cache that view
//!   (`Dataset::bit_columns`), making repeated candidate scoring against the
//!   same split almost pure popcount work.

use lsml_pla::{kernels, BitColumns, Pattern};
use rand::Rng;

use crate::aig::Aig;

/// Simulates the AIG on up to 64 patterns at once. `input_words[i]` packs the
/// value of primary input `i` across the patterns (bit `k` = pattern `k`).
/// Returns one packed word per output.
///
/// # Panics
///
/// Panics if `input_words.len() != aig.num_inputs()`.
pub fn simulate_words(aig: &Aig, input_words: &[u64]) -> Vec<u64> {
    let values = node_values_words(aig, input_words);
    aig.outputs()
        .iter()
        .map(|o| {
            let v = values[o.node() as usize];
            if o.is_complemented() {
                !v
            } else {
                v
            }
        })
        .collect()
}

/// Simulates and returns the packed value word of *every node* (indexed by
/// node id), used by passes that inspect internal signal statistics.
///
/// # Panics
///
/// Panics if `input_words.len() != aig.num_inputs()`.
pub fn node_values_words(aig: &Aig, input_words: &[u64]) -> Vec<u64> {
    assert_eq!(
        input_words.len(),
        aig.num_inputs(),
        "input word count mismatch"
    );
    let mut values = vec![0u64; aig.num_nodes()];
    for (i, &w) in input_words.iter().enumerate() {
        values[i + 1] = w;
    }
    for n in (aig.num_inputs() + 1)..aig.num_nodes() {
        let (f0, f1) = aig.fanins(n as u32);
        let v0 = values[f0.node() as usize] ^ if f0.is_complemented() { u64::MAX } else { 0 };
        let v1 = values[f1.node() as usize] ^ if f1.is_complemented() { u64::MAX } else { 0 };
        values[n] = v0 & v1;
    }
    values
}

/// Evaluates an AIG (any output count) on a batch of patterns, 64 at a
/// time. Returns one prediction vector per output, each with one entry per
/// pattern.
///
/// # Panics
///
/// Panics if a pattern's arity differs from the AIG's input count.
pub fn eval_patterns_multi(aig: &Aig, patterns: &[Pattern]) -> Vec<Vec<bool>> {
    let num_outputs = aig.outputs().len();
    let mut out = vec![Vec::with_capacity(patterns.len()); num_outputs];
    let mut input_words = vec![0u64; aig.num_inputs()];
    for chunk in patterns.chunks(64) {
        for w in input_words.iter_mut() {
            *w = 0;
        }
        for (k, p) in chunk.iter().enumerate() {
            assert_eq!(p.len(), aig.num_inputs(), "pattern arity mismatch");
            for (i, word) in input_words.iter_mut().enumerate() {
                if p.get(i) {
                    *word |= 1u64 << k;
                }
            }
        }
        let res = simulate_words(aig, &input_words);
        for (o, word) in res.iter().enumerate() {
            for k in 0..chunk.len() {
                out[o].push((word >> k) & 1 == 1);
            }
        }
    }
    out
}

/// Single-output convenience wrapper over [`eval_patterns_multi`]: returns
/// one prediction per pattern.
///
/// # Panics
///
/// Panics if the AIG does not have exactly one output or a pattern's arity
/// differs from the AIG's input count.
pub fn eval_patterns(aig: &Aig, patterns: &[Pattern]) -> Vec<bool> {
    assert_eq!(aig.outputs().len(), 1, "eval_patterns needs 1 output");
    eval_patterns_multi(aig, patterns)
        .pop()
        .expect("one output")
}

/// Evaluates an AIG against a cached column view, with no per-call
/// transposition: word `w` of input column `i` is already the stimulus word
/// for examples `64w..64w+63`. Returns one packed prediction column per
/// output (same layout as [`BitColumns`]; tail bits cleared).
///
/// # Panics
///
/// Panics if the column view's input count differs from the AIG's.
pub fn eval_columns(aig: &Aig, cols: &BitColumns) -> Vec<Vec<u64>> {
    assert_eq!(
        cols.num_inputs(),
        aig.num_inputs(),
        "column/input count mismatch"
    );
    let stride = cols.words_per_column();
    let num_outputs = aig.outputs().len();
    let mut out = vec![vec![0u64; stride]; num_outputs];
    if cols.num_examples() == 0 {
        return out;
    }
    let mut input_words = vec![0u64; aig.num_inputs()];
    #[allow(clippy::needless_range_loop)] // `w` indexes every column in lockstep
    for w in 0..stride {
        for (i, word) in input_words.iter_mut().enumerate() {
            *word = cols.column(i)[w];
        }
        let mask = if w + 1 == stride {
            cols.tail_mask()
        } else {
            u64::MAX
        };
        let res = simulate_words(aig, &input_words);
        for (o, &word) in res.iter().enumerate() {
            out[o][w] = word & mask;
        }
    }
    out
}

/// Accuracy of a single-output AIG against a column view's labels (fraction
/// of examples predicted correctly; 1.0 on an empty view).
///
/// # Panics
///
/// Panics if the AIG does not have exactly one output or the column view's
/// input count differs from the AIG's.
pub fn accuracy_columns(aig: &Aig, cols: &BitColumns) -> f64 {
    assert_eq!(aig.outputs().len(), 1, "accuracy_columns needs 1 output");
    let preds = eval_columns(aig, cols).pop().expect("one output");
    cols.accuracy_of_packed(&preds)
}

/// Accuracy of arbitrary output cones of one shared graph against a column
/// view's labels: the graph is simulated **once** per stimulus word and every
/// cone's packed prediction column is scored by popcount. This is the batched
/// candidate scorer — for a single-output AIG whose output equals `cones[c]`,
/// entry `c` is exactly [`accuracy_columns`] of that AIG (same packed words,
/// same division), so selection decisions made on shared-graph scores match
/// per-candidate scoring bit for bit.
///
/// # Panics
///
/// Panics if the column view's input count differs from the AIG's.
pub fn cone_accuracies(aig: &Aig, cones: &[crate::lit::Lit], cols: &BitColumns) -> Vec<f64> {
    assert_eq!(
        cols.num_inputs(),
        aig.num_inputs(),
        "column/input count mismatch"
    );
    let stride = cols.words_per_column();
    let mut preds = vec![vec![0u64; stride]; cones.len()];
    if cols.num_examples() > 0 {
        let mut input_words = vec![0u64; aig.num_inputs()];
        #[allow(clippy::needless_range_loop)] // `w` indexes every column in lockstep
        for w in 0..stride {
            for (i, word) in input_words.iter_mut().enumerate() {
                *word = cols.column(i)[w];
            }
            let mask = if w + 1 == stride {
                cols.tail_mask()
            } else {
                u64::MAX
            };
            let values = node_values_words(aig, &input_words);
            for (c, lit) in cones.iter().enumerate() {
                let v =
                    values[lit.node() as usize] ^ if lit.is_complemented() { u64::MAX } else { 0 };
                preds[c][w] = v & mask;
            }
        }
    }
    preds.iter().map(|p| cols.accuracy_of_packed(p)).collect()
}

/// Counts, for every node, how many of the given patterns drive it to one.
/// Returns `(counts, total_patterns)`.
///
/// # Panics
///
/// Panics if a pattern's arity differs from the AIG's input count.
pub fn pattern_one_counts(aig: &Aig, patterns: &[Pattern]) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; aig.num_nodes()];
    let mut input_words = vec![0u64; aig.num_inputs()];
    for chunk in patterns.chunks(64) {
        for w in input_words.iter_mut() {
            *w = 0;
        }
        for (k, p) in chunk.iter().enumerate() {
            assert_eq!(p.len(), aig.num_inputs(), "pattern arity mismatch");
            for (i, word) in input_words.iter_mut().enumerate() {
                if p.get(i) {
                    *word |= 1u64 << k;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        let values = node_values_words(aig, &input_words);
        kernels::accumulate_and_counts(&values, mask, &mut counts);
    }
    (counts, patterns.len() as u64)
}

/// Counts, for every node, how many of `rounds * 64` random patterns drive it
/// to one. Returns `(counts, total_patterns)`.
pub fn random_one_counts<R: Rng + ?Sized>(
    aig: &Aig,
    rounds: usize,
    rng: &mut R,
) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; aig.num_nodes()];
    let mut input_words = vec![0u64; aig.num_inputs()];
    for _ in 0..rounds {
        for w in input_words.iter_mut() {
            *w = rng.gen();
        }
        let values = node_values_words(aig, &input_words);
        kernels::accumulate_and_counts(&values, u64::MAX, &mut counts);
    }
    (counts, rounds as u64 * 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_aig() -> Aig {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        g.add_output(x);
        g
    }

    #[test]
    fn words_match_scalar_eval() {
        let g = xor_aig();
        // Patterns 0..4 in one word: a = 0101, b = 0011.
        let res = simulate_words(&g, &[0b0101, 0b0011]);
        assert_eq!(res[0] & 0xF, 0b0110);
    }

    #[test]
    fn eval_patterns_agrees_with_eval() {
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and(ins[0], x);
        g.add_output(y);
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..200).map(|_| Pattern::random(&mut rng, 5)).collect();
        let batch = eval_patterns(&g, &patterns);
        for (p, &got) in patterns.iter().zip(batch.iter()) {
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(g.eval(&bits)[0], got);
        }
    }

    #[test]
    fn eval_patterns_handles_odd_chunks() {
        let g = xor_aig();
        let patterns: Vec<Pattern> = (0..67).map(|i| Pattern::from_index(i % 4, 2)).collect();
        let preds = eval_patterns(&g, &patterns);
        assert_eq!(preds.len(), 67);
        for (i, p) in patterns.iter().enumerate() {
            assert_eq!(preds[i], p.get(0) ^ p.get(1));
        }
    }

    #[test]
    fn multi_output_eval_matches_scalar() {
        // Two outputs: XOR and AND of the same pair.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        let y = g.and(a, b);
        g.add_output(x);
        g.add_output(y);
        let patterns: Vec<Pattern> = (0..100).map(|i| Pattern::from_index(i % 4, 2)).collect();
        let multi = eval_patterns_multi(&g, &patterns);
        assert_eq!(multi.len(), 2);
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(multi[0][k], p.get(0) ^ p.get(1));
            assert_eq!(multi[1][k], p.get(0) && p.get(1));
        }
    }

    #[test]
    fn eval_columns_matches_eval_patterns() {
        use lsml_pla::Dataset;
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let x = g.xor_many(&ins);
        let y = g.and(ins[0], x);
        g.add_output(y);
        let mut rng = StdRng::seed_from_u64(21);
        for n in [0usize, 1, 64, 67, 200] {
            let mut ds = Dataset::new(5);
            for _ in 0..n {
                ds.push(Pattern::random(&mut rng, 5), rng.gen());
            }
            let cols = ds.bit_columns();
            let packed = eval_columns(&g, &cols).pop().unwrap();
            let row = eval_patterns(&g, ds.patterns());
            for (k, &want) in row.iter().enumerate() {
                let got = (packed[k / 64] >> (k % 64)) & 1 == 1;
                assert_eq!(got, want, "example {k} of {n}");
            }
            // Accuracy path agrees with the row-major scalar one.
            let acc_cols = accuracy_columns(&g, &cols);
            let acc_rows = ds.accuracy_of_slice(&row);
            assert!((acc_cols - acc_rows).abs() < 1e-12);
        }
    }

    #[test]
    fn one_counts_track_bias() {
        // f = a AND b is one on ~25% of random patterns.
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.and(a, b);
        g.add_output(x);
        let mut rng = StdRng::seed_from_u64(3);
        let (counts, total) = random_one_counts(&g, 64, &mut rng);
        let frac = counts[x.node() as usize] as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn complemented_output_counts() {
        let mut g = Aig::new(1);
        let a = g.input(0);
        g.add_output(!a);
        let res = simulate_words(&g, &[0b01]);
        assert_eq!(res[0] & 0b11, 0b10);
    }
}
