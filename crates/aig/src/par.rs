//! In-pass parallelism gate and the runtime environment-knob reference.
//!
//! The synthesis hot paths (wavefront cut enumeration in [`crate::cut`],
//! block simulation and candidate verification in [`crate::sweep`], the
//! exact-canonizer lane walk in [`crate::npn`]) fan work out over the
//! vendored work-stealing pool. Every such fan-out is **bit-identical** to
//! the serial path by construction — work is partitioned into fixed chunks
//! whose results merge by a deterministic, schedule-independent rule — so
//! parallelism is a pure throughput knob, never a semantics knob. This
//! module decides *whether* a pass may fan out at all.
//!
//! # Runtime environment knobs
//!
//! The consolidated reference for every `LSML_*` variable the engine reads
//! (each is read **once**, at first use, and latched for the process):
//!
//! | Knob | Default | Effect |
//! |------|---------|--------|
//! | `LSML_NUM_THREADS` | `available_parallelism()` | Worker count of the process-wide pool (vendored `rayon`). `1` disables the pool: every operation runs strictly inline on the caller. |
//! | `LSML_PAR_PASSES` | `1` (enabled) | Escape hatch for in-pass parallelism. `0`/`false`/`off` forces cut enumeration, sweep and the NPN lane walk to run serially even when the pool has workers. Output is bit-identical either way. |
//! | `LSML_FORCE_SCALAR` | unset | Forces the scalar fallback kernels in `lsml-pla` (`kernels` module), bypassing the SIMD dispatch. |
//! | `LSML_CHECK` | unset | `1` enables the expensive debug verifiers in release builds: AIG invariant sweeps between pipeline passes (`crate::opt`) and CSR audits after cut enumeration (`crate::cut`). |
//! | `LSML_COMPILE_CACHE_BYTES` | 256 MiB | Byte budget of the process-wide sharded compile cache (`lsml-core`, `compile` module). `0` disables caching. |
//! | `LSML_FIXPOINT_CACHE_BYTES` | 8 MiB | Byte budget of the sharded pipeline fixpoint cache ([`crate::opt`]). |
//! | `LSML_LOOM_REPLAY` | unset | In `--cfg lsml_loom` builds: replays a single recorded interleaving (the failure trace printed by the `loom` runtime) instead of exploring. |
//! | `LSML_SERVE_ADDR` | `127.0.0.1:7171` | Listen address of the `lsml-serve` daemon (`lsml-serve` crate, `server` module). |
//! | `LSML_SERVE_WORKERS` | `4` | Worker threads popping the daemon's request queue. |
//! | `LSML_SERVE_QUEUE` | `64` | Bounded request-queue capacity; a full queue sheds with a structured `Overloaded`, it never blocks the reader. |
//! | `LSML_SERVE_CLIENT_TOKENS` | `16` | Per-client outstanding-cost budget (admission-control fairness); one oversized request from an idle client is still admitted. |
//! | `LSML_SERVE_MAX_FRAME` | 16 MiB | Maximum accepted frame payload, clamped to `[64 B, 1 GiB]`; larger declared frames are answered `Malformed` and the connection closed. |
//! | `LSML_SERVE_SNAPSHOT` | unset | Path of the crash-safe cache snapshot (checksummed, temp + fsync + atomic rename). Set: warm-start on boot, snapshot on graceful shutdown. A torn or corrupt file cold-starts. |
//! | `LSML_SERVE_DRAIN_MS` | `5000` | Graceful-shutdown drain watchdog: after this long, in-flight requests are cancelled via their deadline tokens so drain always terminates. |
//! | `LSML_FAULT_SEED` | unset/`0` | Arms the deterministic fault-injection plan (`lsml-serve`, `fault` module): seeded worker panics, stalls and snapshot corruption for the robustness harness, plus the `lsml-suite` per-circuit panic/stall/kill points. `0` or unset disables. |
//! | `LSML_SUITE_UNITS` | `20` | Generated units per circuit family in an `lsml-suite` streaming sweep. |
//! | `LSML_SUITE_SEED` | `1` | Sweep seed every per-unit seed derives from (counter-derived, so the checkpoint cursor alone is a complete resume point). |
//! | `LSML_SUITE_DEADLINE_MS` | `5000` | Per-circuit deadline; a unit that outlives it is cancelled via its token and classified `TimedOut` (never memoized). |
//! | `LSML_SUITE_SAMPLES` | `256` | Training and test sample count per generated unit. |
//! | `LSML_SUITE_NODE_LIMIT` | `300` | AND-gate budget handed to the compiler for every sweep unit. |
//! | `LSML_SUITE_EXTERNAL` | unset | Directory of external `.aag`/`.aig`/`.bench` files to ingest after the generated units; unparseable files are quarantined with a reason, never abort the sweep. |
//! | `LSML_SUITE_CHECKPOINT` | unset | Path of the sweep's crash-safe checkpoint (cursor + stats, checksummed, temp + fsync + atomic rename). Set: the sweep resumes from the last flush after a kill, bit-identically. |
//! | `LSML_SUITE_CHECKPOINT_EVERY` | `64` | Units between periodic checkpoint flushes (`0` = final flush only). |
//! | `LSML_SUITE_OUT` | `BENCH_suite.json` | Output path of the sweep's stats document (accuracy/size distributions by family, failure-class counts, quarantine log). |
//! | `LSML_INGEST_MAX_BYTES` | 8 MiB | File-size cap for external ingestion, checked against metadata before any byte is read. |
//!
//! Modules reading a knob link back here; this table is the single place
//! where defaults are documented.

use loom::sync::OnceLock;

/// Whether in-pass parallel fan-out is allowed (`LSML_PAR_PASSES`, latched
/// at first call; see the [module docs](self) for the full knob table).
///
/// `false` means every pass runs its serial path. `true` means passes *may*
/// fan out — they still run inline when the pool has a single worker.
pub fn par_passes_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("LSML_PAR_PASSES") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    })
}

#[cfg(test)]
thread_local! {
    /// Test-only override of [`effective_workers`] (`0` = no override).
    /// The pool's width is latched process-wide at first use, so tests
    /// that need to drive both the serial and the parallel gates within
    /// one process (the `crate::par_props` identity proptests) set this
    /// instead of `LSML_NUM_THREADS`. Thread-local on purpose: every gate
    /// is consulted on the calling thread before any fan-out, and
    /// concurrently running tests must not perturb each other's gate.
    pub(crate) static TEST_FORCE_WORKERS: std::cell::Cell<usize> =
        const { std::cell::Cell::new(0) };
}

/// Number of workers a pass may fan out over: `1` when
/// [`par_passes_enabled`] is off, otherwise the pool width
/// (`LSML_NUM_THREADS`; starts the pool on first call).
pub fn effective_workers() -> usize {
    #[cfg(test)]
    {
        let forced = TEST_FORCE_WORKERS.with(|c| c.get());
        if forced != 0 {
            return forced;
        }
    }
    if !par_passes_enabled() {
        return 1;
    }
    rayon::current_num_threads().max(1)
}

/// Splits `items` into at most `effective_workers()` chunks of at least
/// `min_per_chunk` items. Returns the chunk size to use (callers partition
/// `0..items` into consecutive ranges of this size — a *fixed* partition,
/// so results are independent of which worker runs which chunk).
pub fn chunk_len(items: usize, min_per_chunk: usize) -> usize {
    let workers = effective_workers();
    if workers <= 1 || items <= min_per_chunk {
        return items.max(1);
    }
    items.div_ceil(workers).max(min_per_chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_covers_all_items_in_at_most_worker_chunks() {
        for items in [1usize, 2, 5, 63, 64, 100, 1000] {
            let len = chunk_len(items, 8);
            assert!(len >= 1);
            let chunks = items.div_ceil(len);
            assert!(chunks <= effective_workers().max(1));
        }
    }

    #[test]
    fn single_item_never_panics() {
        assert_eq!(chunk_len(0, 4), 1);
        assert_eq!(chunk_len(1, 4), 1);
    }
}
