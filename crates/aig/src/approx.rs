//! Random-simulation approximation (Team 1's size-reduction method).
//!
//! When a learnt AIG exceeds the contest's 5000-node limit, Team 1 simulated
//! it with thousands of random patterns and repeatedly replaced the node that
//! most frequently outputs 0 with constant-0 (or, symmetrically, a node that
//! is almost always 1 with constant-1), excluding nodes close to the outputs
//! via a level threshold. The paper reports the accuracy drops by about 5%
//! while removing 3000–5000 nodes.
//!
//! Accuracy is the scarce resource here, so [`reduce`] spends the *free*
//! reductions first: the exact optimization pipeline
//! ([`crate::opt::Pipeline::resyn`]) runs before any node is sacrificed and
//! again after every dropping round — constant propagation from a dropped
//! node exposes new rewriting/sweeping opportunities, and every gate the
//! pipeline reclaims is a gate node-dropping does not have to pay for.

use std::collections::HashMap;

use lsml_pla::Pattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aig::Aig;
use crate::opt::Pipeline;
use crate::sim::{pattern_one_counts, random_one_counts};

/// Configuration for [`reduce`].
#[derive(Clone, Debug)]
pub struct ApproxConfig {
    /// Stop once `num_ands()` is at or below this limit.
    pub node_limit: usize,
    /// Number of 64-pattern simulation rounds per iteration ("thousands of
    /// random input patterns" — the default is 64 rounds = 4096 patterns).
    /// Ignored when `stimulus` is set.
    pub sim_rounds: usize,
    /// Application stimulus: when set, node activity statistics come from
    /// these patterns instead of uniform random ones. Essential on
    /// benchmarks whose inputs are *not* uniform (the ML categories) — the
    /// nodes that look constant under random stimulus are exactly the ones
    /// doing the work on-distribution.
    pub stimulus: Option<Vec<Pattern>>,
    /// Nodes whose level is within `level_guard` of the output's level are
    /// excluded from replacement, to avoid collapsing to a constant.
    pub level_guard: u32,
    /// RNG seed for the random stimulus.
    pub seed: u64,
    /// Upper bound on the number of nodes replaced per simulation round.
    pub batch: usize,
    /// Fixpoint rounds of the exact pipeline run before node-dropping and
    /// after each dropping round (`0` disables the exact passes and
    /// recovers the raw Team-1 dropping loop). The initial run consults the
    /// process-wide fixpoint cache (see [`crate::opt`]): an input AIG that
    /// was already driven to this pipeline's fixpoint — the compile path in
    /// `lsml-core`, for example, always hands over converged graphs — is
    /// recognized by structural fingerprint and skipped automatically, so
    /// callers no longer thread a "skip the prelude" flag by hand.
    pub pipeline_rounds: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            node_limit: 5000,
            sim_rounds: 64,
            stimulus: None,
            level_guard: 4,
            seed: 0,
            batch: 64,
            pipeline_rounds: 2,
        }
    }
}

/// Shrinks the AIG below `cfg.node_limit`, spending exact optimization
/// before accuracy: the resyn pipeline runs first, and only if the graph is
/// still over budget does Team-1-style constant replacement kick in — with
/// the pipeline re-run after every dropping round to reclaim the exact
/// gates constant propagation exposes. Returns the reduced graph (the input
/// is unchanged). If the AIG is already small enough, only the exact
/// passes run.
///
/// When node-dropping engages, the returned AIG computes an *approximation*
/// of the original function — callers trade accuracy for size, which is the
/// paper's central theme.
pub fn reduce(aig: &Aig, cfg: &ApproxConfig) -> Aig {
    reduce_traced(aig, cfg).0
}

/// [`reduce`] plus a flag reporting whether node-dropping actually happened
/// (i.e. whether the result may approximate rather than equal the input).
pub fn reduce_traced(aig: &Aig, cfg: &ApproxConfig) -> (Aig, bool) {
    reduce_traced_with(aig, cfg, &Pipeline::resyn(cfg.seed))
}

/// [`reduce_traced`] against a caller-provided exact pipeline. The compile
/// path passes the pipeline it already drove to a fixpoint (possibly the
/// stimulus-bearing columns variant), so the prelude here is a guaranteed
/// fixpoint-cache hit on a converged input rather than a re-optimization
/// under a differently-fingerprinted pipeline, and the interleaved
/// post-dropping runs stay consistent with the caller's configuration.
pub fn reduce_traced_with(aig: &Aig, cfg: &ApproxConfig, pipeline: &Pipeline) -> (Aig, bool) {
    let mut current = aig.clone();
    current.cleanup();
    if cfg.pipeline_rounds > 0 {
        // A no-op hash probe when the caller already ran this pipeline to a
        // fixpoint on this graph — the fixpoint cache replaces the old
        // manually threaded `skip_initial_pipeline` flag.
        current = pipeline.run_fixpoint(&current, cfg.pipeline_rounds);
    }
    let mut dropped = false;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut guard = cfg.level_guard;
    while current.num_ands() > cfg.node_limit {
        let (counts, total) = match &cfg.stimulus {
            Some(patterns) if !patterns.is_empty() => pattern_one_counts(&current, patterns),
            _ => random_one_counts(&current, cfg.sim_rounds.max(1), &mut rng),
        };
        let levels = current.levels();
        let depth = current.depth();
        let cutoff = depth.saturating_sub(guard);

        // Rank replaceable AND nodes by skew (distance of their one-rate from
        // 50%); the most constant-like nodes cost the least accuracy.
        let mut candidates: Vec<(u64, u32)> = (0..current.num_nodes() as u32)
            .filter(|&n| current.is_and(n) && levels[n as usize] <= cutoff)
            .map(|n| {
                let ones = counts[n as usize];
                let minority = ones.min(total - ones);
                (minority, n)
            })
            .collect();
        if candidates.is_empty() {
            // Everything is inside the guard band; relax it and retry, or
            // give up and return the cleaned current graph.
            if guard == 0 {
                break;
            }
            guard = guard.saturating_sub(1);
            continue;
        }
        candidates.sort_unstable();

        let excess = current.num_ands() - cfg.node_limit;
        let mut take = candidates
            .len()
            .min(cfg.batch.max(1))
            .min((excess / 20).max(1));
        // Replace the `take` most constant-biased nodes — but a replacement
        // that collapses the output to a constant defeats the purpose ("to
        // avoid the result being constant 0 or 1"), so shrink the batch and,
        // at batch one, walk down the candidate list until a survivable
        // substitution is found.
        let mut next = None;
        while next.is_none() {
            let subs: HashMap<u32, bool> = candidates
                .iter()
                .take(take)
                .map(|&(_, n)| (n, counts[n as usize] * 2 > total))
                .collect();
            let attempt = current.substitute_constants(&subs);
            if !all_outputs_constant(&attempt) {
                next = Some(attempt);
            } else if take > 1 {
                take /= 2;
            } else {
                // Try each single candidate in skew order.
                for &(_, n) in candidates.iter().skip(1) {
                    let subs: HashMap<u32, bool> = [(n, counts[n as usize] * 2 > total)].into();
                    let attempt = current.substitute_constants(&subs);
                    if !all_outputs_constant(&attempt) && attempt.num_ands() < current.num_ands() {
                        next = Some(attempt);
                        break;
                    }
                }
                if next.is_none() {
                    // No survivable replacement left; accept the best
                    // constant-free graph we have.
                    return (current, dropped);
                }
            }
        }
        let mut next = next.expect("loop sets next");
        // Reclaim exact gates the constants exposed before dropping more.
        if cfg.pipeline_rounds > 0 {
            next = pipeline.run_fixpoint(&next, 1);
        }
        // substitute_constants + cleanup must make progress; if constant
        // propagation somehow removed nothing, force progress by giving up.
        if next.num_ands() >= current.num_ands() {
            break;
        }
        dropped = true;
        current = next;
    }
    (current, dropped)
}

/// Whether every primary output is a constant literal.
fn all_outputs_constant(aig: &Aig) -> bool {
    aig.outputs().iter().all(|o| o.is_constant())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;
    use lsml_pla::Pattern;
    use rand::Rng;

    /// A deliberately bulky circuit: popcount-based threshold over 48 inputs.
    fn bulky() -> Aig {
        let mut g = Aig::new(48);
        let ins = g.inputs();
        let f = circuits::at_least(&mut g, &ins, 24);
        let p = circuits::parity(&mut g, &ins);
        let out = g.and(f, p);
        g.add_output(out);
        g
    }

    #[test]
    fn shrinks_below_limit() {
        let g = bulky();
        assert!(g.num_ands() > 100);
        let cfg = ApproxConfig {
            node_limit: 100,
            ..ApproxConfig::default()
        };
        let small = reduce(&g, &cfg);
        assert!(small.num_ands() <= 100, "got {}", small.num_ands());
        assert_eq!(small.num_inputs(), 48);
        assert_eq!(small.outputs().len(), 1);
    }

    #[test]
    fn preserves_majority_of_behaviour() {
        let g = bulky();
        let cfg = ApproxConfig {
            node_limit: g.num_ands() * 3 / 4,
            ..ApproxConfig::default()
        };
        let small = reduce(&g, &cfg);
        let mut rng = StdRng::seed_from_u64(99);
        let mut agree = 0usize;
        let n = 2000;
        for _ in 0..n {
            let p = Pattern::random(&mut rng, 48);
            let bits: Vec<bool> = p.iter().collect();
            if g.eval(&bits) == small.eval(&bits) {
                agree += 1;
            }
        }
        // Light approximation should agree on a clear majority of patterns.
        assert!(agree as f64 / n as f64 > 0.7, "agreement {agree}/{n}");
    }

    #[test]
    fn small_graph_is_untouched() {
        let mut g = Aig::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.xor(a, b);
        g.add_output(x);
        let out = reduce(&g, &ApproxConfig::default());
        assert_eq!(out.num_ands(), 3);
        for v in 0..4u64 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            assert_eq!(g.eval(&bits), out.eval(&bits));
        }
    }

    #[test]
    fn exact_pipeline_runs_before_dropping() {
        // Two structurally different parity cones combined: the duplicate
        // is exact redundancy, so the budget between the optimized and the
        // raw size must be met with *zero* error — no node-dropping.
        let mut g = Aig::new(12);
        let ins = g.inputs();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = g.xor(acc, x); // left-deep chain
        }
        let balanced = g.xor_many(&ins); // balanced tree, different shape
        let f = g.and(acc, balanced); // == parity
        g.add_output(f);
        let raw = g.num_ands();
        let cfg = ApproxConfig {
            node_limit: raw * 3 / 4,
            ..ApproxConfig::default()
        };
        let small = reduce(&g, &cfg);
        assert!(small.num_ands() <= cfg.node_limit);
        for m in 0..(1u64 << 12) {
            let bits: Vec<bool> = (0..12).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(g.eval(&bits), small.eval(&bits), "accuracy was sacrificed");
        }
        // The raw dropping loop (pipeline disabled) cannot do that.
        let raw_cfg = ApproxConfig {
            pipeline_rounds: 0,
            ..cfg
        };
        let dropped = reduce(&g, &raw_cfg);
        let mut mismatch = false;
        for m in (0..(1u64 << 12)).step_by(7) {
            let bits: Vec<bool> = (0..12).map(|i| (m >> i) & 1 == 1).collect();
            if g.eval(&bits) != dropped.eval(&bits) {
                mismatch = true;
                break;
            }
        }
        assert!(mismatch, "node-dropping alone should have cost accuracy");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = bulky();
        let cfg = ApproxConfig {
            node_limit: 150,
            seed: 7,
            ..ApproxConfig::default()
        };
        let a = reduce(&g, &cfg);
        let b = reduce(&g, &cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let bits: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
    }
}
