//! Property tests pinning every parallel in-pass path to its serial
//! counterpart (see [`crate::par`] for the gates and the knob table).
//!
//! The pool's width is latched process-wide, so these tests drive the
//! serial/parallel decision through the thread-local
//! [`crate::par::TEST_FORCE_WORKERS`] override — workers `1` versus `4`
//! within one process — plus the crate-internal force hooks
//! (`enumerate_with`, `sweep_with_mode`) that bypass the size thresholds.
//! Identity must hold whether or not a graph clears those thresholds, so
//! the generated graphs straddle them.
//!
//! Each leg runs on a fresh `std::thread` so the sweep's thread-local
//! signature cache starts cold on both sides of every comparison.

use crate::aig::Aig;
use crate::cut::{CutArena, CutConfig};
use crate::lit::Lit;
use crate::opt::{BalancePass, CleanupPass, Pipeline, RewritePass, SweepPass};
use crate::par::TEST_FORCE_WORKERS;
use crate::sweep::{sweep_with_mode, SweepConfig};
use proptest::prelude::*;

const NUM_INPUTS: usize = 6;

/// Deterministically folds a generated op list into an AIG over
/// [`NUM_INPUTS`] inputs. XOR ops make the graph multi-level quickly, OR
/// and inverted-AND ops seed complement edges, and the last four literals
/// become outputs so cleanup cannot erase the whole graph.
fn build(ops: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new(NUM_INPUTS);
    let mut pool: Vec<Lit> = g.inputs();
    for &(kind, a, b) in ops {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let lit = match kind % 4 {
            0 => g.and(x, y),
            1 => g.and(x, !y),
            2 => g.xor(x, y),
            _ => !g.and(!x, !y),
        };
        pool.push(lit);
    }
    for &l in pool.iter().rev().take(4) {
        g.add_output(l);
    }
    g
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<(u8, u16, u16)>> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..max)
}

/// Runs `f` on a fresh thread with the worker-gate override set to `n`.
fn on_thread_with_workers<T: Send + 'static>(
    n: usize,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    std::thread::spawn(move || {
        TEST_FORCE_WORKERS.with(|c| c.set(n));
        f()
    })
    .join()
    .expect("worker-gated leg panicked")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wavefront cut enumeration reproduces the serial CSR buffers
    /// byte for byte at k = 4 and k = 6, on arbitrary graphs.
    #[test]
    fn cut_arena_bytes_identical_serial_vs_wavefront(ops in arb_ops(300)) {
        let g = build(&ops);
        for k in [4usize, 6] {
            let cfg = CutConfig { k, ..CutConfig::default() };
            let g2 = g.clone();
            let serial = on_thread_with_workers(1, move || {
                let mut a = CutArena::new();
                a.enumerate_with(&g2, &cfg, false);
                a.csr_bytes()
            });
            let g2 = g.clone();
            let wave = on_thread_with_workers(4, move || {
                let mut a = CutArena::new();
                a.enumerate_with(&g2, &cfg, true);
                a.csr_bytes()
            });
            prop_assert_eq!(&serial, &wave, "CSR bytes diverged at k={}", k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel sweep (wavefront simulation + per-bucket verification
    /// fan-out) returns a node-identical graph to the serial sweep.
    #[test]
    fn sweep_identical_serial_vs_parallel(ops in arb_ops(260), seed in 0u64..16) {
        let g = build(&ops);
        let cfg = SweepConfig { seed, ..SweepConfig::default() };
        let (g2, c2) = (g.clone(), cfg.clone());
        let serial = on_thread_with_workers(1, move || {
            sweep_with_mode(&g2, &c2, false).structural_fingerprint()
        });
        let (g2, c2) = (g.clone(), cfg.clone());
        let par = on_thread_with_workers(4, move || {
            sweep_with_mode(&g2, &c2, true).structural_fingerprint()
        });
        prop_assert_eq!(serial, par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-pipeline identity under worker gates 1 versus 4: balance,
    /// rewrite (`-z` included), sweep and cleanup produce node-identical
    /// output at k = 4 and k = 6, and the result stays equivalent to the
    /// input graph.
    #[test]
    fn pipeline_identical_across_worker_gate(
        ops in arb_ops(200),
        k in (0usize..2).prop_map(|i| if i == 0 { 4 } else { 6 }),
        zero_gain in any::<bool>(),
        seed in 0u64..8,
    ) {
        let g = build(&ops);
        let run = move |g: &Aig| {
            let rewrite = if zero_gain {
                RewritePass::zero_gain()
            } else {
                RewritePass::default()
            };
            Pipeline::new()
                .then(BalancePass)
                .then(rewrite.with_cut_size(k))
                .then(SweepPass::seeded(seed))
                .then(CleanupPass)
                .run(g)
        };
        let g2 = g.clone();
        let one = on_thread_with_workers(1, move || run(&g2));
        let g2 = g.clone();
        let four = on_thread_with_workers(4, move || run(&g2));
        prop_assert_eq!(
            one.structural_fingerprint(),
            four.structural_fingerprint(),
            "pipeline output diverged at k={} zero_gain={}", k, zero_gain
        );
        crate::testutil::equivalent_exhaustive(&g, &one);
    }
}
