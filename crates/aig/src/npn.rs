//! NPN canonization of 4-input functions and the optimal-structure library.
//!
//! Two 4-input functions are NPN-equivalent when one becomes the other under
//! some input **N**egation, input **P**ermutation, and output **N**egation.
//! The 65 536 four-input functions collapse into 222 NPN classes, so a
//! rewriting engine only needs one good AIG structure per *class*: a cut
//! whose function canonizes into a known class is replaced by the class
//! structure with the inverse transform applied at its boundary (ABC's
//! `rewrite -K 4` keeps exactly such a library).
//!
//! Canonization here is exact brute force over all 768 transforms (24
//! permutations x 16 input-negation masks x 2 output phases), memoized per
//! truth table. Class structures are synthesized once per process — Shannon
//! decomposition over every variable order and output phase, structurally
//! hashed, keeping the cheapest — and shared behind a global [`NpnLibrary`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::aig::Aig;
use crate::cut::{cofactor0, cofactor1};
use crate::lit::Lit;

/// All 24 permutations of four elements, generated in lexicographic order.
fn permutations() -> &'static [[u8; 4]; 24] {
    static PERMS: OnceLock<[[u8; 4]; 24]> = OnceLock::new();
    PERMS.get_or_init(|| {
        let mut out = [[0u8; 4]; 24];
        let mut k = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    for d in 0..4u8 {
                        if a != b && a != c && a != d && b != c && b != d && c != d {
                            out[k] = [a, b, c, d];
                            k += 1;
                        }
                    }
                }
            }
        }
        out
    })
}

/// One NPN transform: `apply(tt, t)` computes `g` with
/// `g(y0..y3) = tt(x0..x3) ^ output_neg` where
/// `x_i = y[perm[i]] ^ input_neg[i]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnTransform {
    /// `perm[i]` is the canonical variable feeding original variable `i`.
    pub perm: [u8; 4],
    /// Bit `i` complements original variable `i` on the way in.
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub const IDENTITY: NpnTransform = NpnTransform {
        perm: [0, 1, 2, 3],
        input_neg: 0,
        output_neg: false,
    };
}

/// A canonized function: the class representative and the transform that
/// maps the original table onto it (`canon == apply(tt, transform)`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnClass {
    /// The class-representative truth table (minimum over all transforms).
    pub canon: u16,
    /// The transform achieving it.
    pub transform: NpnTransform,
}

/// Applies an NPN transform to a truth table (see [`NpnTransform`]).
pub fn apply(tt: u16, t: &NpnTransform) -> u16 {
    let mut g = 0u16;
    for m in 0..16u16 {
        let mut idx = 0u16;
        for i in 0..4 {
            let y = (m >> t.perm[i]) & 1;
            let x = y ^ ((u16::from(t.input_neg) >> i) & 1);
            idx |= x << i;
        }
        let bit = ((tt >> idx) & 1) ^ u16::from(t.output_neg);
        g |= bit << m;
    }
    g
}

/// Exact NPN canonization: the minimum table over all 768 transforms.
pub fn canonize(tt: u16) -> NpnClass {
    let mut best = NpnClass {
        canon: u16::MAX,
        transform: NpnTransform::IDENTITY,
    };
    for perm in permutations() {
        for input_neg in 0..16u8 {
            for output_neg in [false, true] {
                let t = NpnTransform {
                    perm: *perm,
                    input_neg,
                    output_neg,
                };
                let cand = apply(tt, &t);
                if cand < best.canon {
                    best = NpnClass {
                        canon: cand,
                        transform: t,
                    };
                }
            }
        }
    }
    best
}

/// Synthesizes a small AIG (4 inputs, 1 output) computing `tt`: Shannon
/// decomposition tried over all 24 variable orders and both output phases,
/// with structural hashing sharing cofactor cones; the cheapest (fewest
/// ANDs, then shallowest) wins.
fn synthesize(tt: u16) -> Aig {
    let mut best: Option<Aig> = None;
    for perm in permutations() {
        for flip in [false, true] {
            let target = if flip { !tt } else { tt };
            let mut g = Aig::new(4);
            let srcs: [Lit; 4] = [g.input(0), g.input(1), g.input(2), g.input(3)];
            let out = shannon(&mut g, target, &srcs, perm, 4);
            g.add_output(out.complement_if(flip));
            g.cleanup();
            let better = match &best {
                None => true,
                Some(b) => {
                    g.num_ands() < b.num_ands()
                        || (g.num_ands() == b.num_ands() && g.depth() < b.depth())
                }
            };
            if better {
                best = Some(g);
            }
        }
    }
    best.expect("at least one synthesis attempt")
}

/// Recursive Shannon expansion of `tt` decomposing on `order[k - 1]`,
/// skipping variables the table does not depend on. Complementary cofactors
/// become an XOR with the decomposition variable (Davio-style), which keeps
/// parity-like classes at their optimal size instead of duplicating cones.
fn shannon(g: &mut Aig, tt: u16, srcs: &[Lit; 4], order: &[u8; 4], k: usize) -> Lit {
    if tt == 0 {
        return Lit::FALSE;
    }
    if tt == 0xFFFF {
        return Lit::TRUE;
    }
    debug_assert!(k > 0, "non-constant table with no variables left");
    let var = order[k - 1] as usize;
    let lo = cofactor0(tt, var);
    let hi = cofactor1(tt, var);
    if lo == hi {
        return shannon(g, lo, srcs, order, k - 1);
    }
    if lo == !hi {
        let l = shannon(g, lo, srcs, order, k - 1);
        return g.xor(srcs[var], l);
    }
    let l = shannon(g, lo, srcs, order, k - 1);
    let h = shannon(g, hi, srcs, order, k - 1);
    g.mux(srcs[var], h, l)
}

/// One library lookup: the canonization of a cut function plus the shared
/// structure implementing its class representative.
#[derive(Clone)]
pub struct LibEntry {
    /// The canonization of the looked-up table.
    pub class: NpnClass,
    /// A 4-input, 1-output AIG computing `class.canon`.
    pub structure: Arc<Aig>,
}

impl LibEntry {
    /// Maps cut-leaf literals onto the structure's four inputs: canonical
    /// input `perm[i]` is fed `leaf_lits[i] ^ input_neg[i]`. Unused
    /// canonical inputs receive whatever placeholder sits in `leaf_lits`
    /// (the structure provably does not read them).
    pub fn input_map(&self, leaf_lits: &[Lit; 4]) -> [Lit; 4] {
        let t = &self.class.transform;
        let mut m = [Lit::FALSE; 4];
        for i in 0..4 {
            m[t.perm[i] as usize] = leaf_lits[i].complement_if((t.input_neg >> i) & 1 == 1);
        }
        m
    }

    /// Whether the structure's output must be complemented to recover the
    /// original function.
    pub fn output_complement(&self) -> bool {
        self.class.transform.output_neg
    }
}

/// The process-wide structure library: canonization results and class
/// structures are computed once and memoized. Every rewriting call shares
/// the same instance via [`NpnLibrary::global`].
#[derive(Default)]
pub struct NpnLibrary {
    canon_memo: Mutex<HashMap<u16, NpnClass>>,
    structures: Mutex<HashMap<u16, Arc<Aig>>>,
}

impl NpnLibrary {
    /// The shared process-wide library.
    pub fn global() -> &'static NpnLibrary {
        static LIB: OnceLock<NpnLibrary> = OnceLock::new();
        LIB.get_or_init(NpnLibrary::default)
    }

    /// Number of distinct NPN classes materialized so far.
    pub fn num_classes(&self) -> usize {
        self.structures.lock().expect("library lock").len()
    }

    /// Canonizes `tt` (memoized) and returns the class structure
    /// (synthesized on first encounter of the class). Both locks are held
    /// only for the map probe/insert — canonization and synthesis run
    /// unlocked, so concurrent rewriting passes never serialize behind a
    /// 48-attempt synthesis (a racing thread may compute a duplicate, which
    /// is discarded; results are deterministic either way). Callers in a
    /// hot loop should additionally keep a pass-local cache keyed by raw
    /// table to avoid repeated lock traffic.
    pub fn entry(&self, tt: u16) -> LibEntry {
        let cached = self
            .canon_memo
            .lock()
            .expect("library lock")
            .get(&tt)
            .copied();
        let class = cached.unwrap_or_else(|| {
            let c = canonize(tt);
            self.canon_memo.lock().expect("library lock").insert(tt, c);
            c
        });
        let cached = self
            .structures
            .lock()
            .expect("library lock")
            .get(&class.canon)
            .cloned();
        let structure = cached.unwrap_or_else(|| {
            let s = Arc::new(synthesize(class.canon));
            self.structures
                .lock()
                .expect("library lock")
                .entry(class.canon)
                .or_insert(s)
                .clone()
        });
        LibEntry { class, structure }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Truth table computed by a 4-input, 1-output AIG.
    fn aig_tt(g: &Aig) -> u16 {
        let mut tt = 0u16;
        for m in 0..16u16 {
            let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            if g.eval(&bits)[0] {
                tt |= 1 << m;
            }
        }
        tt
    }

    #[test]
    fn apply_identity_is_identity() {
        for tt in [0x0000u16, 0xFFFF, 0x6996, 0x8000, 0x1234] {
            assert_eq!(apply(tt, &NpnTransform::IDENTITY), tt);
        }
    }

    #[test]
    fn canonization_is_class_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let tt: u16 = rng.gen();
            let canon = canonize(tt).canon;
            // Any transform of tt canonizes to the same representative.
            let t = NpnTransform {
                perm: permutations()[rng.gen_range(0..24usize)],
                input_neg: rng.gen_range(0..16u8),
                output_neg: rng.gen(),
            };
            assert_eq!(canonize(apply(tt, &t)).canon, canon, "tt {tt:04x}");
            // And the recorded transform reproduces the representative.
            let c = canonize(tt);
            assert_eq!(apply(tt, &c.transform), c.canon);
        }
    }

    #[test]
    fn structures_compute_their_class() {
        let mut rng = StdRng::seed_from_u64(9);
        let lib = NpnLibrary::global();
        for _ in 0..40 {
            let tt: u16 = rng.gen();
            let entry = lib.entry(tt);
            assert_eq!(aig_tt(&entry.structure), entry.class.canon, "tt {tt:04x}");
        }
    }

    #[test]
    fn instantiation_recovers_original_function() {
        // Feeding the structure through input_map + output_complement must
        // reproduce the *original* (pre-canonization) function exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let lib = NpnLibrary::global();
        for _ in 0..40 {
            let tt: u16 = rng.gen();
            let entry = lib.entry(tt);
            let mut host = Aig::new(4);
            let leaves = [host.input(0), host.input(1), host.input(2), host.input(3)];
            let imap = entry.input_map(&leaves);
            let outs = host.append(&entry.structure, &imap);
            host.add_output(outs[0].complement_if(entry.output_complement()));
            assert_eq!(aig_tt(&host), tt, "tt {tt:04x}");
        }
    }

    #[test]
    fn known_structures_are_tight() {
        let lib = NpnLibrary::global();
        // AND2 (tt over vars 0,1) costs one node; XOR2 three; MUX three.
        let and2 = 0xAAAA & 0xCCCC;
        let xor2 = 0xAAAA ^ 0xCCCC;
        let mux = (0xF0F0 & 0xAAAA) | (!0xF0F0 & 0xCCCCu16);
        for (tt, max) in [(and2, 1), (xor2, 3), (mux, 3), (0x6996u16, 9)] {
            let e = lib.entry(tt);
            assert!(
                e.structure.num_ands() <= max,
                "class {:04x} uses {} ANDs (max {max})",
                e.class.canon,
                e.structure.num_ands()
            );
        }
    }

    #[test]
    fn constant_and_degenerate_tables() {
        let lib = NpnLibrary::global();
        assert_eq!(lib.entry(0x0000).structure.num_ands(), 0);
        assert_eq!(lib.entry(0xFFFF).structure.num_ands(), 0);
        assert_eq!(lib.entry(0xAAAA).structure.num_ands(), 0); // f = x0
        assert_eq!(lib.entry(!0xAAAAu16).structure.num_ands(), 0); // f = !x0
    }
}
