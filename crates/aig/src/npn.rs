//! NPN canonization (exact at 4 inputs, semi-canonical at 5–6) and the
//! optimal-structure library.
//!
//! Two functions are NPN-equivalent when one becomes the other under some
//! input **N**egation, input **P**ermutation, and output **N**egation. The
//! 65 536 four-input functions collapse into 222 NPN classes, so a rewriting
//! engine only needs one good AIG structure per *class*: a cut whose
//! function canonizes into a known class is replaced by the class structure
//! with the inverse transform applied at its boundary (ABC's `rewrite -K 4`
//! keeps exactly such a library).
//!
//! # Canonization and the fallback contract
//!
//! Exact canonization is brute force over every transform — 768 for four
//! variables, 92 160 for six. That is affordable once per *class* but not
//! once per *cut*, so the hot path ([`NpnLibrary::entry6`], used by
//! [`crate::rewrite`]) never brute-forces:
//!
//! * **support ≤ 4** — the semi-canonical form *is* the exact canonical
//!   form: the 16-bit projection goes through the memoized 768-transform
//!   canonizer (one map probe after the first encounter of a table) and the
//!   222 shared 4-input class structures are reused directly;
//! * **support 5–6** — [`semi_canonize`] computes a greedy, ABC-style
//!   phase/permutation normal form in a few dozen bitwise word operations:
//!   output phase by onset count, input phases by cofactor-count skew,
//!   variable order by bubble passes that also accept value-decreasing
//!   ties. The greedy key is *semi*-canonical: NPN-equivalent tables
//!   usually, but not always, share it.
//! * **library misses only** — when a semi-canonical key has no structure
//!   yet, the library falls back to the memoized exact canonizer
//!   ([`canonize6`], Heap's-algorithm walk with one delta-swap per step) to
//!   identify the true class, so keys of the same class share one
//!   synthesized structure; the per-key transform is composed and cached,
//!   and every later lookup of that key is a single map probe.
//!
//! The structure library is keyed by the semi-canonical form; exact
//! canonization results and class structures are memoized process-wide
//! behind [`NpnLibrary::global`].

use std::collections::HashMap;

use loom::sync::{Arc, Mutex, OnceLock};

use crate::aig::Aig;
use crate::cut::{cofactor0, cofactor1, flip_var, swap_down, MAX_LEAVES, VAR_TT};
use crate::lit::Lit;

/// Broadcasts a 4-variable table through the 64-bit vacuous-extended layout.
pub fn broadcast16(tt: u16) -> u64 {
    u64::from(tt) * 0x0001_0001_0001_0001
}

/// Number of variables a vacuous-extended table actually depends on — the
/// highest depended-on variable index plus one.
pub fn support_size(tt: u64) -> usize {
    (0..MAX_LEAVES)
        .rev()
        .find(|&v| cofactor0(tt, v) != cofactor1(tt, v))
        .map_or(0, |v| v + 1)
}

/// All 24 permutations of four elements, generated in lexicographic order.
fn permutations() -> &'static [[u8; 4]; 24] {
    static PERMS: OnceLock<[[u8; 4]; 24]> = OnceLock::new();
    PERMS.get_or_init(|| {
        let mut out = [[0u8; 4]; 24];
        let mut k = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    for d in 0..4u8 {
                        if a != b && a != c && a != d && b != c && b != d && c != d {
                            out[k] = [a, b, c, d];
                            k += 1;
                        }
                    }
                }
            }
        }
        out
    })
}

/// One 4-variable NPN transform: `apply(tt, t)` computes `g` with
/// `g(y0..y3) = tt(x0..x3) ^ output_neg` where
/// `x_i = y[perm[i]] ^ input_neg[i]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnTransform {
    /// `perm[i]` is the canonical variable feeding original variable `i`.
    pub perm: [u8; 4],
    /// Bit `i` complements original variable `i` on the way in.
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub const IDENTITY: NpnTransform = NpnTransform {
        perm: [0, 1, 2, 3],
        input_neg: 0,
        output_neg: false,
    };
}

/// A canonized 4-variable function: the class representative and the
/// transform that maps the original table onto it
/// (`canon == apply(tt, transform)`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnClass {
    /// The class-representative truth table (minimum over all transforms).
    pub canon: u16,
    /// The transform achieving it.
    pub transform: NpnTransform,
}

/// Applies a 4-variable NPN transform to a truth table (see
/// [`NpnTransform`]).
pub fn apply(tt: u16, t: &NpnTransform) -> u16 {
    let mut g = 0u16;
    for m in 0..16u16 {
        let mut idx = 0u16;
        for i in 0..4 {
            let y = (m >> t.perm[i]) & 1;
            let x = y ^ ((u16::from(t.input_neg) >> i) & 1);
            idx |= x << i;
        }
        let bit = ((tt >> idx) & 1) ^ u16::from(t.output_neg);
        g |= bit << m;
    }
    g
}

/// Exact 4-variable NPN canonization: the minimum table over all 768
/// transforms. Hot paths should go through the memoized
/// [`NpnLibrary::entry6`] instead of calling this per cut.
pub fn canonize(tt: u16) -> NpnClass {
    let mut best = NpnClass {
        canon: u16::MAX,
        transform: NpnTransform::IDENTITY,
    };
    for perm in permutations() {
        for input_neg in 0..16u8 {
            for output_neg in [false, true] {
                let t = NpnTransform {
                    perm: *perm,
                    input_neg,
                    output_neg,
                };
                let cand = apply(tt, &t);
                if cand < best.canon {
                    best = NpnClass {
                        canon: cand,
                        transform: t,
                    };
                }
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Six-variable transforms.
// ---------------------------------------------------------------------------

/// One 6-variable NPN transform with the same semantics as
/// [`NpnTransform`]: `apply6(tt, t)` computes `g` with
/// `g(y0..y5) = tt(x0..x5) ^ output_neg`, `x_i = y[perm[i]] ^ input_neg[i]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnTransform6 {
    /// `perm[i]` is the canonical variable feeding original variable `i`.
    pub perm: [u8; 6],
    /// Bit `i` complements original variable `i` on the way in.
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform6 {
    /// The identity transform.
    pub const IDENTITY: NpnTransform6 = NpnTransform6 {
        perm: [0, 1, 2, 3, 4, 5],
        input_neg: 0,
        output_neg: false,
    };

    /// Lifts a 4-variable transform (vars 4 and 5 untouched).
    pub fn from4(t: &NpnTransform) -> NpnTransform6 {
        NpnTransform6 {
            perm: [t.perm[0], t.perm[1], t.perm[2], t.perm[3], 4, 5],
            input_neg: t.input_neg,
            output_neg: t.output_neg,
        }
    }

    /// The composition `t2 ∘ self`: if `apply6(tt, self) == mid` and
    /// `apply6(mid, t2) == out`, then `apply6(tt, result) == out`.
    pub fn then(&self, t2: &NpnTransform6) -> NpnTransform6 {
        let mut perm = [0u8; 6];
        let mut neg = 0u8;
        for (i, p) in perm.iter_mut().enumerate() {
            let mid = self.perm[i] as usize;
            *p = t2.perm[mid];
            let bit = ((self.input_neg >> i) & 1) ^ ((t2.input_neg >> mid) & 1);
            neg |= bit << i;
        }
        NpnTransform6 {
            perm,
            input_neg: neg,
            output_neg: self.output_neg ^ t2.output_neg,
        }
    }
}

/// Applies a 6-variable NPN transform (reference implementation, one minterm
/// at a time — used by tests and the exact canonizer's verification, never
/// on the per-cut hot path).
pub fn apply6(tt: u64, t: &NpnTransform6) -> u64 {
    let mut g = 0u64;
    for m in 0..64u64 {
        let mut idx = 0u64;
        for i in 0..6 {
            let y = (m >> t.perm[i]) & 1;
            let x = y ^ ((u64::from(t.input_neg) >> i) & 1);
            idx |= x << i;
        }
        let bit = ((tt >> idx) & 1) ^ u64::from(t.output_neg);
        g |= bit << m;
    }
    g
}

/// A semi-canonized function: the key the structure library is indexed by
/// and the transform mapping the original table onto it
/// (`key == apply6(tt, transform)`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SemiNpn {
    /// The library key (exact canonical at support ≤ 4, greedy at 5–6).
    pub key: u64,
    /// The transform achieving it.
    pub transform: NpnTransform6,
}

/// Semi-canonical NPN form. For tables with support ≤ 4 this **is** the
/// exact canonical form (the 16-bit projection goes through [`canonize`],
/// so every function of an NPN class maps to the same key — the property
/// the rewrite engine's library relies on). For support 5–6 it is the
/// greedy ABC-style normal form described in the module docs: cheap,
/// deterministic, class-collapsing in the common case but not guaranteed
/// canonical — the library deduplicates the remainder via [`canonize6`] on
/// misses.
pub fn semi_canonize(tt: u64) -> SemiNpn {
    if support_size(tt) <= 4 {
        let class = canonize(tt as u16);
        return SemiNpn {
            key: broadcast16(class.canon),
            transform: NpnTransform6::from4(&class.transform),
        };
    }
    semi_canonize_wide(tt)
}

/// The greedy normalization for 5–6-variable support (see
/// [`semi_canonize`]).
fn semi_canonize_wide(tt: u64) -> SemiNpn {
    let mut t = tt;
    let mut tr = NpnTransform6::IDENTITY;

    // Output phase: at most half the minterms on; break the tie towards the
    // smaller table value.
    let ones = t.count_ones();
    if ones > 32 || (ones == 32 && !t < t) {
        t = !t;
        tr.output_neg = true;
    }

    // Input phases: concentrate the onset into the negative cofactor of
    // every variable (flip when the positive cofactor holds more ones).
    for (p, &var_tt) in VAR_TT.iter().enumerate() {
        let c1 = (t & var_tt).count_ones();
        let c0 = (t & !var_tt).count_ones();
        if c1 > c0 {
            t = flip_var(t, p);
            // Record the flip against the original variable feeding
            // position p.
            for i in 0..6 {
                if tr.perm[i] as usize == p {
                    tr.input_neg ^= 1 << i;
                }
            }
        }
    }

    // Permutation: bubble passes ordering positions by ascending positive-
    // cofactor count, accepting equal-count swaps that strictly decrease
    // the table value. Each accepted swap strictly decreases the
    // (count-sequence, table) pair lexicographically, so the loop
    // terminates; the bound is a safety net.
    for _ in 0..64 {
        let mut changed = false;
        for p in 0..5 {
            let a = (t & VAR_TT[p]).count_ones();
            let b = (t & VAR_TT[p + 1]).count_ones();
            let swapped = swap_down(t, p);
            if b < a || (a == b && swapped < t) {
                t = swapped;
                for i in 0..6 {
                    if tr.perm[i] as usize == p {
                        tr.perm[i] = (p + 1) as u8;
                    } else if tr.perm[i] as usize == p + 1 {
                        tr.perm[i] = p as u8;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    SemiNpn {
        key: t,
        transform: tr,
    }
}

/// Exact 6-variable NPN canonization: the minimum table over all 92 160
/// transforms. Used only on structure-library misses, memoized by
/// [`NpnLibrary`].
///
/// The search walks Heap's algorithm over the 720 variable orders **once**,
/// advancing all 64 input-negation *lanes* in lockstep: consecutive
/// permutations differ by one transposition, so each step is a single
/// delta-swap (identical masks and shift for every lane) plus a branch-free
/// `min(t, !t) <= best` filter per lane — a loop the compiler vectorizes.
/// A full candidate scan runs only when some lane passes the filter.
///
/// Candidates are totally ordered by `(table, lane, permutation, phase)`
/// and the winner is the global minimum of that key — exactly the
/// first-minimum the classic (negation-outer, permutation-inner,
/// phase-innermost) serial scan keeps. Because the key is a strict total
/// order, *any* partition of lanes into chunks merges to the same winner,
/// which is what makes the multi-worker split bit-identical to the serial
/// walk (`LSML_PAR_PASSES`; see [`crate::par`]). Lanes whose starting table
/// duplicates an earlier lane's (a vacuous or negation-symmetric variable)
/// only ever produce higher-ranked copies of the earlier lane's candidates,
/// so they are dropped up front.
pub fn canonize6(tt: u64) -> (u64, NpnTransform6) {
    // The negation lanes in Gray-code step order, deduplicated by starting
    // table (the dedup scan is quadratic in the worst case, but 64*64
    // word compares are noise next to the 720-permutation walk).
    let mut ids = [0u8; 64];
    let mut negs = [0u8; 64];
    let mut tables = [0u64; 64];
    let mut flipped = tt;
    let mut neg = 0u8;
    let mut n = 0usize;
    for step in 0..64u32 {
        if step > 0 {
            let v = step.trailing_zeros() as usize;
            flipped = flip_var(flipped, v);
            neg ^= 1 << v;
        }
        // A lane starting at a table seen earlier produces rank-for-rank
        // copies of the earlier lane's candidates; one starting at the
        // *complement* of an earlier table produces the earlier lane's
        // candidates with the phases swapped — in both cases at strictly
        // higher ranks, so the lane can never hold the winner.
        if !tables[..n].iter().any(|&x| x == flipped || x == !flipped) {
            ids[n] = step as u8;
            negs[n] = neg;
            tables[n] = flipped;
            n += 1;
        }
    }

    let chunk = crate::par::chunk_len(n, 16);
    let (best, _rank, best_t) = if chunk >= n {
        canonize6_lanes(&ids[..n], &negs[..n], &tables[..n])
    } else {
        use rayon::prelude::*;
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(n)))
            .collect();
        ranges
            .par_iter()
            .map(|&(s, e)| canonize6_lanes(&ids[s..e], &negs[s..e], &tables[s..e]))
            .collect::<Vec<_>>()
            .into_iter()
            .reduce(|a, b| if (b.0, b.1) < (a.0, a.1) { b } else { a })
            .expect("at least one lane chunk")
    };
    debug_assert_eq!(apply6(tt, &best_t), best);
    (best, best_t)
}

/// One chunk of negation lanes walked through all 720 variable orders in
/// lockstep (see [`canonize6`]). Returns the chunk minimum of
/// `(table, rank)` and the transform achieving it, where
/// `rank = lane << 11 | permutation << 1 | phase` (11 bits cover
/// `719 << 1 | 1`).
fn canonize6_lanes(ids: &[u8], negs: &[u8], start: &[u64]) -> (u64, u32, NpnTransform6) {
    /// Scans the lanes named by `mask` at the current permutation,
    /// refining the winner. Called only for lanes the branch-free filter
    /// flagged (a strict improvement, or a tie a lower rank must resolve);
    /// ascending bit order keeps the rank tie-break exact.
    #[allow(clippy::too_many_arguments)] // hot inner loop: the winner triple must stay flat &muts
    fn scan(
        mut mask: u64,
        perm_idx: u32,
        ids: &[u8],
        negs: &[u8],
        tables: &[u64],
        loc: &[u8; 6],
        best: &mut u64,
        best_rank: &mut u32,
        best_t: &mut NpnTransform6,
    ) {
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let t = tables[j];
            for (cand, phase) in [(t, 0u32), (!t, 1u32)] {
                let rank = (u32::from(ids[j]) << 11) | (perm_idx << 1) | phase;
                if cand < *best || (cand == *best && rank < *best_rank) {
                    *best = cand;
                    *best_rank = rank;
                    *best_t = NpnTransform6 {
                        perm: *loc,
                        input_neg: negs[j],
                        output_neg: phase == 1,
                    };
                }
            }
        }
    }

    let mut lane_buf = [0u64; 64];
    let k = start.len();
    lane_buf[..k].copy_from_slice(start);
    let tables = &mut lane_buf[..k];

    let mut best = u64::MAX;
    let mut best_rank = u32::MAX;
    let mut best_t = NpnTransform6::IDENTITY;
    // arr[p] = which variable currently sits at position p; loc = inverse.
    let mut arr: [u8; 6] = [0, 1, 2, 3, 4, 5];
    let mut loc: [u8; 6] = [0, 1, 2, 3, 4, 5];
    let full = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
    scan(
        full,
        0,
        ids,
        negs,
        tables,
        &loc,
        &mut best,
        &mut best_rank,
        &mut best_t,
    );
    let mut c = [0usize; 6];
    let mut i = 0usize;
    let mut perm_idx = 0u32;
    while i < 6 {
        if c[i] < i {
            let (a, b) = if i.is_multiple_of(2) {
                (0, i)
            } else {
                (c[i], i)
            };
            let (a, b) = (a.min(b), a.max(b));
            let shift = (1u32 << b) - (1u32 << a);
            let up = VAR_TT[a] & !VAR_TT[b]; // a=1, b=0 moves up
            let down = !VAR_TT[a] & VAR_TT[b]; // a=0, b=1 moves down
            let keep = !(up | down);
            let mut mask = 0u64;
            for (j, t) in tables.iter_mut().enumerate() {
                let nt = (*t & keep) | ((*t & up) << shift) | ((*t & down) >> shift);
                *t = nt;
                mask |= u64::from(nt.min(!nt) <= best) << j;
            }
            let (va, vb) = (arr[a], arr[b]);
            arr.swap(a, b);
            loc[va as usize] = b as u8;
            loc[vb as usize] = a as u8;
            perm_idx += 1;
            if mask != 0 {
                scan(
                    mask,
                    perm_idx,
                    ids,
                    negs,
                    tables,
                    &loc,
                    &mut best,
                    &mut best_rank,
                    &mut best_t,
                );
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, best_rank, best_t)
}

// ---------------------------------------------------------------------------
// Structure synthesis.
// ---------------------------------------------------------------------------

/// Synthesizes a small AIG (4 inputs, 1 output) computing the 4-variable
/// table `tt`: Shannon decomposition tried over all 24 variable orders and
/// both output phases, with structural hashing sharing cofactor cones; the
/// cheapest (fewest ANDs, then shallowest) wins.
fn synthesize(tt: u16) -> Aig {
    let wide = broadcast16(tt);
    let mut best: Option<Aig> = None;
    for perm in permutations() {
        let order = [perm[0], perm[1], perm[2], perm[3], 4, 5];
        for flip in [false, true] {
            try_order(4, wide, &order, flip, &mut best);
        }
    }
    best.expect("at least one synthesis attempt")
}

/// Synthesizes a 6-input, 1-output AIG computing `tt`. Trying all 720
/// orders is too slow per class, so a small diverse order set is used:
/// identity, reverse, influence-sorted (both directions) and the rotations
/// of the influence-descending order — with both output phases each.
fn synthesize6(tt: u64) -> Aig {
    // Influence of a variable: how many minterms its flip changes.
    let mut vars: Vec<u8> = (0..6u8).collect();
    let influence: Vec<u32> = (0..6)
        .map(|v| (cofactor0(tt, v) ^ cofactor1(tt, v)).count_ones())
        .collect();
    vars.sort_by_key(|&v| (influence[v as usize], v));
    let asc: [u8; 6] = vars.clone().try_into().expect("six vars");
    vars.reverse();
    let desc: [u8; 6] = vars.try_into().expect("six vars");

    let mut orders: Vec<[u8; 6]> = vec![[0, 1, 2, 3, 4, 5], [5, 4, 3, 2, 1, 0], asc, desc];
    for r in 1..6 {
        let mut rot = desc;
        rot.rotate_left(r);
        orders.push(rot);
    }

    let mut best: Option<Aig> = None;
    for order in &orders {
        for flip in [false, true] {
            try_order(6, tt, order, flip, &mut best);
        }
    }
    best.expect("at least one synthesis attempt")
}

/// One synthesis attempt: Shannon/Davio decomposition of `tt` over `order`
/// with the output phase `flip`, kept if smaller (then shallower) than the
/// current best.
fn try_order(num_inputs: usize, tt: u64, order: &[u8; 6], flip: bool, best: &mut Option<Aig>) {
    let target = if flip { !tt } else { tt };
    let mut g = Aig::new(num_inputs);
    let mut srcs = [Lit::FALSE; 6];
    for (i, s) in srcs.iter_mut().enumerate().take(num_inputs) {
        *s = g.input(i);
    }
    let out = shannon(&mut g, target, &srcs, order, MAX_LEAVES);
    g.add_output(out.complement_if(flip));
    g.cleanup();
    let better = match best {
        None => true,
        Some(b) => {
            g.num_ands() < b.num_ands() || (g.num_ands() == b.num_ands() && g.depth() < b.depth())
        }
    };
    if better {
        *best = Some(g);
    }
}

/// Recursive Shannon expansion of `tt` decomposing on `order[k - 1]`,
/// skipping variables the table does not depend on. Complementary cofactors
/// become an XOR with the decomposition variable (Davio-style), which keeps
/// parity-like classes at their optimal size instead of duplicating cones.
fn shannon(g: &mut Aig, tt: u64, srcs: &[Lit; 6], order: &[u8; 6], k: usize) -> Lit {
    if tt == 0 {
        return Lit::FALSE;
    }
    if tt == u64::MAX {
        return Lit::TRUE;
    }
    debug_assert!(k > 0, "non-constant table with no variables left");
    let var = order[k - 1] as usize;
    let lo = cofactor0(tt, var);
    let hi = cofactor1(tt, var);
    if lo == hi {
        return shannon(g, lo, srcs, order, k - 1);
    }
    if lo == !hi {
        let l = shannon(g, lo, srcs, order, k - 1);
        return g.xor(srcs[var], l);
    }
    let l = shannon(g, lo, srcs, order, k - 1);
    let h = shannon(g, hi, srcs, order, k - 1);
    g.mux(srcs[var], h, l)
}

// ---------------------------------------------------------------------------
// Library entries.
// ---------------------------------------------------------------------------

/// One 4-variable library lookup: the canonization of a cut function plus
/// the shared structure implementing its class representative.
#[derive(Clone)]
pub struct LibEntry {
    /// The canonization of the looked-up table.
    pub class: NpnClass,
    /// A 4-input, 1-output AIG computing `class.canon`.
    pub structure: Arc<Aig>,
}

impl LibEntry {
    /// Maps cut-leaf literals onto the structure's four inputs: canonical
    /// input `perm[i]` is fed `leaf_lits[i] ^ input_neg[i]`. Unused
    /// canonical inputs receive whatever placeholder sits in `leaf_lits`
    /// (the structure provably does not read them).
    pub fn input_map(&self, leaf_lits: &[Lit; 4]) -> [Lit; 4] {
        let t = &self.class.transform;
        let mut m = [Lit::FALSE; 4];
        for i in 0..4 {
            m[t.perm[i] as usize] = leaf_lits[i].complement_if((t.input_neg >> i) & 1 == 1);
        }
        m
    }

    /// Whether the structure's output must be complemented to recover the
    /// original function.
    pub fn output_complement(&self) -> bool {
        self.class.transform.output_neg
    }
}

/// One ≤6-variable library lookup: `structure` computes some representative
/// table `R`, and `apply6(tt, transform) == R` for the looked-up `tt` — so
/// instantiating the structure over [`LibEntry6::input_map`] and
/// complementing per [`LibEntry6::output_complement`] reproduces the
/// original cut function exactly.
#[derive(Clone)]
pub struct LibEntry6 {
    /// Maps the looked-up table onto the structure's table.
    pub transform: NpnTransform6,
    /// A 1-output AIG (4 or 6 inputs) computing the representative.
    pub structure: Arc<Aig>,
}

impl LibEntry6 {
    /// Maps cut-leaf literals onto the structure's inputs: structure input
    /// `perm[i]` is fed `leaf_lits[i] ^ input_neg[i]`. Positions beyond the
    /// structure's input count (or unread by it) keep their placeholder.
    pub fn input_map(&self, leaf_lits: &[Lit; 6]) -> [Lit; 6] {
        let t = &self.transform;
        let mut m = [Lit::FALSE; 6];
        for i in 0..6 {
            m[t.perm[i] as usize] = leaf_lits[i].complement_if((t.input_neg >> i) & 1 == 1);
        }
        m
    }

    /// Whether the structure's output must be complemented to recover the
    /// original function.
    pub fn output_complement(&self) -> bool {
        self.transform.output_neg
    }
}

// ---------------------------------------------------------------------------
// The process-wide library.
// ---------------------------------------------------------------------------

/// Number of stripes in each library map. A fixed power of two: the shard
/// index is the top bits of a multiplicative hash of the key.
const NPN_SHARDS: usize = 16;

/// Keys a [`Striped`] map can shard on.
trait ShardKey: std::hash::Hash + Eq + Copy {
    /// A well-mixed 64-bit hash of the key (only the top bits select the
    /// shard, so the finalizer must mix into the high bits).
    fn shard_hash(&self) -> u64;
}

impl ShardKey for u16 {
    fn shard_hash(&self) -> u64 {
        u64::from(*self).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl ShardKey for u64 {
    fn shard_hash(&self) -> u64 {
        self.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// A lock-striped memo map: keys hash onto one of [`NPN_SHARDS`] stripes,
/// each behind its own facade `Mutex`, so concurrent rewriting workers
/// probing different keys almost never contend. All synchronization routes
/// through `loom::sync`, so the model-check build swaps in shadow
/// primitives here like everywhere else.
struct Striped<K, V> {
    shards: [Mutex<HashMap<K, V>>; NPN_SHARDS],
}

impl<K: ShardKey, V: Clone> Striped<K, V> {
    fn new() -> Striped<K, V> {
        Striped {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, k: &K) -> &Mutex<HashMap<K, V>> {
        &self.shards[(k.shard_hash() >> 60) as usize & (NPN_SHARDS - 1)]
    }

    /// Probe, holding only the key's stripe.
    fn get(&self, k: &K) -> Option<V> {
        self.shard(k).lock().expect("library lock").get(k).cloned()
    }

    /// First-insert-wins publish: a racing duplicate computation is
    /// discarded and the resident value returned, so results are
    /// deterministic no matter which worker finishes first.
    fn publish(&self, k: K, v: V) -> V {
        self.shard(&k)
            .lock()
            .expect("library lock")
            .entry(k)
            .or_insert(v)
            .clone()
    }

    /// Total entries across every stripe (takes each stripe lock in turn).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("library lock").len())
            .sum()
    }
}

impl<K: ShardKey, V: Clone> Default for Striped<K, V> {
    fn default() -> Self {
        Striped::new()
    }
}

/// The process-wide structure library: canonization results and class
/// structures are computed once and memoized. Every rewriting call shares
/// the same instance via [`NpnLibrary::global`]. Each map is lock-striped
/// ([`Striped`]): the old single-`Mutex`-per-map design serialized every
/// worker of a batched compile behind one lock per probe.
#[derive(Default)]
pub struct NpnLibrary {
    /// 16-bit exact canonization memo.
    canon_memo: Striped<u16, NpnClass>,
    /// 4-variable class structures, keyed by class representative.
    structures: Striped<u16, Arc<Aig>>,
    /// The hot-path map: semi-canonical key → (key-to-representative
    /// transform, representative structure).
    semi_entries: Striped<u64, (NpnTransform6, Arc<Aig>)>,
    /// Exact 6-variable canonization memo (keyed by semi-canonical key;
    /// consulted only on `semi_entries` misses).
    canon6_memo: Striped<u64, (u64, NpnTransform6)>,
    /// 5–6-variable class structures, keyed by exact class representative.
    structures6: Striped<u64, Arc<Aig>>,
}

impl NpnLibrary {
    /// The shared process-wide library.
    pub fn global() -> &'static NpnLibrary {
        static LIB: OnceLock<NpnLibrary> = OnceLock::new();
        LIB.get_or_init(NpnLibrary::default)
    }

    /// Number of distinct 4-variable NPN classes materialized so far.
    pub fn num_classes(&self) -> usize {
        self.structures.len()
    }

    /// Number of semi-canonical keys with a cached entry.
    pub fn num_semi_entries(&self) -> usize {
        self.semi_entries.len()
    }

    /// Memoized exact 16-bit canonization.
    fn canon4(&self, tt: u16) -> NpnClass {
        self.canon_memo
            .get(&tt)
            .unwrap_or_else(|| self.canon_memo.publish(tt, canonize(tt)))
    }

    /// The shared 4-variable class structure for representative `canon`.
    fn structure4(&self, canon: u16) -> Arc<Aig> {
        self.structures.get(&canon).unwrap_or_else(|| {
            let s = Arc::new(synthesize(canon));
            self.structures.publish(canon, s)
        })
    }

    /// Canonizes `tt` (memoized) and returns the 4-variable class structure
    /// (synthesized on first encounter of the class). Stripe locks are held
    /// only for the map probe/insert — canonization and synthesis run
    /// unlocked, so concurrent rewriting passes never serialize behind a
    /// 48-attempt synthesis (a racing thread may compute a duplicate, which
    /// is discarded; results are deterministic either way).
    pub fn entry(&self, tt: u16) -> LibEntry {
        let class = self.canon4(tt);
        let structure = self.structure4(class.canon);
        LibEntry { class, structure }
    }

    /// The hot-path lookup for a ≤6-variable cut function: semi-canonize,
    /// probe the key-indexed map, and only on a miss fall back to the exact
    /// canonizer + synthesis (see the module docs for the full contract).
    /// Callers in a hot loop should additionally keep a pass-local cache
    /// keyed by raw table to avoid repeated lock traffic.
    pub fn entry6(&self, tt: u64) -> LibEntry6 {
        let semi = semi_canonize(tt);
        let (to_rep, structure) = self.semi_entries.get(&semi.key).unwrap_or_else(|| {
            let fresh = if support_size(semi.key) <= 4 {
                // The key is already the lifted exact 4-variable class
                // representative; share the 4-variable class structure.
                (NpnTransform6::IDENTITY, self.structure4(semi.key as u16))
            } else {
                let (canon, t2) = self.canon6(semi.key);
                (t2, self.structure6(canon))
            };
            self.semi_entries.publish(semi.key, fresh)
        });
        LibEntry6 {
            transform: semi.transform.then(&to_rep),
            structure,
        }
    }

    /// Memoized exact 6-variable canonization (library misses only).
    fn canon6(&self, key: u64) -> (u64, NpnTransform6) {
        self.canon6_memo
            .get(&key)
            .unwrap_or_else(|| self.canon6_memo.publish(key, canonize6(key)))
    }

    /// The shared 5–6-variable class structure for representative `canon`.
    fn structure6(&self, canon: u64) -> Arc<Aig> {
        self.structures6.get(&canon).unwrap_or_else(|| {
            let s = Arc::new(synthesize6(canon));
            self.structures6.publish(canon, s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Truth table computed by a 4-input, 1-output AIG.
    fn aig_tt(g: &Aig) -> u16 {
        let mut tt = 0u16;
        for m in 0..16u16 {
            let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            if g.eval(&bits)[0] {
                tt |= 1 << m;
            }
        }
        tt
    }

    /// Truth table computed by a 1-output AIG over up to 6 inputs,
    /// vacuous-extended.
    fn aig_tt6(g: &Aig) -> u64 {
        let ni = g.num_inputs();
        let mut tt = 0u64;
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..ni).map(|i| (m >> i) & 1 == 1).collect();
            if g.eval(&bits)[0] {
                tt |= 1 << m;
            }
        }
        tt
    }

    #[test]
    fn apply_identity_is_identity() {
        for tt in [0x0000u16, 0xFFFF, 0x6996, 0x8000, 0x1234] {
            assert_eq!(apply(tt, &NpnTransform::IDENTITY), tt);
        }
        for tt in [0u64, u64::MAX, 0x6996_9669_0FF0_F00F, 0x0123_4567_89AB_CDEF] {
            assert_eq!(apply6(tt, &NpnTransform6::IDENTITY), tt);
        }
    }

    #[test]
    fn canonization_is_class_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let tt: u16 = rng.gen();
            let canon = canonize(tt).canon;
            // Any transform of tt canonizes to the same representative.
            let t = NpnTransform {
                perm: permutations()[rng.gen_range(0..24usize)],
                input_neg: rng.gen_range(0..16u8),
                output_neg: rng.gen(),
            };
            assert_eq!(canonize(apply(tt, &t)).canon, canon, "tt {tt:04x}");
            // And the recorded transform reproduces the representative.
            let c = canonize(tt);
            assert_eq!(apply(tt, &c.transform), c.canon);
        }
    }

    #[test]
    fn canonize6_is_class_invariant() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut perm: [u8; 6] = [0, 1, 2, 3, 4, 5];
        for round in 0..6 {
            let tt: u64 = rng.gen();
            let (canon, t) = canonize6(tt);
            assert_eq!(apply6(tt, &t), canon, "recorded transform");
            // A random transform of tt canonizes to the same representative.
            for i in 0..6 {
                let j = rng.gen_range(i..6usize);
                perm.swap(i, j);
            }
            let rt = NpnTransform6 {
                perm,
                input_neg: rng.gen_range(0..64) as u8,
                output_neg: rng.gen(),
            };
            let (canon2, t2) = canonize6(apply6(tt, &rt));
            assert_eq!(canon2, canon, "round {round}, tt {tt:016x}");
            assert_eq!(apply6(apply6(tt, &rt), &t2), canon2);
        }
    }

    #[test]
    fn transform_composition_matches_sequential_application() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut perm: [u8; 6] = [0, 1, 2, 3, 4, 5];
        let mut rand_t = |rng: &mut StdRng| {
            for i in 0..6 {
                let j = rng.gen_range(i..6usize);
                perm.swap(i, j);
            }
            NpnTransform6 {
                perm,
                input_neg: rng.gen_range(0..64) as u8,
                output_neg: rng.gen(),
            }
        };
        for _ in 0..20 {
            let tt: u64 = rng.gen();
            let t1 = rand_t(&mut rng);
            let t2 = rand_t(&mut rng);
            assert_eq!(
                apply6(apply6(tt, &t1), &t2),
                apply6(tt, &t1.then(&t2)),
                "tt {tt:016x}"
            );
        }
    }

    #[test]
    fn semi_canonize_is_exact_at_small_support() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..40 {
            let tt: u16 = rng.gen();
            let wide = broadcast16(tt);
            let semi = semi_canonize(wide);
            assert_eq!(semi.key, broadcast16(canonize(tt).canon), "tt {tt:04x}");
            assert_eq!(apply6(wide, &semi.transform), semi.key);
        }
    }

    #[test]
    fn semi_canonize_transform_is_valid_and_idempotent() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..60 {
            let tt: u64 = rng.gen();
            let semi = semi_canonize(tt);
            assert_eq!(apply6(tt, &semi.transform), semi.key, "tt {tt:016x}");
            // Canonizing the key is a fixpoint.
            assert_eq!(semi_canonize(semi.key).key, semi.key, "tt {tt:016x}");
        }
    }

    #[test]
    fn structures_compute_their_class() {
        let mut rng = StdRng::seed_from_u64(9);
        let lib = NpnLibrary::global();
        for _ in 0..40 {
            let tt: u16 = rng.gen();
            let entry = lib.entry(tt);
            assert_eq!(aig_tt(&entry.structure), entry.class.canon, "tt {tt:04x}");
        }
    }

    #[test]
    fn instantiation_recovers_original_function() {
        // Feeding the structure through input_map + output_complement must
        // reproduce the *original* (pre-canonization) function exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let lib = NpnLibrary::global();
        for _ in 0..40 {
            let tt: u16 = rng.gen();
            let entry = lib.entry(tt);
            let mut host = Aig::new(4);
            let leaves = [host.input(0), host.input(1), host.input(2), host.input(3)];
            let imap = entry.input_map(&leaves);
            let outs = host.append(&entry.structure, &imap);
            host.add_output(outs[0].complement_if(entry.output_complement()));
            assert_eq!(aig_tt(&host), tt, "tt {tt:04x}");
        }
    }

    #[test]
    fn entry6_instantiation_recovers_original_function() {
        let mut rng = StdRng::seed_from_u64(13);
        let lib = NpnLibrary::global();
        // Narrow tables (support ≤ 4, broadcast) and full-width tables.
        let mut tables: Vec<u64> = (0..10).map(|_| broadcast16(rng.gen::<u16>())).collect();
        tables.extend((0..10).map(|_| rng.gen::<u64>()));
        for tt in tables {
            let entry = lib.entry6(tt);
            let mut host = Aig::new(6);
            let mut leaves = [Lit::FALSE; 6];
            for (i, l) in leaves.iter_mut().enumerate() {
                *l = host.input(i);
            }
            let imap = entry.input_map(&leaves);
            let ni = entry.structure.num_inputs();
            let outs = host.append(&entry.structure, &imap[..ni]);
            host.add_output(outs[0].complement_if(entry.output_complement()));
            assert_eq!(aig_tt6(&host), tt, "tt {tt:016x}");
        }
    }

    #[test]
    fn entry6_shares_class_structures_across_semi_keys() {
        let lib = NpnLibrary::global();
        let mut rng = StdRng::seed_from_u64(37);
        let tt: u64 = rng.gen();
        let e1 = lib.entry6(tt);
        // A permuted/negated variant of the same function must resolve to
        // the very same structure (Arc identity), through either the shared
        // semi key or the exact-canonizer fallback.
        let t = NpnTransform6 {
            perm: [3, 1, 4, 0, 5, 2],
            input_neg: 0b10_1101,
            output_neg: true,
        };
        let e2 = lib.entry6(apply6(tt, &t));
        assert!(Arc::ptr_eq(&e1.structure, &e2.structure));
    }

    #[test]
    fn known_structures_are_tight() {
        let lib = NpnLibrary::global();
        // AND2 (tt over vars 0,1) costs one node; XOR2 three; MUX three.
        let and2 = 0xAAAAu16 & 0xCCCC;
        let xor2 = 0xAAAAu16 ^ 0xCCCC;
        let mux = (0xF0F0 & 0xAAAA) | (!0xF0F0 & 0xCCCCu16);
        for (tt, max) in [(and2, 1), (xor2, 3), (mux, 3), (0x6996u16, 9)] {
            let e = lib.entry(tt);
            assert!(
                e.structure.num_ands() <= max,
                "class {:04x} uses {} ANDs (max {max})",
                e.class.canon,
                e.structure.num_ands()
            );
        }
        // 6-input AND and parity through the wide path.
        let and6 = VAR_TT.iter().fold(u64::MAX, |a, &b| a & b);
        let par6 = VAR_TT.iter().fold(0u64, |a, &b| a ^ b);
        for (tt, max) in [(and6, 5), (par6, 15)] {
            let e = lib.entry6(tt);
            assert!(
                e.structure.num_ands() <= max,
                "wide class uses {} ANDs (max {max})",
                e.structure.num_ands()
            );
        }
    }

    #[test]
    fn constant_and_degenerate_tables() {
        let lib = NpnLibrary::global();
        assert_eq!(lib.entry(0x0000).structure.num_ands(), 0);
        assert_eq!(lib.entry(0xFFFF).structure.num_ands(), 0);
        assert_eq!(lib.entry(0xAAAA).structure.num_ands(), 0); // f = x0
        assert_eq!(lib.entry(!0xAAAAu16).structure.num_ands(), 0); // f = !x0
        assert_eq!(lib.entry6(0).structure.num_ands(), 0);
        assert_eq!(lib.entry6(u64::MAX).structure.num_ands(), 0);
        assert_eq!(lib.entry6(VAR_TT[5]).structure.num_ands(), 0); // f = x5
    }

    #[test]
    fn support_size_tracks_dependence() {
        assert_eq!(support_size(0), 0);
        assert_eq!(support_size(u64::MAX), 0);
        assert_eq!(support_size(VAR_TT[0]), 1);
        assert_eq!(support_size(VAR_TT[3]), 4);
        assert_eq!(support_size(VAR_TT[5]), 6);
        assert_eq!(support_size(broadcast16(0x6996)), 4);
        assert_eq!(support_size(VAR_TT[0] ^ VAR_TT[4]), 5);
    }
}
