//! AIG literals: node references with a complement bit.

use std::fmt;
use std::ops::Not;

/// A reference to an AIG node together with a complement (inversion) flag,
/// packed AIGER-style: `raw = 2 * node_index + complemented`.
///
/// Node 0 is the constant-false node, so [`Lit::FALSE`] has raw value 0 and
/// [`Lit::TRUE`] raw value 1, exactly matching the AIGER file format.
///
/// # Examples
///
/// ```
/// use lsml_aig::Lit;
///
/// let a = Lit::new(3, false);
/// assert_eq!(a.node(), 3);
/// assert!(!a.is_complemented());
/// assert_eq!((!a).raw(), a.raw() ^ 1);
/// assert_eq!(!Lit::TRUE, Lit::FALSE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, uncomplemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal referring to `node`, optionally complemented.
    #[inline]
    pub fn new(node: u32, complemented: bool) -> Self {
        Lit(node << 1 | u32::from(complemented))
    }

    /// Creates a literal from its packed AIGER encoding.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// The packed AIGER encoding (`2 * node + complemented`).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The index of the referenced node.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// This literal with its complement flag forced to `complemented`.
    #[inline]
    pub fn with_complement(self, complemented: bool) -> Lit {
        Lit(self.0 & !1 | u32::from(complemented))
    }

    /// The constant literal for a Boolean value.
    #[inline]
    pub fn constant(value: bool) -> Lit {
        if value {
            Lit::TRUE
        } else {
            Lit::FALSE
        }
    }

    /// XORs the complement flag with `flip`.
    #[inline]
    pub fn complement_if(self, flip: bool) -> Lit {
        Lit(self.0 ^ u32::from(flip))
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            f.write_str("Lit(0)")
        } else if *self == Lit::TRUE {
            f.write_str("Lit(1)")
        } else {
            write!(
                f,
                "Lit({}n{})",
                if self.is_complemented() { "!" } else { "" },
                self.node()
            )
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_matches_aiger_convention() {
        assert_eq!(Lit::FALSE.raw(), 0);
        assert_eq!(Lit::TRUE.raw(), 1);
        assert_eq!(Lit::new(5, false).raw(), 10);
        assert_eq!(Lit::new(5, true).raw(), 11);
    }

    #[test]
    fn not_flips_only_complement() {
        let a = Lit::new(7, false);
        assert_eq!(!a, Lit::new(7, true));
        assert_eq!(!!a, a);
    }

    #[test]
    fn constants() {
        assert!(Lit::FALSE.is_constant());
        assert!(Lit::TRUE.is_constant());
        assert!(!Lit::new(1, false).is_constant());
        assert_eq!(Lit::constant(true), Lit::TRUE);
        assert_eq!(Lit::constant(false), Lit::FALSE);
    }

    #[test]
    fn complement_helpers() {
        let a = Lit::new(3, false);
        assert_eq!(a.complement_if(true), !a);
        assert_eq!(a.complement_if(false), a);
        assert_eq!(a.with_complement(true), !a);
        assert_eq!((!a).with_complement(false), a);
    }
}
