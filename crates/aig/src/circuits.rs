//! Bit-vector circuit builders.
//!
//! These constructors emit word-level datapath structures (adders,
//! comparators, multipliers, population counts, symmetric functions) into an
//! existing [`Aig`]. They serve two roles in the reproduction:
//!
//! 1. ground-truth circuits for the arithmetic benchmark categories, and
//! 2. the "custom AIG of the identified function" that Teams 1 and 7 emit
//!    when standard-function matching succeeds.
//!
//! All vectors are little-endian: index 0 is the least significant bit.

use lsml_pla::TruthTable;

use crate::aig::Aig;
use crate::lit::Lit;

/// Builds the cone computing `table` over the given source literals by
/// recursive Shannon expansion (top variable becomes a multiplexer);
/// structural hashing shares identical cofactors, so the cone is closer to a
/// BDD than to a sum of minterms. This is how LUT contents and quantized
/// neurons become logic.
///
/// # Panics
///
/// Panics if `srcs.len() != table.num_vars()`.
pub fn truth_table_cone(aig: &mut Aig, table: &TruthTable, srcs: &[Lit]) -> Lit {
    assert_eq!(
        srcs.len(),
        table.num_vars(),
        "source literal count must match table arity"
    );
    if table.is_zero() {
        return Lit::FALSE;
    }
    if table.is_one() {
        return Lit::TRUE;
    }
    let var = table.num_vars() - 1;
    let (neg, pos) = table.cofactors(var);
    if neg == pos {
        return truth_table_cone(aig, &neg, &srcs[..var]);
    }
    let lo = truth_table_cone(aig, &neg, &srcs[..var]);
    let hi = truth_table_cone(aig, &pos, &srcs[..var]);
    aig.mux(srcs[var], hi, lo)
}

/// Full adder: returns `(sum, carry)` of three bits.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let t0 = aig.and(a, b);
    let t1 = aig.and(axb, cin);
    let carry = aig.or(t0, t1);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width vectors; returns `(sum, carry)`.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let mut carry = Lit::FALSE;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b.iter()) {
        let (s, c) = full_adder(aig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Unsigned comparison `a < b` over equal-width vectors.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn less_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    // From LSB to MSB: lt = (!a_i & b_i) | (equal_i & lt_so_far).
    let mut lt = Lit::FALSE;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let xeqy = aig.xnor(x, y);
        let xlty = aig.and(!x, y);
        let keep = aig.and(xeqy, lt);
        lt = aig.or(xlty, keep);
    }
    lt
}

/// Equality comparison of two equal-width vectors.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn equals(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let bits: Vec<Lit> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| aig.xnor(x, y))
        .collect();
    aig.and_many(&bits)
}

/// Equality of a vector with a constant.
pub fn equals_const(aig: &mut Aig, a: &[Lit], value: u64) -> Lit {
    let bits: Vec<Lit> = a
        .iter()
        .enumerate()
        .map(|(i, &x)| x.complement_if((value >> i) & 1 == 0))
        .collect();
    aig.and_many(&bits)
}

/// Shift-and-add unsigned multiplier; the product has `a.len() + b.len()`
/// bits.
pub fn multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len() + b.len();
    let mut acc = vec![Lit::FALSE; width];
    for (j, &bj) in b.iter().enumerate() {
        // Partial product row shifted by j, padded to full width.
        let mut row = vec![Lit::FALSE; width];
        for (i, &ai) in a.iter().enumerate() {
            if i + j < width {
                row[i + j] = aig.and(ai, bj);
            }
        }
        let (sum, _carry) = ripple_add(aig, &acc, &row);
        acc = sum;
    }
    acc
}

/// Population count: the binary count of ones among `xs`, built as a tree of
/// ripple adders; the result has `ceil(log2(n+1))` bits.
pub fn popcount(aig: &mut Aig, xs: &[Lit]) -> Vec<Lit> {
    if xs.is_empty() {
        return vec![];
    }
    // Start with 1-bit "numbers" and repeatedly add pairs.
    let mut layer: Vec<Vec<Lit>> = xs.iter().map(|&l| vec![l]).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.chunks(2);
        for pair in &mut it {
            match pair {
                [a, b] => {
                    let w = a.len().max(b.len());
                    let mut av = a.clone();
                    let mut bv = b.clone();
                    av.resize(w, Lit::FALSE);
                    bv.resize(w, Lit::FALSE);
                    let (mut sum, carry) = ripple_add(aig, &av, &bv);
                    sum.push(carry);
                    next.push(sum);
                }
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        layer = next;
    }
    let mut out = layer.pop().expect("non-empty");
    let need = usize::BITS as usize - xs.len().leading_zeros() as usize; // ceil(log2(n+1))
    out.truncate(need.max(1));
    out
}

/// A fully symmetric function of `xs`, described by its signature:
/// `signature[k]` is the output when exactly `k` inputs are one.
///
/// This mirrors ABC's `symfun` command used to create benchmarks ex75–ex79.
///
/// # Panics
///
/// Panics if `signature.len() != xs.len() + 1`.
pub fn symmetric(aig: &mut Aig, xs: &[Lit], signature: &[bool]) -> Lit {
    assert_eq!(
        signature.len(),
        xs.len() + 1,
        "signature must have n+1 entries"
    );
    let count = popcount(aig, xs);
    let mut terms = Vec::new();
    for (k, &on) in signature.iter().enumerate() {
        if on {
            terms.push(equals_const(aig, &count, k as u64));
        }
    }
    aig.or_many(&terms)
}

/// Odd parity (XOR) of all inputs.
pub fn parity(aig: &mut Aig, xs: &[Lit]) -> Lit {
    aig.xor_many(xs)
}

/// Majority vote: one iff more than half of `xs` are one. For even `n`, ties
/// (exactly `n/2` ones) vote zero.
pub fn majority(aig: &mut Aig, xs: &[Lit]) -> Lit {
    at_least(aig, xs, xs.len() / 2 + 1)
}

/// Threshold function: one iff at least `k` of `xs` are one.
pub fn at_least(aig: &mut Aig, xs: &[Lit], k: usize) -> Lit {
    if k == 0 {
        return Lit::TRUE;
    }
    if k > xs.len() {
        return Lit::FALSE;
    }
    let count = popcount(aig, xs);
    // count >= k  <=>  !(count < k)
    let width = count.len();
    let konst: Vec<Lit> = (0..width)
        .map(|i| Lit::constant((k as u64 >> i) & 1 == 1))
        .collect();
    let lt = less_than(aig, &count, &konst);
    !lt
}

/// The two's-complement negation helper: returns `!a + 1` (same width,
/// dropping the final carry).
pub fn negate(aig: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
    let mut one = vec![Lit::FALSE; a.len()];
    if !one.is_empty() {
        one[0] = Lit::TRUE;
    }
    ripple_add(aig, &inverted, &one).0
}

/// Builds a complete `k`-bit adder AIG whose outputs are the `k` sum bits
/// followed by the carry — the ground truth behind benchmarks ex00–ex09.
pub fn adder_aig(k: usize) -> Aig {
    let mut aig = Aig::new(2 * k);
    let a: Vec<Lit> = (0..k).map(|i| aig.input(i)).collect();
    let b: Vec<Lit> = (0..k).map(|i| aig.input(k + i)).collect();
    let (sum, carry) = ripple_add(&mut aig, &a, &b);
    for s in sum {
        aig.add_output(s);
    }
    aig.add_output(carry);
    aig
}

/// Builds a `k`-bit unsigned comparator AIG (`a < b`), the ground truth
/// behind benchmarks ex30–ex39.
pub fn comparator_aig(k: usize) -> Aig {
    let mut aig = Aig::new(2 * k);
    let a: Vec<Lit> = (0..k).map(|i| aig.input(i)).collect();
    let b: Vec<Lit> = (0..k).map(|i| aig.input(k + i)).collect();
    let lt = less_than(&mut aig, &a, &b);
    aig.add_output(lt);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn value_of(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_matches_arithmetic() {
        let k = 6;
        let g = adder_aig(k);
        for a in [0u64, 1, 7, 13, 63] {
            for b in [0u64, 1, 5, 62, 63] {
                let mut input = bits_of(a, k);
                input.extend(bits_of(b, k));
                let out = g.eval(&input);
                assert_eq!(value_of(&out), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn comparator_matches_arithmetic() {
        let k = 5;
        let g = comparator_aig(k);
        for a in 0..32u64 {
            for b in [0u64, 3, 15, 31] {
                let mut input = bits_of(a, k);
                input.extend(bits_of(b, k));
                assert_eq!(g.eval(&input)[0], a < b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn multiply_matches_arithmetic() {
        let mut g = Aig::new(8);
        let a: Vec<Lit> = (0..4).map(|i| g.input(i)).collect();
        let b: Vec<Lit> = (0..4).map(|i| g.input(4 + i)).collect();
        let prod = multiply(&mut g, &a, &b);
        for p in prod {
            g.add_output(p);
        }
        for x in 0..16u64 {
            for y in [0u64, 1, 3, 7, 15] {
                let mut input = bits_of(x, 4);
                input.extend(bits_of(y, 4));
                let out = g.eval(&input);
                assert_eq!(value_of(&out), x * y, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn popcount_counts() {
        let mut g = Aig::new(7);
        let ins = g.inputs();
        let cnt = popcount(&mut g, &ins);
        for c in cnt {
            g.add_output(c);
        }
        for v in 0..128u64 {
            let out = g.eval(&bits_of(v, 7));
            assert_eq!(value_of(&out), v.count_ones() as u64, "v={v:07b}");
        }
    }

    #[test]
    fn symmetric_signature() {
        // One iff exactly 1 or 3 of 4 inputs are set (odd parity of 4).
        let mut g = Aig::new(4);
        let ins = g.inputs();
        let f = symmetric(&mut g, &ins, &[false, true, false, true, false]);
        g.add_output(f);
        for v in 0..16u64 {
            let expect = v.count_ones() % 2 == 1;
            assert_eq!(g.eval(&bits_of(v, 4))[0], expect, "v={v:04b}");
        }
    }

    #[test]
    fn parity_and_majority() {
        let mut g = Aig::new(5);
        let ins = g.inputs();
        let p = parity(&mut g, &ins);
        let m = majority(&mut g, &ins);
        g.add_output(p);
        g.add_output(m);
        for v in 0..32u64 {
            let out = g.eval(&bits_of(v, 5));
            assert_eq!(out[0], v.count_ones() % 2 == 1);
            assert_eq!(out[1], v.count_ones() >= 3);
        }
    }

    #[test]
    fn at_least_edges() {
        let mut g = Aig::new(3);
        let ins = g.inputs();
        let all = at_least(&mut g, &ins, 0);
        assert_eq!(all, Lit::TRUE);
        let none = at_least(&mut g, &ins, 4);
        assert_eq!(none, Lit::FALSE);
        let two = at_least(&mut g, &ins, 2);
        g.add_output(two);
        for v in 0..8u64 {
            assert_eq!(g.eval(&bits_of(v, 3))[0], v.count_ones() >= 2);
        }
    }

    #[test]
    fn negate_is_twos_complement() {
        let mut g = Aig::new(4);
        let a = g.inputs();
        let n = negate(&mut g, &a);
        for bit in n {
            g.add_output(bit);
        }
        for v in 0..16u64 {
            let out = g.eval(&bits_of(v, 4));
            assert_eq!(value_of(&out), v.wrapping_neg() & 0xF, "v={v}");
        }
    }

    #[test]
    fn truth_table_cone_exhaustive() {
        let mut g = Aig::new(4);
        let srcs = g.inputs();
        let table = TruthTable::from_fn(4, |m| (m * 5) % 3 == 1);
        let lit = truth_table_cone(&mut g, &table, &srcs);
        g.add_output(lit);
        for m in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(g.eval(&bits)[0], table.get(m), "at {m:04b}");
        }
    }

    #[test]
    fn equals_const_works() {
        let mut g = Aig::new(4);
        let a = g.inputs();
        let f = equals_const(&mut g, &a, 0b1010);
        g.add_output(f);
        for v in 0..16u64 {
            assert_eq!(g.eval(&bits_of(v, 4))[0], v == 0b1010);
        }
    }
}
