//! The (1+λ) evolution strategy with 1/5-th-rule mutation adaptation.

use lsml_aig::Aig;
use lsml_pla::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::genome::{dataset_columns, Genome};

/// CGP evolution configuration.
#[derive(Clone, Debug)]
pub struct CgpConfig {
    /// Genome length (grid columns; Team 9 used 500 or 5000 for random
    /// init).
    pub n_nodes: usize,
    /// Offspring per generation — Team 9 used the (1+4)-ES.
    pub lambda: usize,
    /// Number of generations.
    pub generations: usize,
    /// Initial per-field mutation probability (adapted by the 1/5-th rule).
    pub mutation_rate: f64,
    /// Allow XOR genes (XAIG mode) in addition to AND/INV.
    pub use_xor: bool,
    /// Mini-batch size for fitness evaluation; `None` uses the full
    /// training set every generation.
    pub batch_size: Option<usize>,
    /// Generations between mini-batch refreshes (Team 9 used 1000/2000).
    pub batch_refresh: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CgpConfig {
    fn default() -> Self {
        CgpConfig {
            n_nodes: 500,
            lambda: 4,
            generations: 2000,
            mutation_rate: 0.02,
            use_xor: true,
            batch_size: None,
            batch_refresh: 1000,
            seed: 0,
        }
    }
}

/// Outcome of an evolution run.
#[derive(Clone, Debug)]
pub struct CgpResult {
    /// The best individual found.
    pub genome: Genome,
    /// Its accuracy on the full training set.
    pub train_accuracy: f64,
    /// Generations actually executed.
    pub generations: usize,
    /// Final (adapted) mutation rate.
    pub final_mutation_rate: f64,
}

impl CgpResult {
    /// Decodes the winner into an AIG.
    pub fn to_aig(&self) -> Aig {
        self.genome.to_aig()
    }
}

/// Evolves from a random individual ("unbiased" flow).
pub fn evolve(ds: &Dataset, cfg: &CgpConfig) -> CgpResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let parent = Genome::random(ds.num_inputs().max(1), cfg.n_nodes, cfg.use_xor, &mut rng);
    run(ds, cfg, parent, rng)
}

/// Evolves from a seed AIG ("bootstrapped" flow): the genome is sized at
/// twice the seed circuit and fine-tuned on the training set.
///
/// # Panics
///
/// Panics if the seed AIG does not have exactly one output or its input
/// count differs from the dataset.
pub fn evolve_bootstrapped(ds: &Dataset, seed_aig: &Aig, cfg: &CgpConfig) -> CgpResult {
    assert_eq!(
        seed_aig.num_inputs(),
        ds.num_inputs(),
        "seed AIG arity mismatch"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Twice the original AIG: pad with as many random genes as the encoding
    // used for the functional part.
    let probe = Genome::from_aig(seed_aig, 0, cfg.use_xor, &mut rng);
    let padding = probe.len().max(8);
    let parent = Genome::from_aig(seed_aig, padding, cfg.use_xor, &mut rng);
    run(ds, cfg, parent, rng)
}

fn run(ds: &Dataset, cfg: &CgpConfig, mut parent: Genome, mut rng: StdRng) -> CgpResult {
    if ds.is_empty() {
        let acc = 1.0;
        return CgpResult {
            genome: parent,
            train_accuracy: acc,
            generations: 0,
            final_mutation_rate: cfg.mutation_rate,
        };
    }
    let full_columns = dataset_columns(ds);
    let full_words = ds.len().div_ceil(64);

    // Mini-batch state: indices of the current batch.
    let mut batch: Option<Dataset> = None;
    let mut batch_columns = full_columns.clone();
    let mut batch_words = full_words;
    let mut batch_ds: &Dataset = ds;

    let mut rate = cfg.mutation_rate;
    let mut parent_fit = fitness(&parent, batch_ds, &batch_columns, batch_words);

    for generation in 0..cfg.generations {
        // Refresh the mini-batch periodically (adds stochasticity that Team 9
        // found helps generalization on random-initialized runs).
        if let Some(bs) = cfg.batch_size {
            if generation % cfg.batch_refresh.max(1) == 0 {
                let bs = bs.min(ds.len()).max(1);
                batch = Some(ds.bootstrap(bs, &mut rng));
                let b = batch.as_ref().expect("just set");
                batch_columns = dataset_columns(b);
                batch_words = b.len().div_ceil(64);
                // Re-evaluate the parent on the new batch.
                parent_fit = fitness(&parent, b, &batch_columns, batch_words);
            }
        }
        batch_ds = batch.as_ref().unwrap_or(ds);

        let mut best_child: Option<(Genome, (f64, usize))> = None;
        for _ in 0..cfg.lambda {
            let child = parent.mutate(rate, cfg.use_xor, &mut rng);
            let fit = fitness(&child, batch_ds, &batch_columns, batch_words);
            if best_child.as_ref().is_none_or(|(_, bf)| fit > *bf) {
                best_child = Some((child, fit));
            }
        }
        let (child, child_fit) = best_child.expect("lambda >= 1");
        // (1+4)-ES acceptance: the child replaces the parent when it is at
        // least as fit (neutral drift); phenotype size breaks ties upward.
        let improved = child_fit.0 > parent_fit.0;
        if child_fit >= parent_fit {
            parent = child;
            parent_fit = child_fit;
        }
        // 1/5-th success rule (Doerr & Doerr's discrete variant): grow the
        // rate on success, shrink it gently on failure. The floor keeps the
        // expected number of mutated fields near one per offspring.
        let floor = 1.0 / (3.0 * parent.len().max(1) as f64);
        if improved {
            rate = (rate * 1.5).min(0.25);
        } else {
            rate = (rate * 1.5f64.powf(-0.25)).max(floor.min(0.02));
        }
    }

    let train_accuracy = parent.accuracy(ds);
    CgpResult {
        genome: parent,
        train_accuracy,
        generations: cfg.generations,
        final_mutation_rate: rate,
    }
}

/// Fitness: (accuracy on the batch, phenotype size). Larger phenotypes are
/// preferred on accuracy ties, following Milano & Nolfi's preferential
/// selection of larger solutions.
fn fitness(g: &Genome, ds: &Dataset, columns: &[Vec<u64>], words: usize) -> (f64, usize) {
    let out = g.eval_columns(columns, words);
    let mut correct = 0usize;
    for (i, &o) in ds.outputs().iter().enumerate() {
        let bit = (out[i / 64] >> (i % 64)) & 1 == 1;
        if bit == o {
            correct += 1;
        }
    }
    let acc = correct as f64 / ds.len() as f64;
    (acc, g.phenotype_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_pla::Pattern;

    fn full_dataset(f: impl Fn(u64) -> bool, nv: usize) -> Dataset {
        let mut ds = Dataset::new(nv);
        for m in 0..(1u64 << nv) {
            ds.push(Pattern::from_index(m, nv), f(m));
        }
        ds
    }

    #[test]
    fn evolves_xor_exactly() {
        let ds = full_dataset(|m| (m ^ (m >> 1)) & 1 == 1, 2);
        let cfg = CgpConfig {
            n_nodes: 12,
            generations: 400,
            seed: 1,
            ..CgpConfig::default()
        };
        let r = evolve(&ds, &cfg);
        assert!(
            (r.train_accuracy - 1.0).abs() < 1e-12,
            "accuracy {}",
            r.train_accuracy
        );
    }

    #[test]
    fn aig_matches_genome() {
        let ds = full_dataset(|m| m & 0b11 == 0b01, 4);
        let cfg = CgpConfig {
            n_nodes: 40,
            generations: 300,
            ..CgpConfig::default()
        };
        let r = evolve(&ds, &cfg);
        let aig = r.to_aig();
        for m in 0..16u64 {
            let p = Pattern::from_index(m, 4);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(aig.eval(&bits)[0], r.genome.predict(&p), "at {m:04b}");
        }
    }

    #[test]
    fn bootstrap_never_loses_seed_accuracy() {
        let ds = full_dataset(|m| (m & 0b101) == 0b101, 5);
        // Seed: an exact AIG for the target.
        let mut seed = Aig::new(5);
        let (a, c) = (seed.input(0), seed.input(2));
        let f = seed.and(a, c);
        seed.add_output(f);
        let cfg = CgpConfig {
            generations: 200,
            seed: 3,
            ..CgpConfig::default()
        };
        let r = evolve_bootstrapped(&ds, &seed, &cfg);
        assert!((r.train_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_improves_imperfect_seed() {
        // Seed circuit gets ~75% (x0 instead of x0 AND x1).
        let ds = full_dataset(|m| m & 0b11 == 0b11, 4);
        let mut seed = Aig::new(4);
        let a = seed.input(0);
        seed.add_output(a);
        let cfg = CgpConfig {
            generations: 600,
            seed: 5,
            ..CgpConfig::default()
        };
        let r = evolve_bootstrapped(&ds, &seed, &cfg);
        assert!(r.train_accuracy >= 0.75);
    }

    #[test]
    fn minibatch_mode_still_learns() {
        let ds = full_dataset(|m| m & 1 == 1, 6);
        let cfg = CgpConfig {
            n_nodes: 30,
            generations: 500,
            batch_size: Some(32),
            batch_refresh: 100,
            seed: 2,
            ..CgpConfig::default()
        };
        let r = evolve(&ds, &cfg);
        assert!(r.train_accuracy > 0.9, "accuracy {}", r.train_accuracy);
    }

    #[test]
    fn mutation_rate_is_adapted() {
        let ds = full_dataset(|m| m.count_ones() % 2 == 1, 3);
        let cfg = CgpConfig {
            n_nodes: 20,
            generations: 100,
            mutation_rate: 0.02,
            ..CgpConfig::default()
        };
        let r = evolve(&ds, &cfg);
        assert!(r.final_mutation_rate > 0.0);
        assert!(r.final_mutation_rate <= 0.25);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = full_dataset(|m| m % 5 < 2, 4);
        let cfg = CgpConfig {
            n_nodes: 25,
            generations: 150,
            seed: 9,
            ..CgpConfig::default()
        };
        let a = evolve(&ds, &cfg);
        let b = evolve(&ds, &cfg);
        assert_eq!(a.genome, b.genome);
    }
}
