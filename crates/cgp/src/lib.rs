//! Cartesian Genetic Programming for Boolean circuit learning (Team 9).
//!
//! Team 9's "Bootstrapped CGP" flow evolves a single-row grid of
//! AND/XOR/INV nodes with a (1+4) evolution strategy, self-adjusting the
//! mutation rate with the 1/5-th success rule, preferring phenotypically
//! larger individuals on fitness ties (Milano & Nolfi), and optionally
//! seeding the population with an AIG produced by another method (decision
//! trees or ESPRESSO) — in which case the genome is sized at *twice* the
//! seed AIG, leaving non-functional genes as mutation headroom.
//!
//! # Examples
//!
//! ```
//! use lsml_cgp::{evolve, CgpConfig};
//! use lsml_pla::{Dataset, Pattern};
//!
//! let mut ds = Dataset::new(2);
//! for m in 0..4u64 {
//!     ds.push(Pattern::from_index(m, 2), (m ^ (m >> 1)) & 1 == 1); // XOR
//! }
//! let cfg = CgpConfig { generations: 300, n_nodes: 12, ..CgpConfig::default() };
//! let result = evolve(&ds, &cfg);
//! assert!(result.train_accuracy > 0.99);
//! ```

mod evolve;
mod genome;

pub use evolve::{evolve, evolve_bootstrapped, CgpConfig, CgpResult};
pub use genome::{Genome, NodeFn};
