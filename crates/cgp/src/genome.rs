//! CGP genomes: encoding, evaluation, mutation, AIG conversion.

use lsml_aig::{Aig, Lit};
use lsml_pla::{Dataset, Pattern};
use rand::rngs::StdRng;
use rand::Rng;

/// Node function set: Team 9 restricted candidates to "XORs, ANDs, and
/// Inverters; in other words AIG or XAIG".
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NodeFn {
    /// Two-input AND.
    And,
    /// Two-input XOR (only drawn when the config enables XAIG mode).
    Xor,
    /// Inverter (ignores its second connection).
    Not,
}

/// One gene: a function and two connection indices (into the concatenated
/// `[inputs..., nodes...]` signal list; connections always point backwards).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gene {
    /// Node function.
    pub func: NodeFn,
    /// First connection.
    pub a: u32,
    /// Second connection (ignored by [`NodeFn::Not`]).
    pub b: u32,
}

/// A single-row CGP individual.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Genome {
    pub(crate) num_inputs: usize,
    pub(crate) genes: Vec<Gene>,
    /// Signal index driving the primary output.
    pub(crate) output: u32,
}

impl Genome {
    /// A random genome with `n_nodes` genes.
    pub fn random(num_inputs: usize, n_nodes: usize, use_xor: bool, rng: &mut StdRng) -> Self {
        assert!(num_inputs > 0, "CGP needs at least one input");
        let genes = (0..n_nodes)
            .map(|i| random_gene(num_inputs + i, use_xor, rng))
            .collect();
        let output = rng.gen_range(0..(num_inputs + n_nodes) as u32);
        Genome {
            num_inputs,
            genes,
            output,
        }
    }

    /// Number of genes (grid columns).
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the genome has no genes.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Marks the genes reachable from the output (the *phenotype*).
    pub fn active_mask(&self) -> Vec<bool> {
        let mut active = vec![false; self.genes.len()];
        let mut stack = vec![self.output];
        while let Some(s) = stack.pop() {
            let s = s as usize;
            if s < self.num_inputs {
                continue;
            }
            let g = s - self.num_inputs;
            if active[g] {
                continue;
            }
            active[g] = true;
            stack.push(self.genes[g].a);
            if self.genes[g].func != NodeFn::Not {
                stack.push(self.genes[g].b);
            }
        }
        active
    }

    /// Number of active (phenotype) genes.
    pub fn phenotype_size(&self) -> usize {
        self.active_mask().iter().filter(|&&a| a).count()
    }

    /// Evaluates the genome on one pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern arity differs from the genome's input count.
    pub fn predict(&self, p: &Pattern) -> bool {
        assert_eq!(p.len(), self.num_inputs, "pattern arity mismatch");
        let mut values: Vec<bool> = p.iter().collect();
        values.reserve(self.genes.len());
        for g in &self.genes {
            let a = values[g.a as usize];
            let v = match g.func {
                NodeFn::And => a && values[g.b as usize],
                NodeFn::Xor => a ^ values[g.b as usize],
                NodeFn::Not => !a,
            };
            values.push(v);
        }
        values[self.output as usize]
    }

    /// Bit-packed evaluation over a whole dataset (64 examples per word):
    /// returns the output column. Only active genes are computed.
    pub(crate) fn eval_columns(&self, columns: &[Vec<u64>], words: usize) -> Vec<u64> {
        let active = self.active_mask();
        let mut values: Vec<Option<Vec<u64>>> = vec![None; self.genes.len()];
        // Compute in index order; inactive genes stay None.
        for (g, gene) in self.genes.iter().enumerate() {
            if !active[g] {
                continue;
            }
            let fetch = |idx: u32, values: &[Option<Vec<u64>>]| -> Vec<u64> {
                let idx = idx as usize;
                if idx < self.num_inputs {
                    columns[idx].clone()
                } else {
                    values[idx - self.num_inputs]
                        .clone()
                        .expect("connections point backwards to active genes")
                }
            };
            let va = fetch(gene.a, &values);
            let col = match gene.func {
                NodeFn::Not => va.iter().map(|w| !w).collect(),
                NodeFn::And => {
                    let vb = fetch(gene.b, &values);
                    va.iter().zip(vb.iter()).map(|(x, y)| x & y).collect()
                }
                NodeFn::Xor => {
                    let vb = fetch(gene.b, &values);
                    va.iter().zip(vb.iter()).map(|(x, y)| x ^ y).collect()
                }
            };
            values[g] = Some(col);
        }
        let out = self.output as usize;
        if out < self.num_inputs {
            columns[out].clone()
        } else {
            values[out - self.num_inputs]
                .clone()
                .unwrap_or_else(|| vec![0; words])
        }
    }

    /// Accuracy over a dataset (bit-parallel).
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 1.0;
        }
        let words = ds.len().div_ceil(64);
        let columns = dataset_columns(ds);
        let out = self.eval_columns(&columns, words);
        let mut correct = 0usize;
        for (i, &o) in ds.outputs().iter().enumerate() {
            let bit = (out[i / 64] >> (i % 64)) & 1 == 1;
            if bit == o {
                correct += 1;
            }
        }
        correct as f64 / ds.len() as f64
    }

    /// Point-mutates each gene field independently with probability `rate`;
    /// the output connection mutates with the same probability. At least one
    /// field always mutates (the usual CGP guard against dead generations
    /// when the adapted rate gets small).
    pub fn mutate(&self, rate: f64, use_xor: bool, rng: &mut StdRng) -> Genome {
        let mut child = self.clone();
        let mut mutated = false;
        for (i, gene) in child.genes.iter_mut().enumerate() {
            let limit = (self.num_inputs + i) as u32;
            if rng.gen::<f64>() < rate {
                gene.func = random_fn(use_xor, rng);
                mutated = true;
            }
            if rng.gen::<f64>() < rate {
                gene.a = rng.gen_range(0..limit);
                mutated = true;
            }
            if rng.gen::<f64>() < rate {
                gene.b = rng.gen_range(0..limit);
                mutated = true;
            }
        }
        if rng.gen::<f64>() < rate {
            child.output = rng.gen_range(0..(self.num_inputs + self.genes.len()) as u32);
            mutated = true;
        }
        if !mutated && !child.genes.is_empty() {
            let g = rng.gen_range(0..child.genes.len());
            let limit = (self.num_inputs + g) as u32;
            match rng.gen_range(0..3) {
                0 => child.genes[g].func = random_fn(use_xor, rng),
                1 => child.genes[g].a = rng.gen_range(0..limit.max(1)),
                _ => child.genes[g].b = rng.gen_range(0..limit.max(1)),
            }
        }
        child
    }

    /// Encodes an existing single-output AIG as a genome, appending
    /// `padding` random non-functional genes as mutation headroom (Team 9
    /// sized the genome at twice the seed AIG). Complemented AIG edges
    /// become explicit inverter genes.
    ///
    /// # Panics
    ///
    /// Panics if the AIG does not have exactly one output.
    pub fn from_aig(aig: &Aig, padding: usize, use_xor: bool, rng: &mut StdRng) -> Genome {
        assert_eq!(aig.outputs().len(), 1, "bootstrap needs one output");
        let num_inputs = aig.num_inputs();
        let mut genes: Vec<Gene> = Vec::new();
        // signal index of each AIG node (uncomplemented form).
        let mut node_signal: Vec<Option<u32>> = vec![None; aig.num_nodes()];
        for i in 0..num_inputs {
            node_signal[i + 1] = Some(i as u32);
        }

        // Emits an inverter gene and returns its signal index.
        fn emit_not(genes: &mut Vec<Gene>, num_inputs: usize, src: u32) -> u32 {
            genes.push(Gene {
                func: NodeFn::Not,
                a: src,
                b: src,
            });
            (num_inputs + genes.len() - 1) as u32
        }

        // Resolve a literal to a signal index, materializing inverters.
        // Constant literals are encoded as x AND NOT x (false) via two genes
        // when needed — rare in practice because learners avoid constants.
        let mut const_false: Option<u32> = None;
        let mut resolve =
            |lit: Lit, genes: &mut Vec<Gene>, node_signal: &mut Vec<Option<u32>>| -> u32 {
                let base = if lit.is_constant() {
                    *const_false.get_or_insert_with(|| {
                        let not0 = emit_not(genes, num_inputs, 0);
                        genes.push(Gene {
                            func: NodeFn::And,
                            a: 0,
                            b: not0,
                        });
                        (num_inputs + genes.len() - 1) as u32
                    })
                } else {
                    node_signal[lit.node() as usize].expect("topological order")
                };
                // Constant FALSE (raw 0) maps to the base; TRUE (raw 1, i.e. the
                // complemented constant) and complemented node edges invert it.
                let want_invert = lit.is_complemented();
                if want_invert {
                    emit_not(genes, num_inputs, base)
                } else {
                    base
                }
            };

        for n in (num_inputs + 1)..aig.num_nodes() {
            let (f0, f1) = aig.fanins(n as u32);
            let a = resolve(f0, &mut genes, &mut node_signal);
            let b = resolve(f1, &mut genes, &mut node_signal);
            genes.push(Gene {
                func: NodeFn::And,
                a,
                b,
            });
            node_signal[n] = Some((num_inputs + genes.len() - 1) as u32);
        }
        let output = resolve(aig.outputs()[0], &mut genes, &mut node_signal);
        for _ in 0..padding {
            genes.push(random_gene(num_inputs + genes.len(), use_xor, rng));
        }
        Genome {
            num_inputs,
            genes,
            output,
        }
    }

    /// Decodes the phenotype into an AIG.
    pub fn to_aig(&self) -> Aig {
        let mut aig = Aig::new(self.num_inputs);
        let active = self.active_mask();
        let mut lits: Vec<Lit> = aig.inputs();
        for (g, gene) in self.genes.iter().enumerate() {
            let lit = if active[g] {
                let a = lits[gene.a as usize];
                match gene.func {
                    NodeFn::And => {
                        let b = lits[gene.b as usize];
                        aig.and(a, b)
                    }
                    NodeFn::Xor => {
                        let b = lits[gene.b as usize];
                        aig.xor(a, b)
                    }
                    NodeFn::Not => !a,
                }
            } else {
                Lit::FALSE // placeholder; never referenced by active genes
            };
            lits.push(lit);
        }
        aig.add_output(lits[self.output as usize]);
        aig.cleanup();
        aig
    }
}

/// Bit-packed input columns of a dataset.
pub(crate) fn dataset_columns(ds: &Dataset) -> Vec<Vec<u64>> {
    let words = ds.len().div_ceil(64).max(1);
    let mut columns = vec![vec![0u64; words]; ds.num_inputs()];
    for (i, (p, _)) in ds.iter().enumerate() {
        for (v, col) in columns.iter_mut().enumerate() {
            if p.get(v) {
                col[i / 64] |= 1 << (i % 64);
            }
        }
    }
    columns
}

fn random_fn(use_xor: bool, rng: &mut StdRng) -> NodeFn {
    match rng.gen_range(0..if use_xor { 3 } else { 2 }) {
        0 => NodeFn::And,
        1 => NodeFn::Not,
        _ => NodeFn::Xor,
    }
}

fn random_gene(limit: usize, use_xor: bool, rng: &mut StdRng) -> Gene {
    Gene {
        func: random_fn(use_xor, rng),
        a: rng.gen_range(0..limit as u32),
        b: rng.gen_range(0..limit as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_genome_connections_point_backwards() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Genome::random(4, 20, true, &mut rng);
        for (i, gene) in g.genes.iter().enumerate() {
            assert!((gene.a as usize) < 4 + i);
            assert!((gene.b as usize) < 4 + i);
        }
    }

    #[test]
    fn predict_matches_eval_columns() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Genome::random(5, 30, true, &mut rng);
        let mut ds = Dataset::new(5);
        for m in 0..32u64 {
            ds.push(Pattern::from_index(m, 5), false);
        }
        let columns = dataset_columns(&ds);
        let out = g.eval_columns(&columns, 1);
        for m in 0..32u64 {
            let bit = (out[0] >> m) & 1 == 1;
            assert_eq!(bit, g.predict(&Pattern::from_index(m, 5)), "at {m}");
        }
    }

    #[test]
    fn to_aig_matches_predict() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Genome::random(4, 25, true, &mut rng);
        let aig = g.to_aig();
        for m in 0..16u64 {
            let p = Pattern::from_index(m, 4);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(aig.eval(&bits)[0], g.predict(&p), "at {m:04b}");
        }
    }

    #[test]
    fn from_aig_preserves_function() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
        let x = aig.xor(a, b);
        let f = aig.mux(c, x, !a);
        aig.add_output(f);
        let mut rng = StdRng::seed_from_u64(1);
        let genome = Genome::from_aig(&aig, 10, true, &mut rng);
        for m in 0..8u64 {
            let p = Pattern::from_index(m, 3);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(genome.predict(&p), aig.eval(&bits)[0], "at {m:03b}");
        }
    }

    #[test]
    fn from_aig_handles_constant_output() {
        let aig = Aig::constant(2, true);
        let mut rng = StdRng::seed_from_u64(2);
        let genome = Genome::from_aig(&aig, 0, false, &mut rng);
        assert!(genome.predict(&Pattern::from_index(0, 2)));
        assert!(genome.predict(&Pattern::from_index(3, 2)));
    }

    #[test]
    fn phenotype_smaller_than_genome() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = Genome::random(4, 50, true, &mut rng);
        assert!(g.phenotype_size() <= g.len());
    }

    #[test]
    fn mutation_respects_connection_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Genome::random(4, 30, true, &mut rng);
        let m = g.mutate(0.5, true, &mut rng);
        for (i, gene) in m.genes.iter().enumerate() {
            assert!((gene.a as usize) < 4 + i);
            assert!((gene.b as usize) < 4 + i);
        }
        assert!((m.output as usize) < 4 + m.len());
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = Genome::random(4, 10, true, &mut rng);
        let m = g.mutate(0.0, true, &mut rng);
        assert_eq!(g, m);
    }
}
