//! The LUT network itself.

use lsml_aig::circuits::truth_table_cone;
use lsml_aig::{Aig, Lit};
use lsml_pla::{Dataset, Pattern, TruthTable};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Connection discipline between consecutive layers (Team 6's two schemes).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Wiring {
    /// Every LUT input is drawn uniformly at random from the previous layer.
    #[default]
    Random,
    /// Every output of the previous layer is used once before any output is
    /// connected twice ("unique but random set of inputs").
    UniqueRandom,
}

/// LUT-network shape and wiring configuration.
#[derive(Clone, Debug)]
pub struct LutNetConfig {
    /// LUT fan-in `k`. Team 6 found 4 to give the best average accuracy.
    pub lut_inputs: usize,
    /// LUTs per hidden layer.
    pub luts_per_layer: usize,
    /// Number of hidden layers (a final single-LUT output layer is always
    /// appended).
    pub layers: usize,
    /// Wiring discipline.
    pub wiring: Wiring,
    /// RNG seed for the wiring.
    pub seed: u64,
}

impl Default for LutNetConfig {
    fn default() -> Self {
        LutNetConfig {
            lut_inputs: 4,
            luts_per_layer: 32,
            layers: 2,
            wiring: Wiring::UniqueRandom,
            seed: 0,
        }
    }
}

/// One lookup table: `k` source indices into the previous layer plus its
/// (trained) truth table.
#[derive(Clone, Debug)]
struct Lut {
    sources: Vec<u32>,
    table: TruthTable,
}

/// A trained LUT network.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug)]
pub struct LutNetwork {
    num_inputs: usize,
    /// Hidden layers followed by a single-LUT output layer.
    layers: Vec<Vec<Lut>>,
}

impl LutNetwork {
    /// Builds the random wiring and memorizes the training set layer by
    /// layer: each truth-table entry becomes the majority label of the
    /// examples reaching it (empty entries fall back to the layer-input
    /// majority label).
    pub fn train(ds: &Dataset, cfg: &LutNetConfig) -> Self {
        assert!(cfg.lut_inputs >= 1, "LUTs need at least one input");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = ds.len();
        let words = n.div_ceil(64).max(1);

        // Bit-packed signal columns of the current layer (initially inputs).
        let mut signals: Vec<Vec<u64>> = (0..ds.num_inputs())
            .map(|v| {
                let mut col = vec![0u64; words];
                for (i, (p, _)) in ds.iter().enumerate() {
                    if p.get(v) {
                        col[i / 64] |= 1 << (i % 64);
                    }
                }
                col
            })
            .collect();
        let labels: Vec<bool> = ds.outputs().to_vec();
        let global_majority = ds.majority();

        let mut layers = Vec::with_capacity(cfg.layers + 1);
        for layer_idx in 0..=cfg.layers {
            let is_output = layer_idx == cfg.layers;
            let width = if is_output { 1 } else { cfg.luts_per_layer };
            let mut dealer = Dealer::new(signals.len(), cfg.wiring, &mut rng);
            let mut layer = Vec::with_capacity(width);
            let mut next_signals = Vec::with_capacity(width);
            for _ in 0..width {
                let sources: Vec<u32> =
                    (0..cfg.lut_inputs).map(|_| dealer.deal(&mut rng)).collect();
                let lut = memorize_lut(&sources, &signals, &labels, n, global_majority);
                next_signals.push(eval_lut_column(&lut, &signals, n, words));
                layer.push(lut);
            }
            signals = next_signals;
            layers.push(layer);
        }
        LutNetwork {
            num_inputs: ds.num_inputs(),
            layers,
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of LUTs.
    pub fn lut_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Number of layers including the output layer.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Predicts one pattern by forward evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the pattern arity differs from the training inputs.
    pub fn predict(&self, p: &Pattern) -> bool {
        assert_eq!(p.len(), self.num_inputs, "pattern arity mismatch");
        let mut values: Vec<bool> = p.iter().collect();
        for layer in &self.layers {
            values = layer
                .iter()
                .map(|lut| {
                    let mut idx = 0u32;
                    for (b, &s) in lut.sources.iter().enumerate() {
                        if values[s as usize] {
                            idx |= 1 << b;
                        }
                    }
                    lut.table.get(idx)
                })
                .collect();
        }
        values[0]
    }

    /// Accuracy over a dataset.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        ds.accuracy_of(|p| self.predict(p))
    }

    /// Compiles the network to an AIG: every LUT becomes a Shannon-expanded
    /// mux cone over its source literals.
    pub fn to_aig(&self) -> Aig {
        let mut aig = Aig::new(self.num_inputs);
        let mut lits: Vec<Lit> = aig.inputs();
        for layer in &self.layers {
            lits = layer
                .iter()
                .map(|lut| {
                    let srcs: Vec<Lit> = lut.sources.iter().map(|&s| lits[s as usize]).collect();
                    truth_table_cone(&mut aig, &lut.table, &srcs)
                })
                .collect();
        }
        aig.add_output(lits[0]);
        aig.cleanup();
        aig
    }
}

/// Builds the truth table of one LUT by majority memorization.
fn memorize_lut(
    sources: &[u32],
    signals: &[Vec<u64>],
    labels: &[bool],
    n: usize,
    fallback: bool,
) -> Lut {
    let k = sources.len();
    let mut pos = vec![0u32; 1 << k];
    let mut neg = vec![0u32; 1 << k];
    for i in 0..n {
        let mut idx = 0usize;
        for (b, &s) in sources.iter().enumerate() {
            if (signals[s as usize][i / 64] >> (i % 64)) & 1 == 1 {
                idx |= 1 << b;
            }
        }
        if labels[i] {
            pos[idx] += 1;
        } else {
            neg[idx] += 1;
        }
    }
    let mut table = TruthTable::zeros(k);
    for m in 0..(1u32 << k) {
        let (p, q) = (pos[m as usize], neg[m as usize]);
        let bit = if p + q == 0 {
            fallback // unseen entry: don't-care filled with the majority label
        } else {
            p > q || (p == q && fallback)
        };
        table.set(m, bit);
    }
    Lut {
        sources: sources.to_vec(),
        table,
    }
}

/// Evaluates one LUT over all examples, returning its bit-packed column.
fn eval_lut_column(lut: &Lut, signals: &[Vec<u64>], n: usize, words: usize) -> Vec<u64> {
    let mut col = vec![0u64; words];
    for i in 0..n {
        let mut idx = 0u32;
        for (b, &s) in lut.sources.iter().enumerate() {
            if (signals[s as usize][i / 64] >> (i % 64)) & 1 == 1 {
                idx |= 1 << b;
            }
        }
        if lut.table.get(idx) {
            col[i / 64] |= 1 << (i % 64);
        }
    }
    col
}

/// Deals source indices according to the wiring discipline.
struct Dealer {
    pool: Vec<u32>,
    at: usize,
    n_sources: usize,
    wiring: Wiring,
}

impl Dealer {
    fn new(n_sources: usize, wiring: Wiring, rng: &mut StdRng) -> Self {
        assert!(n_sources > 0, "a layer needs at least one source signal");
        let mut pool: Vec<u32> = (0..n_sources as u32).collect();
        pool.shuffle(rng);
        Dealer {
            pool,
            at: 0,
            n_sources,
            wiring,
        }
    }

    fn deal(&mut self, rng: &mut StdRng) -> u32 {
        match self.wiring {
            Wiring::Random => self.pool[rng.gen_range(0..self.n_sources)],
            Wiring::UniqueRandom => {
                if self.at == self.pool.len() {
                    self.pool.shuffle(rng);
                    self.at = 0;
                }
                let v = self.pool[self.at];
                self.at += 1;
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_dataset(f: impl Fn(u64) -> bool, nv: usize) -> Dataset {
        let mut ds = Dataset::new(nv);
        for m in 0..(1u64 << nv) {
            ds.push(Pattern::from_index(m, nv), f(m));
        }
        ds
    }

    #[test]
    fn memorizes_simple_function_well() {
        let ds = full_dataset(|m| m & 1 == 1, 5);
        let net = LutNetwork::train(&ds, &LutNetConfig::default());
        assert!(net.accuracy(&ds) > 0.9, "acc {}", net.accuracy(&ds));
    }

    #[test]
    fn aig_matches_network_predictions() {
        let ds = full_dataset(|m| (m * 3) % 7 < 3, 5);
        let cfg = LutNetConfig {
            luts_per_layer: 8,
            ..LutNetConfig::default()
        };
        let net = LutNetwork::train(&ds, &cfg);
        let aig = net.to_aig();
        for m in 0..32u64 {
            let p = Pattern::from_index(m, 5);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(aig.eval(&bits)[0], net.predict(&p), "mismatch at {m:05b}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = full_dataset(|m| m % 3 == 0, 6);
        let cfg = LutNetConfig {
            seed: 5,
            ..LutNetConfig::default()
        };
        let a = LutNetwork::train(&ds, &cfg);
        let b = LutNetwork::train(&ds, &cfg);
        for m in 0..64u64 {
            let p = Pattern::from_index(m, 6);
            assert_eq!(a.predict(&p), b.predict(&p));
        }
    }

    #[test]
    fn unique_wiring_covers_all_sources_before_reuse() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut dealer = Dealer::new(6, Wiring::UniqueRandom, &mut rng);
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(dealer.deal(&mut rng));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn layer_and_lut_counts() {
        let ds = full_dataset(|m| m > 10, 4);
        let cfg = LutNetConfig {
            layers: 3,
            luts_per_layer: 7,
            ..LutNetConfig::default()
        };
        let net = LutNetwork::train(&ds, &cfg);
        assert_eq!(net.layer_count(), 4); // 3 hidden + output
        assert_eq!(net.lut_count(), 3 * 7 + 1);
    }

    #[test]
    fn handles_empty_dataset() {
        let ds = Dataset::new(3);
        let net = LutNetwork::train(&ds, &LutNetConfig::default());
        // All entries fall back to the (false) majority.
        assert!(!net.predict(&Pattern::from_index(5, 3)));
    }
}
