//! LUT-network learning by memorization (Chatterjee, ICML 2018).
//!
//! A LUT network is a layered feed-forward network of `k`-input lookup
//! tables with *randomly chosen* connections. Training is pure
//! memorization — no gradients, no search: each LUT's truth table entry is
//! set to the majority label of the training examples that reach that entry.
//! Teams 1 and 6 used exactly this scheme, exploring the number of layers,
//! LUTs per layer, LUT fan-in (4 was Team 6's sweet spot) and the wiring
//! discipline between layers.
//!
//! The two wiring schemes of Team 6 are both implemented:
//! [`Wiring::Random`] draws each LUT input uniformly from the previous
//! layer, while [`Wiring::UniqueRandom`] deals every previous-layer output
//! once before any is duplicated.
//!
//! # Examples
//!
//! ```
//! use lsml_lutnet::{LutNetwork, LutNetConfig};
//! use lsml_pla::{Dataset, Pattern};
//!
//! let mut ds = Dataset::new(4);
//! for m in 0..16u64 {
//!     ds.push(Pattern::from_index(m, 4), (m & 3) == 3);
//! }
//! let net = LutNetwork::train(&ds, &LutNetConfig::default());
//! let acc = net.accuracy(&ds);
//! assert!(acc > 0.7, "memorization should beat chance, got {acc}");
//! ```

mod network;
mod search;

pub use network::{LutNetConfig, LutNetwork, Wiring};
pub use search::{beam_search, BeamSearchResult};
