//! Beam-style hyper-parameter exploration (Team 1).
//!
//! Team 1 incremented the LUT-network shape parameters "like a beam search
//! as long as the accuracy is improved". [`beam_search`] reproduces that
//! loop: starting from a seed configuration it repeatedly tries increasing
//! each of (layers, LUTs per layer, LUT fan-in), keeps the best move while
//! validation accuracy improves, and stops at a local optimum.

use lsml_pla::Dataset;

use crate::network::{LutNetConfig, LutNetwork};

/// Outcome of [`beam_search`].
#[derive(Clone, Debug)]
pub struct BeamSearchResult {
    /// The best network found.
    pub network: LutNetwork,
    /// Its configuration.
    pub config: LutNetConfig,
    /// Validation accuracy of the best network.
    pub validation_accuracy: f64,
    /// Number of candidate networks trained.
    pub candidates_tried: usize,
}

/// Grows the network shape greedily while validation accuracy improves.
///
/// `max_rounds` bounds the number of growth steps; each round trains up to
/// three candidate networks (one per incremented parameter).
pub fn beam_search(
    train: &Dataset,
    valid: &Dataset,
    seed_cfg: &LutNetConfig,
    max_rounds: usize,
) -> BeamSearchResult {
    let mut best_cfg = seed_cfg.clone();
    let mut best_net = LutNetwork::train(train, &best_cfg);
    let mut best_acc = best_net.accuracy(valid);
    let mut tried = 1usize;

    for _ in 0..max_rounds {
        let mut improved = false;
        let mut round_best: Option<(LutNetConfig, LutNetwork, f64)> = None;
        for candidate in grow_moves(&best_cfg) {
            let net = LutNetwork::train(train, &candidate);
            tried += 1;
            let acc = net.accuracy(valid);
            if acc > best_acc && round_best.as_ref().is_none_or(|(_, _, a)| acc > *a) {
                round_best = Some((candidate, net, acc));
            }
        }
        if let Some((cfg, net, acc)) = round_best {
            best_cfg = cfg;
            best_net = net;
            best_acc = acc;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    BeamSearchResult {
        network: best_net,
        config: best_cfg,
        validation_accuracy: best_acc,
        candidates_tried: tried,
    }
}

/// The three growth moves of one beam round.
fn grow_moves(cfg: &LutNetConfig) -> Vec<LutNetConfig> {
    let mut moves = Vec::with_capacity(3);
    moves.push(LutNetConfig {
        layers: cfg.layers + 1,
        ..cfg.clone()
    });
    moves.push(LutNetConfig {
        luts_per_layer: cfg.luts_per_layer * 2,
        ..cfg.clone()
    });
    if cfg.lut_inputs < 6 {
        moves.push(LutNetConfig {
            lut_inputs: cfg.lut_inputs + 1,
            ..cfg.clone()
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_pla::Pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampled_dataset(f: impl Fn(&Pattern) -> bool, nv: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(nv);
        for _ in 0..n {
            let p = Pattern::random(&mut rng, nv);
            let label = f(&p);
            ds.push(p, label);
        }
        ds
    }

    #[test]
    fn search_never_degrades_seed_accuracy() {
        let f = |p: &Pattern| p.get(0) && (p.get(1) || p.get(2));
        let train = sampled_dataset(f, 8, 300, 1);
        let valid = sampled_dataset(f, 8, 300, 2);
        let seed_cfg = LutNetConfig {
            luts_per_layer: 4,
            layers: 1,
            ..LutNetConfig::default()
        };
        let seed_net = LutNetwork::train(&train, &seed_cfg);
        let seed_acc = seed_net.accuracy(&valid);
        let result = beam_search(&train, &valid, &seed_cfg, 3);
        assert!(result.validation_accuracy >= seed_acc);
        assert!(result.candidates_tried >= 1);
    }

    #[test]
    fn search_stops_at_local_optimum() {
        let f = |p: &Pattern| p.get(3);
        let train = sampled_dataset(f, 6, 200, 3);
        let valid = sampled_dataset(f, 6, 200, 4);
        let result = beam_search(&train, &valid, &LutNetConfig::default(), 10);
        // An easy function: accuracy should be near-perfect quickly.
        assert!(result.validation_accuracy > 0.9);
    }
}
