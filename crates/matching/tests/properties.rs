//! Property tests for the standard-function matchers: whatever is reported
//! must be exact on the data, and planted standard functions are recovered.

use lsml_matching::{match_function, MatchedKind};
use lsml_pla::{Dataset, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sampled(nv: usize, n: usize, seed: u64, f: impl Fn(&Pattern) -> bool) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(nv);
    for _ in 0..n {
        let p = Pattern::random(&mut rng, nv);
        let label = f(&p);
        ds.push(p, label);
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any reported match classifies every training example correctly.
    #[test]
    fn reported_matches_are_exact_on_data(seed in any::<u64>(), nv in 4usize..10) {
        let ds = sampled(nv, 120, seed, |p| {
            (p.to_index().wrapping_mul(seed | 1)).count_ones() % 2 == 1
        });
        if let Some(m) = match_function(&ds) {
            for (p, o) in ds.iter() {
                let bits: Vec<bool> = p.iter().collect();
                prop_assert_eq!(m.aig.eval(&bits)[0], o);
            }
        }
    }

    /// A planted affine function (XOR of a random subset, random complement)
    /// is always recovered, and the recovered circuit generalizes to unseen
    /// patterns.
    #[test]
    fn planted_affine_is_recovered(
        seed in any::<u64>(),
        mask in 1u16..1024,
        invert in any::<bool>(),
    ) {
        let nv = 10;
        let f = |p: &Pattern| {
            let mut acc = invert;
            for v in 0..nv {
                if (mask >> v) & 1 == 1 {
                    acc ^= p.get(v);
                }
            }
            acc
        };
        let ds = sampled(nv, 200, seed, f);
        let m = match_function(&ds).expect("affine family must match");
        // Verify on fresh samples (generalization, not memorization).
        let fresh = sampled(nv, 200, seed.wrapping_add(1), f);
        for (p, o) in fresh.iter() {
            let bits: Vec<bool> = p.iter().collect();
            prop_assert_eq!(m.aig.eval(&bits)[0], o);
        }
    }

    /// A planted threshold (symmetric) function is recovered whenever enough
    /// popcount classes are observed.
    #[test]
    fn planted_threshold_is_recovered(seed in any::<u64>(), t in 3usize..8) {
        let nv = 10;
        let ds = sampled(nv, 400, seed, |p| p.count_ones() >= t);
        let m = match_function(&ds).expect("symmetric family must match");
        let kind_ok = matches!(
            m.kind,
            MatchedKind::Symmetric { .. } | MatchedKind::Constant(_)
        );
        prop_assert!(kind_ok, "unexpected kind {:?}", m.kind);
        for (p, o) in ds.iter() {
            let bits: Vec<bool> = p.iter().collect();
            prop_assert_eq!(m.aig.eval(&bits)[0], o);
        }
    }

    /// Matching respects complementation: the complement of a matched
    /// function is also matched.
    #[test]
    fn complement_closure(seed in any::<u64>()) {
        let nv = 8;
        let f = |p: &Pattern| p.get(0) ^ p.get(3) ^ p.get(5);
        let pos = sampled(nv, 150, seed, f);
        let neg = sampled(nv, 150, seed, |p| !f(p));
        prop_assert!(match_function(&pos).is_some());
        prop_assert!(match_function(&neg).is_some());
    }
}
