//! The individual hypothesis testers.

use lsml_aig::{circuits, Aig, Lit};
use lsml_pla::{Dataset, Pattern};

/// The function family a dataset was matched against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchedKind {
    /// Constant output.
    Constant(bool),
    /// A single (possibly complemented) input variable.
    Literal {
        /// The variable.
        var: usize,
        /// Whether the output is its complement.
        invert: bool,
    },
    /// XOR over a variable subset, possibly complemented (affine over
    /// GF(2)).
    Affine {
        /// Variables appearing in the XOR.
        vars: Vec<usize>,
        /// Whether the XOR is complemented.
        invert: bool,
    },
    /// Output depends only on the number of ones in the input.
    Symmetric {
        /// `signature[k]` = output when `k` inputs are one.
        signature: Vec<bool>,
    },
    /// Unsigned comparison `a < b` of two contiguous input words.
    Comparator {
        /// Bit width of each word.
        k: usize,
        /// Whether word bits run MSB-first instead of LSB-first.
        msb_first: bool,
        /// Whether the result is complemented (giving `a >= b`).
        invert: bool,
        /// Whether the operands are swapped (giving `b < a`).
        swapped: bool,
    },
    /// Output bit `bit` of the sum `a + b` of two contiguous input words
    /// (bit `k` is the carry-out, i.e. the adder's MSB).
    AdderBit {
        /// Bit width of each word.
        k: usize,
        /// Which sum bit (0 = LSB, `k` = carry).
        bit: usize,
        /// Whether word bits run MSB-first instead of LSB-first.
        msb_first: bool,
    },
}

/// A successful match: the identified family plus a verified AIG.
#[derive(Clone, Debug)]
pub struct Match {
    /// What was recognized.
    pub kind: MatchedKind,
    /// A hand-built AIG implementing the function; it classifies every
    /// example of the matched dataset correctly.
    pub aig: Aig,
}

/// Tries every matcher in order of cost and returns the first family that
/// explains the complete dataset. Returns `None` when nothing fits (which is
/// the common case — real contest benchmarks only matched for the
/// arithmetic and symmetric categories).
pub fn match_function(ds: &Dataset) -> Option<Match> {
    if ds.is_empty() || ds.num_inputs() == 0 {
        return None;
    }
    match_constant(ds)
        .or_else(|| match_literal(ds))
        .or_else(|| match_affine(ds))
        .or_else(|| match_symmetric(ds))
        .or_else(|| match_comparator(ds))
        .or_else(|| match_adder_bit(ds))
}

fn verified(ds: &Dataset, kind: MatchedKind, aig: Aig) -> Option<Match> {
    let preds = lsml_aig::sim::eval_patterns(&aig, ds.patterns());
    if preds.iter().zip(ds.outputs()).all(|(a, b)| a == b) {
        Some(Match { kind, aig })
    } else {
        None
    }
}

fn match_constant(ds: &Dataset) -> Option<Match> {
    let first = ds.output(0);
    if ds.outputs().iter().all(|&o| o == first) {
        let aig = Aig::constant(ds.num_inputs(), first);
        return Some(Match {
            kind: MatchedKind::Constant(first),
            aig,
        });
    }
    None
}

fn match_literal(ds: &Dataset) -> Option<Match> {
    for var in 0..ds.num_inputs() {
        for invert in [false, true] {
            if ds.iter().all(|(p, o)| (p.get(var) ^ invert) == o) {
                let mut aig = Aig::new(ds.num_inputs());
                let l = aig.input(var).complement_if(invert);
                aig.add_output(l);
                return Some(Match {
                    kind: MatchedKind::Literal { var, invert },
                    aig,
                });
            }
        }
    }
    None
}

/// Affine match over GF(2): find `c0 + Σ c_i x_i = y (mod 2)` consistent
/// with every example, by Gaussian elimination on the n+1 unknown
/// coefficients. Bit-packs one equation per example.
fn match_affine(ds: &Dataset) -> Option<Match> {
    let n = ds.num_inputs();
    let unknowns = n + 1; // coefficients + constant term
    let words = unknowns.div_ceil(64);
    // Each row: [coefficient bits | rhs] — we keep rhs separately.
    let mut rows: Vec<(Vec<u64>, bool)> = ds
        .iter()
        .map(|(p, o)| {
            let mut r = vec![0u64; words];
            for v in 0..n {
                if p.get(v) {
                    r[v / 64] |= 1 << (v % 64);
                }
            }
            // Constant-term column.
            r[n / 64] |= 1 << (n % 64);
            (r, o)
        })
        .collect();

    let mut pivot_rows: Vec<(usize, Vec<u64>, bool)> = Vec::new(); // (col, row, rhs)
    for (row, rhs) in rows.iter_mut() {
        let mut r = row.clone();
        let mut b = *rhs;
        for (col, prow, prhs) in &pivot_rows {
            if (r[col / 64] >> (col % 64)) & 1 == 1 {
                for (x, y) in r.iter_mut().zip(prow.iter()) {
                    *x ^= y;
                }
                b ^= prhs;
            }
        }
        // Find leading column.
        let lead = (0..unknowns).find(|&c| (r[c / 64] >> (c % 64)) & 1 == 1);
        match lead {
            Some(col) => {
                pivot_rows.push((col, r, b));
                // Keep pivots sorted by column for the elimination loop.
                pivot_rows.sort_by_key(|&(c, _, _)| c);
            }
            None => {
                if b {
                    return None; // 0 = 1: inconsistent, not affine
                }
            }
        }
    }

    // Back-substitute to extract one solution (free variables = 0).
    let mut coeff = vec![false; unknowns];
    for (col, row, rhs) in pivot_rows.iter().rev() {
        let mut v = *rhs;
        for c in (col + 1)..unknowns {
            if (row[c / 64] >> (c % 64)) & 1 == 1 && coeff[c] {
                v = !v;
            }
        }
        coeff[*col] = v;
    }
    let vars: Vec<usize> = (0..n).filter(|&v| coeff[v]).collect();
    let invert = coeff[n];
    // Reject the degenerate constant/literal cases (cheaper matchers handle
    // them and give tighter labels).
    if vars.len() <= 1 {
        return None;
    }
    let mut aig = Aig::new(n);
    let lits: Vec<Lit> = vars.iter().map(|&v| aig.input(v)).collect();
    let x = aig.xor_many(&lits);
    aig.add_output(x.complement_if(invert));
    verified(ds, MatchedKind::Affine { vars, invert }, aig)
}

fn match_symmetric(ds: &Dataset) -> Option<Match> {
    let n = ds.num_inputs();
    // signature[k]: Some(label) once seen; conflicts kill the match.
    let mut signature: Vec<Option<bool>> = vec![None; n + 1];
    for (p, o) in ds.iter() {
        let k = p.count_ones();
        match signature[k] {
            None => signature[k] = Some(o),
            Some(s) if s != o => return None,
            _ => {}
        }
    }
    let filled: Vec<bool> = signature.iter().map(|s| s.unwrap_or(false)).collect();
    // Symmetric matching is only meaningful when it actually constrains the
    // function: require at least three distinct popcount classes observed.
    if signature.iter().flatten().count() < 3 {
        return None;
    }
    let mut aig = Aig::new(n);
    let inputs = aig.inputs();
    let f = circuits::symmetric(&mut aig, &inputs, &filled);
    aig.add_output(f);
    aig.cleanup();
    verified(ds, MatchedKind::Symmetric { signature: filled }, aig)
}

/// Splits the inputs into two contiguous words, in the given bit order.
fn split_words(n: usize, msb_first: bool) -> Option<(Vec<usize>, Vec<usize>)> {
    if n < 2 || !n.is_multiple_of(2) {
        return None;
    }
    let k = n / 2;
    let mut a: Vec<usize> = (0..k).collect();
    let mut b: Vec<usize> = (k..n).collect();
    if msb_first {
        a.reverse();
        b.reverse();
    }
    Some((a, b))
}

/// Reads the value of a word (given as LSB-first variable indices) from a
/// pattern, as a little-endian multiword integer.
fn word_value(p: &Pattern, vars: &[usize]) -> Vec<u64> {
    let mut out = vec![0u64; vars.len().div_ceil(64).max(1)];
    for (bit, &v) in vars.iter().enumerate() {
        if p.get(v) {
            out[bit / 64] |= 1 << (bit % 64);
        }
    }
    out
}

fn less_than_words(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len().max(b.len())).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x < y;
        }
    }
    false
}

fn match_comparator(ds: &Dataset) -> Option<Match> {
    let n = ds.num_inputs();
    for msb_first in [false, true] {
        let (a_vars, b_vars) = split_words(n, msb_first)?;
        for swapped in [false, true] {
            for invert in [false, true] {
                let ok = ds.iter().all(|(p, o)| {
                    let a = word_value(p, &a_vars);
                    let b = word_value(p, &b_vars);
                    let lt = if swapped {
                        less_than_words(&b, &a)
                    } else {
                        less_than_words(&a, &b)
                    };
                    (lt ^ invert) == o
                });
                if !ok {
                    continue;
                }
                let k = n / 2;
                let mut aig = Aig::new(n);
                let la: Vec<Lit> = a_vars.iter().map(|&v| aig.input(v)).collect();
                let lb: Vec<Lit> = b_vars.iter().map(|&v| aig.input(v)).collect();
                let lt = if swapped {
                    circuits::less_than(&mut aig, &lb, &la)
                } else {
                    circuits::less_than(&mut aig, &la, &lb)
                };
                aig.add_output(lt.complement_if(invert));
                aig.cleanup();
                return verified(
                    ds,
                    MatchedKind::Comparator {
                        k,
                        msb_first,
                        invert,
                        swapped,
                    },
                    aig,
                );
            }
        }
    }
    None
}

fn match_adder_bit(ds: &Dataset) -> Option<Match> {
    let n = ds.num_inputs();
    for msb_first in [false, true] {
        let (a_vars, b_vars) = split_words(n, msb_first)?;
        let k = n / 2;
        // Candidate bits: the contest used the two most significant sum
        // bits; checking every bit is still cheap because the sum per
        // example is computed once.
        let mut candidate_bits: Vec<usize> = (0..=k).collect();
        candidate_bits.reverse(); // try MSBs first
        let mut viable = candidate_bits.clone();
        for (p, o) in ds.iter() {
            if viable.is_empty() {
                break;
            }
            let a = word_value(p, &a_vars);
            let b = word_value(p, &b_vars);
            let sum = add_words(&a, &b);
            viable.retain(|&bit| ((sum[bit / 64] >> (bit % 64)) & 1 == 1) == o);
        }
        if let Some(&bit) = viable.first() {
            let mut aig = Aig::new(n);
            let la: Vec<Lit> = a_vars.iter().map(|&v| aig.input(v)).collect();
            let lb: Vec<Lit> = b_vars.iter().map(|&v| aig.input(v)).collect();
            let (sum, carry) = circuits::ripple_add(&mut aig, &la, &lb);
            let out = if bit == k { carry } else { sum[bit] };
            aig.add_output(out);
            aig.cleanup();
            return verified(ds, MatchedKind::AdderBit { k, bit, msb_first }, aig);
        }
    }
    None
}

/// Little-endian multiword addition with one extra word of headroom.
fn add_words(a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len().max(b.len()) + 1;
    let mut out = vec![0u64; len];
    let mut carry = 0u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled(nv: usize, n: usize, seed: u64, f: impl Fn(&Pattern) -> bool) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(nv);
        for _ in 0..n {
            let p = Pattern::random(&mut rng, nv);
            let label = f(&p);
            ds.push(p, label);
        }
        ds
    }

    #[test]
    fn matches_constant() {
        let ds = sampled(5, 50, 0, |_| true);
        let m = match_function(&ds).expect("constant");
        assert_eq!(m.kind, MatchedKind::Constant(true));
    }

    #[test]
    fn matches_literal_and_complement() {
        let ds = sampled(6, 80, 1, |p| !p.get(3));
        let m = match_function(&ds).expect("literal");
        assert_eq!(
            m.kind,
            MatchedKind::Literal {
                var: 3,
                invert: true
            }
        );
    }

    #[test]
    fn matches_parity_subset() {
        let ds = sampled(8, 120, 2, |p| p.get(1) ^ p.get(4) ^ p.get(6));
        let m = match_function(&ds).expect("affine");
        match m.kind {
            MatchedKind::Affine { ref vars, invert } => {
                assert_eq!(vars, &vec![1, 4, 6]);
                assert!(!invert);
            }
            other => panic!("wrong kind {other:?}"),
        }
        // The emitted AIG generalizes beyond the samples.
        assert_eq!(
            m.aig
                .eval(&[false, true, false, false, false, false, false, false]),
            vec![true]
        );
    }

    #[test]
    fn matches_complemented_parity() {
        let ds = sampled(16, 300, 3, |p| {
            let parity = (0..16).fold(false, |acc, v| acc ^ p.get(v));
            !parity
        });
        let m = match_function(&ds).expect("xnor chain");
        match m.kind {
            MatchedKind::Affine { ref vars, invert } => {
                assert_eq!(vars.len(), 16);
                assert!(invert);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn matches_symmetric_threshold() {
        let ds = sampled(10, 400, 4, |p| p.count_ones() >= 6);
        let m = match_function(&ds).expect("symmetric");
        match m.kind {
            MatchedKind::Symmetric { ref signature } => {
                assert!(signature[7]);
                assert!(!signature[2]);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn matches_comparator_lsb_first() {
        let ds = sampled(12, 400, 5, |p| {
            let a = (0..6).fold(0u64, |acc, i| acc | (u64::from(p.get(i)) << i));
            let b = (0..6).fold(0u64, |acc, i| acc | (u64::from(p.get(6 + i)) << i));
            a < b
        });
        let m = match_function(&ds).expect("comparator");
        match m.kind {
            MatchedKind::Comparator {
                k,
                msb_first,
                invert,
                swapped,
            } => {
                assert_eq!(k, 6);
                assert!(!msb_first && !invert && !swapped);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn matches_adder_carry_bit() {
        // MSB of the (k+1)-bit sum = carry out of a k-bit adder.
        let ds = sampled(8, 300, 6, |p| {
            let a = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(i)) << i));
            let b = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(4 + i)) << i));
            (a + b) >> 4 & 1 == 1
        });
        let m = match_function(&ds).expect("adder carry");
        match m.kind {
            MatchedKind::AdderBit { k, bit, msb_first } => {
                assert_eq!((k, bit), (4, 4));
                assert!(!msb_first);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn matches_adder_second_msb() {
        let ds = sampled(8, 300, 7, |p| {
            let a = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(i)) << i));
            let b = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(4 + i)) << i));
            (a + b) >> 3 & 1 == 1
        });
        let m = match_function(&ds).expect("adder 2nd msb");
        match m.kind {
            MatchedKind::AdderBit { k, bit, .. } => {
                assert_eq!((k, bit), (4, 3));
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn matches_msb_first_comparator() {
        // Words laid out MSB-first (contest inputs were LSB→MSB, but Team 7
        // probed multiple layouts).
        let ds = sampled(8, 300, 8, |p| {
            let a = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(i)) << (3 - i)));
            let b = (0..4).fold(0u64, |acc, i| acc | (u64::from(p.get(4 + i)) << (3 - i)));
            a < b
        });
        let m = match_function(&ds).expect("msb-first comparator");
        match m.kind {
            MatchedKind::Comparator { msb_first, .. } => assert!(msb_first),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn random_noise_matches_nothing() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ds = Dataset::new(7);
        for _ in 0..300 {
            let p = Pattern::random(&mut rng, 7);
            let label = rng.gen();
            ds.push(p, label);
        }
        // Truly random labels are (with overwhelming probability) not
        // explained by any of the families.
        assert!(match_function(&ds).is_none());
    }

    #[test]
    fn conjunction_is_not_falsely_matched() {
        let ds = sampled(6, 200, 10, |p| p.get(0) && p.get(1));
        // AND is none of the families (it *is* representable as a symmetric
        // function only over its own 2 inputs, not over all 6).
        if let Some(m) = match_function(&ds) {
            // Any reported match must at least be exact on the data.
            for (p, o) in ds.iter() {
                let bits: Vec<bool> = p.iter().collect();
                assert_eq!(m.aig.eval(&bits)[0], o);
            }
        }
    }

    #[test]
    fn empty_dataset_matches_nothing() {
        assert!(match_function(&Dataset::new(4)).is_none());
    }
}
