//! Pre-defined standard-function matching.
//!
//! "The most important method in the contest was actually matching with a
//! pre-defined standard function" (Team 1). Teams 1 and 7 both checked
//! whether the training data came from a known function family — symmetric
//! functions, adders, comparators, XOR/parity — and, on a match, emitted a
//! hand-built AIG instead of a learnt model, turning impossible benchmarks
//! into exact wins.
//!
//! The matchers here cover the families the teams reported:
//!
//! * constants and single literals;
//! * **affine functions over GF(2)** (any XOR of a variable subset, possibly
//!   complemented) via Gaussian elimination — subsumes parity;
//! * **symmetric functions** (output depends only on the popcount);
//! * **unsigned comparators** over two contiguous input words, either bit
//!   order;
//! * **adder output bits** (any sum/carry bit of `a + b`, covering the
//!   contest's "2 MSBs of k-bit adders"), either bit order.
//!
//! A match is only reported when the hypothesis explains **every** training
//! example, mirroring the teams' "in case of a match, an AIG of the
//! identified function is constructed directly without ML".
//!
//! # Examples
//!
//! ```
//! use lsml_matching::{match_function, MatchedKind};
//! use lsml_pla::{Dataset, Pattern};
//!
//! // Samples of x0 XOR x2 over 3 inputs.
//! let mut ds = Dataset::new(3);
//! for m in 0..8u64 {
//!     ds.push(Pattern::from_index(m, 3), (m ^ (m >> 2)) & 1 == 1);
//! }
//! let m = match_function(&ds).expect("affine match");
//! assert!(matches!(m.kind, MatchedKind::Affine { .. }));
//! assert_eq!(m.aig.eval(&[true, false, false]), vec![true]);
//! ```

mod matchers;

pub use matchers::{match_function, Match, MatchedKind};
