//! Property tests for the BDD package.

use lsml_bdd::{BddManager, BddRef, MinimizeStyle};
use lsml_pla::{Dataset, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const NV: usize = 6;

/// Builds a random function as a BDD plus its reference truth vector.
fn random_function(seed: u64, mgr: &mut BddManager) -> (BddRef, Vec<bool>) {
    let truth: Vec<bool> = (0..(1u64 << NV))
        .map(|m| (m.wrapping_mul(seed | 1)).count_ones() % 2 == 1)
        .collect();
    let mut f = mgr.constant(false);
    for (m, &on) in truth.iter().enumerate() {
        if on {
            let t = mgr.minterm(&Pattern::from_index(m as u64, NV));
            f = mgr.or(f, t);
        }
    }
    (f, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ops_match_truth_semantics(sa in any::<u64>(), sb in any::<u64>()) {
        let mut mgr = BddManager::new(NV);
        let (f, tf) = random_function(sa, &mut mgr);
        let (g, tg) = random_function(sb, &mut mgr);
        let fg_and = mgr.and(f, g);
        let fg_or = mgr.or(f, g);
        let fg_xor = mgr.xor(f, g);
        let nf = mgr.not(f);
        for m in 0..(1u64 << NV) {
            let p = Pattern::from_index(m, NV);
            let i = m as usize;
            prop_assert_eq!(mgr.eval(fg_and, &p), tf[i] && tg[i]);
            prop_assert_eq!(mgr.eval(fg_or, &p), tf[i] || tg[i]);
            prop_assert_eq!(mgr.eval(fg_xor, &p), tf[i] ^ tg[i]);
            prop_assert_eq!(mgr.eval(nf, &p), !tf[i]);
        }
    }

    #[test]
    fn canonicity_same_function_same_node(seed in any::<u64>()) {
        let mut mgr = BddManager::new(NV);
        let (f, _) = random_function(seed, &mut mgr);
        // Rebuild the same function in a different construction order.
        let nf = mgr.not(f);
        let g = mgr.not(nf);
        prop_assert_eq!(f, g);
    }

    #[test]
    fn minimize_agrees_on_care_set(seed in any::<u64>(), n in 5usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut minterms: Vec<u64> = (0..(1u64 << NV)).collect();
        minterms.shuffle(&mut rng);
        let mut ds = Dataset::new(NV);
        for &m in minterms.iter().take(n) {
            ds.push(Pattern::from_index(m, NV), (m.wrapping_mul(seed | 1)) % 3 == 0);
        }
        for style in [MinimizeStyle::OneSided, MinimizeStyle::TwoSided,
                      MinimizeStyle::ComplementedTwoSided] {
            let mut mgr = BddManager::new(NV);
            let (onset, care) = mgr.from_dataset(&ds);
            let f = mgr.minimize(onset, care, style);
            for (p, o) in ds.iter() {
                prop_assert_eq!(mgr.eval(f, p), o, "style {:?} on {}", style, p);
            }
            prop_assert!(mgr.size(f) <= mgr.size(onset));
        }
    }

    #[test]
    fn columnar_from_dataset_is_node_identical(seed in any::<u64>(), n in 1usize..60) {
        // Canonical manager ⇒ the columnar cofactor construction and the
        // row-major minterm OR must return the very same node refs, and
        // duplicated/contradictory rows must not disturb that.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut minterms: Vec<u64> = (0..(1u64 << NV)).collect();
        minterms.shuffle(&mut rng);
        let mut ds = Dataset::new(NV);
        for &m in minterms.iter().take(n) {
            ds.push(Pattern::from_index(m, NV), (m.wrapping_mul(seed | 3)) % 3 == 0);
            if m % 5 == 0 {
                // Duplicate row, sometimes with the opposite label: the
                // onset is an OR of positives, so both constructions must
                // treat it identically.
                ds.push(Pattern::from_index(m, NV), (m.wrapping_mul(seed | 3)) % 2 == 0);
            }
        }
        let mut mgr = BddManager::new(NV);
        let (on_rows, care_rows) = mgr.from_dataset_row_major(&ds);
        let (on_cols, care_cols) = mgr.from_dataset(&ds);
        prop_assert_eq!(on_cols, on_rows);
        prop_assert_eq!(care_cols, care_rows);
    }

    #[test]
    fn to_aig_equivalent(seed in any::<u64>()) {
        let mut mgr = BddManager::new(NV);
        let (f, truth) = random_function(seed, &mut mgr);
        let aig = mgr.to_aig(f);
        for m in 0..(1u64 << NV) {
            let bits: Vec<bool> = (0..NV).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&bits)[0], truth[m as usize]);
        }
    }
}
