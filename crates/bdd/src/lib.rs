//! Reduced ordered binary decision diagrams with don't-care minimization.
//!
//! Team 1's post-contest exploration (paper appendix, §I.D.2) learns
//! incompletely specified functions by building the BDD of the training
//! onset and *minimizing it against the care set*: a BDD node whose one
//! branch is entirely don't-care collapses into the other (one-sided
//! matching / sibling substitution, the classic `restrict` operator), two
//! children that agree on the common care set merge (two-sided matching),
//! and children that are complements on the common care set turn the node
//! into an XOR (complemented two-sided matching). They report 98% accuracy
//! on adder MSBs when the variable order interleaves the operands from the
//! MSB down — an experiment reproduced in this workspace's benchmark
//! harness.
//!
//! # Examples
//!
//! ```
//! use lsml_bdd::{BddManager, MinimizeStyle};
//! use lsml_pla::{Dataset, Pattern};
//!
//! // Care set: four minterms of f = x1 over 3 variables.
//! let mut ds = Dataset::new(3);
//! ds.push(Pattern::from_index(0b010, 3), true);
//! ds.push(Pattern::from_index(0b111, 3), true);
//! ds.push(Pattern::from_index(0b000, 3), false);
//! ds.push(Pattern::from_index(0b101, 3), false);
//!
//! let mut mgr = BddManager::new(3);
//! let (onset, care) = mgr.from_dataset(&ds);
//! let f = mgr.minimize(onset, care, MinimizeStyle::OneSided);
//! // The minimized BDD generalizes to the whole space: f = x1.
//! assert!(mgr.eval(f, &Pattern::from_index(0b011, 3)));
//! assert!(!mgr.eval(f, &Pattern::from_index(0b100, 3)));
//! ```

mod manager;

pub use manager::{BddManager, BddRef, MinimizeStyle};
