//! The BDD manager: unique table, apply, restrict-style minimization.

use std::collections::HashMap;

use lsml_aig::{Aig, Lit};
use lsml_pla::{Dataset, Pattern};

/// A reference to a BDD node (index into the manager's arena).
pub type BddRef = u32;

/// How aggressively [`BddManager::minimize`] exploits don't-cares.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MinimizeStyle {
    /// Sibling substitution only (Coudert–Madre restrict): a branch whose
    /// care cofactor is empty is replaced by its sibling.
    OneSided,
    /// Additionally merge children that agree wherever both care.
    TwoSided,
    /// Additionally recognize children that are *complements* on the common
    /// care set, rebuilding the node as an XOR (Team 1's heuristic, applied
    /// with a bias that prefers the straight merge).
    ComplementedTwoSided,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A reduced ordered BDD manager over a fixed variable count (identity
/// order: variable 0 at the root). No complement edges — functions are
/// plain node references, with `0` = constant false and `1` = constant true.
#[derive(Debug)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    and_cache: HashMap<(BddRef, BddRef), BddRef>,
    or_cache: HashMap<(BddRef, BddRef), BddRef>,
    xor_cache: HashMap<(BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
}

/// The constant-false BDD.
pub const BDD_FALSE: BddRef = 0;
/// The constant-true BDD.
pub const BDD_TRUE: BddRef = 1;

impl BddManager {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let sentinel = Node {
            var: u32::MAX,
            lo: 0,
            hi: 0,
        };
        BddManager {
            num_vars,
            // Slots 0 and 1 are the terminals.
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            xor_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total nodes allocated in the arena (monotone; includes both
    /// terminals).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// The constant BDD for `value`.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BDD_TRUE
        } else {
            BDD_FALSE
        }
    }

    /// The BDD of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars()`.
    pub fn variable(&mut self, var: usize) -> BddRef {
        assert!(var < self.num_vars, "variable index out of range");
        self.mk(var as u32, BDD_FALSE, BDD_TRUE)
    }

    fn var_of(&self, f: BddRef) -> u32 {
        if f <= 1 {
            u32::MAX
        } else {
            self.nodes[f as usize].var
        }
    }

    fn cofactors_at(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        if f <= 1 || self.nodes[f as usize].var != var {
            (f, f)
        } else {
            (self.nodes[f as usize].lo, self.nodes[f as usize].hi)
        }
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = self.nodes.len() as BddRef;
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        if f == BDD_FALSE || g == BDD_FALSE {
            return BDD_FALSE;
        }
        if f == BDD_TRUE {
            return g;
        }
        if g == BDD_TRUE || f == g {
            return f;
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors_at(f, v);
        let (glo, ghi) = self.cofactors_at(g, v);
        let lo = self.and(flo, glo);
        let hi = self.and(fhi, ghi);
        let r = self.mk(v, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        if f == BDD_TRUE || g == BDD_TRUE {
            return BDD_TRUE;
        }
        if f == BDD_FALSE {
            return g;
        }
        if g == BDD_FALSE || f == g {
            return f;
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors_at(f, v);
        let (glo, ghi) = self.cofactors_at(g, v);
        let lo = self.or(flo, glo);
        let hi = self.or(fhi, ghi);
        let r = self.mk(v, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        if f == BDD_FALSE {
            return g;
        }
        if g == BDD_FALSE {
            return f;
        }
        if f == g {
            return BDD_FALSE;
        }
        if f == BDD_TRUE {
            return self.not(g);
        }
        if g == BDD_TRUE {
            return self.not(f);
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.xor_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors_at(f, v);
        let (glo, ghi) = self.cofactors_at(g, v);
        let lo = self.xor(flo, glo);
        let hi = self.xor(fhi, ghi);
        let r = self.mk(v, lo, hi);
        self.xor_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        if f == BDD_FALSE {
            return BDD_TRUE;
        }
        if f == BDD_TRUE {
            return BDD_FALSE;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let Node { var, lo, hi } = self.nodes[f as usize];
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(var, nlo, nhi);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// If-then-else.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// The BDD of a single minterm (conjunction of all variables with the
    /// pattern's polarities), built bottom-up.
    ///
    /// # Panics
    ///
    /// Panics if the pattern arity differs from `num_vars()`.
    pub fn minterm(&mut self, p: &Pattern) -> BddRef {
        assert_eq!(p.len(), self.num_vars, "pattern arity mismatch");
        let mut acc = BDD_TRUE;
        for var in (0..self.num_vars).rev() {
            acc = if p.get(var) {
                self.mk(var as u32, BDD_FALSE, acc)
            } else {
                self.mk(var as u32, acc, BDD_FALSE)
            };
        }
        acc
    }

    /// Builds `(onset, careset)` BDDs from a labelled dataset: the onset is
    /// the OR of positive minterms, the care set the OR of all minterms.
    ///
    /// Construction is *columnar*: instead of building one minterm BDD per
    /// row and OR-ing them together (quadratic apply-cache churn), the
    /// dataset's cached [`BitColumns`] transpose is cofactored top-down —
    /// the example subset reaching each recursion is a packed mask, split
    /// by the current variable's column with one `AND`/`ANDNOT` pass, and a
    /// leaf is positive iff `|mask ∧ labels| > 0` (one popcount). BDDs are
    /// canonical per manager, so the result is node-for-node identical to
    /// the row-major construction (retained as
    /// [`BddManager::from_dataset_row_major`]).
    ///
    /// # Panics
    ///
    /// Panics if the dataset arity differs from `num_vars()`.
    pub fn from_dataset(&mut self, ds: &Dataset) -> (BddRef, BddRef) {
        assert_eq!(ds.num_inputs(), self.num_vars, "dataset arity mismatch");
        if ds.is_empty() {
            return (BDD_FALSE, BDD_FALSE);
        }
        let cols = ds.bit_columns();
        let mask = cols.full_mask();
        // Buffer pool for the per-level child masks: the recursion depth is
        // `num_vars`, so at most two live buffers per level.
        let mut pool: Vec<Vec<u64>> = Vec::new();
        self.cofactor_build(&cols, &mask, 0, &mut pool)
    }

    /// The pre-columnar construction: one minterm BDD per row, OR-ed in
    /// dataset order. Kept as the reference for differential tests and the
    /// `kernels` benchmark baseline; prefer [`BddManager::from_dataset`].
    #[doc(hidden)]
    pub fn from_dataset_row_major(&mut self, ds: &Dataset) -> (BddRef, BddRef) {
        let mut onset = BDD_FALSE;
        let mut care = BDD_FALSE;
        for (p, o) in ds.iter() {
            let m = self.minterm(p);
            care = self.or(care, m);
            if o {
                onset = self.or(onset, m);
            }
        }
        (onset, care)
    }

    /// Shannon-expands the example subset in `mask` on variable `var`,
    /// returning `(onset, care)` for the cofactor. Empty subsets terminate
    /// immediately, so the recursion visits only the trie of distinct
    /// example prefixes.
    fn cofactor_build(
        &mut self,
        cols: &lsml_pla::BitColumns,
        mask: &[u64],
        var: usize,
        pool: &mut Vec<Vec<u64>>,
    ) -> (BddRef, BddRef) {
        let count = lsml_pla::BitColumns::count_ones(mask);
        if count == 0 {
            return (BDD_FALSE, BDD_FALSE);
        }
        if var == self.num_vars {
            // All variables assigned: the subset is one repeated minterm.
            // It is care, and on iff any occurrence is labelled positive.
            let on = lsml_pla::BitColumns::count_and(mask, cols.labels()) > 0;
            return (if on { BDD_TRUE } else { BDD_FALSE }, BDD_TRUE);
        }
        let mut lo_mask = pool.pop().unwrap_or_default();
        let mut hi_mask = pool.pop().unwrap_or_default();
        cols.split_mask_into(var, mask, &mut lo_mask, &mut hi_mask);
        let (on_lo, care_lo) = self.cofactor_build(cols, &lo_mask, var + 1, pool);
        let (on_hi, care_hi) = self.cofactor_build(cols, &hi_mask, var + 1, pool);
        pool.push(lo_mask);
        pool.push(hi_mask);
        (
            self.mk(var as u32, on_lo, on_hi),
            self.mk(var as u32, care_lo, care_hi),
        )
    }

    /// Evaluates a BDD on a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern arity differs from `num_vars()`.
    pub fn eval(&self, f: BddRef, p: &Pattern) -> bool {
        assert_eq!(p.len(), self.num_vars, "pattern arity mismatch");
        let mut at = f;
        while at > 1 {
            let Node { var, lo, hi } = self.nodes[at as usize];
            at = if p.get(var as usize) { hi } else { lo };
        }
        at == BDD_TRUE
    }

    /// Number of nodes reachable from `f` (excluding terminals).
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let Node { lo, hi, .. } = self.nodes[n as usize];
            stack.push(lo);
            stack.push(hi);
        }
        seen.len()
    }

    /// Minimizes `f` against the care set `care`: the result agrees with `f`
    /// on every care minterm and is chosen to have a small BDD. This is Team
    /// 1's appendix method; see [`MinimizeStyle`] for the three levels.
    ///
    /// Restrict-style operators can occasionally *grow* the BDD (a known
    /// pathology Team 1 countered with gain thresholds); if that happens the
    /// original `f` is returned unchanged.
    pub fn minimize(&mut self, f: BddRef, care: BddRef, style: MinimizeStyle) -> BddRef {
        let mut cache: HashMap<(BddRef, BddRef), BddRef> = HashMap::new();
        let minimized = self.minimize_rec(f, care, style, &mut cache);
        if self.size(minimized) <= self.size(f) {
            minimized
        } else {
            f
        }
    }

    fn minimize_rec(
        &mut self,
        f: BddRef,
        care: BddRef,
        style: MinimizeStyle,
        cache: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if care == BDD_FALSE {
            // Entirely don't-care: any function works; constant false is
            // smallest.
            return BDD_FALSE;
        }
        if f <= 1 || care == BDD_TRUE && self.var_of(f) == u32::MAX {
            return f;
        }
        if let Some(&r) = cache.get(&(f, care)) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(care));
        if v == u32::MAX {
            return f;
        }
        let (flo, fhi) = self.cofactors_at(f, v);
        let (clo, chi) = self.cofactors_at(care, v);

        let result = if clo == BDD_FALSE {
            // One-sided: the lo branch never matters.
            self.minimize_rec(fhi, chi, style, cache)
        } else if chi == BDD_FALSE {
            self.minimize_rec(flo, clo, style, cache)
        } else {
            let mut merged: Option<BddRef> = None;
            if style >= MinimizeStyle::TwoSided {
                // Children compatible where both care?
                let diff = self.xor(flo, fhi);
                let common = self.and(clo, chi);
                let conflict = self.and(diff, common);
                if conflict == BDD_FALSE {
                    let a = self.and(flo, clo);
                    let b = self.and(fhi, chi);
                    let g = self.or(a, b);
                    let cc = self.or(clo, chi);
                    merged = Some(self.minimize_rec(g, cc, style, cache));
                }
            }
            if merged.is_none() && style >= MinimizeStyle::ComplementedTwoSided {
                // Children complementary where both care? Then f = v XOR h.
                let nfhi = self.not(fhi);
                let same = self.xor(flo, nfhi);
                let common = self.and(clo, chi);
                let conflict = self.and(same, common);
                if conflict == BDD_FALSE {
                    let a = self.and(flo, clo);
                    let b = self.and(nfhi, chi);
                    let g = self.or(a, b);
                    let cc = self.or(clo, chi);
                    let h = self.minimize_rec(g, cc, style, cache);
                    let nh = self.not(h);
                    merged = Some(self.mk(v, h, nh));
                }
            }
            match merged {
                Some(r) => r,
                None => {
                    let lo = self.minimize_rec(flo, clo, style, cache);
                    let hi = self.minimize_rec(fhi, chi, style, cache);
                    self.mk(v, lo, hi)
                }
            }
        };
        cache.insert((f, care), result);
        result
    }

    /// Compiles a BDD into an AIG (one multiplexer per reachable node).
    pub fn to_aig(&self, f: BddRef) -> Aig {
        let mut aig = Aig::new(self.num_vars);
        let mut memo: HashMap<BddRef, Lit> = HashMap::new();
        let out = self.build_lit(f, &mut aig, &mut memo);
        aig.add_output(out);
        aig.cleanup();
        aig
    }

    fn build_lit(&self, f: BddRef, aig: &mut Aig, memo: &mut HashMap<BddRef, Lit>) -> Lit {
        if f == BDD_FALSE {
            return Lit::FALSE;
        }
        if f == BDD_TRUE {
            return Lit::TRUE;
        }
        if let Some(&l) = memo.get(&f) {
            return l;
        }
        let Node { var, lo, hi } = self.nodes[f as usize];
        let sel = aig.input(var as usize);
        let llo = self.build_lit(lo, aig, memo);
        let lhi = self.build_lit(hi, aig, memo);
        let l = aig.mux(sel, lhi, llo);
        memo.insert(f, l);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(mgr: &BddManager, f: BddRef, nv: usize, expect: impl Fn(u64) -> bool) {
        for m in 0..(1u64 << nv) {
            let p = Pattern::from_index(m, nv);
            assert_eq!(mgr.eval(f, &p), expect(m), "mismatch at {m:b}");
        }
    }

    #[test]
    fn boolean_ops_are_correct() {
        let mut mgr = BddManager::new(3);
        let x0 = mgr.variable(0);
        let x1 = mgr.variable(1);
        let x2 = mgr.variable(2);
        let a = mgr.and(x0, x1);
        let o = mgr.or(a, x2);
        let x = mgr.xor(x0, x1);
        let n = mgr.not(o);
        exhaustive_check(&mgr, a, 3, |m| m & 0b11 == 0b11);
        exhaustive_check(&mgr, o, 3, |m| m & 0b11 == 0b11 || m & 0b100 != 0);
        exhaustive_check(&mgr, x, 3, |m| (m ^ (m >> 1)) & 1 == 1);
        exhaustive_check(&mgr, n, 3, |m| !(m & 0b11 == 0b11 || m & 0b100 != 0));
    }

    #[test]
    fn bdd_is_canonical() {
        let mut mgr = BddManager::new(2);
        let x0 = mgr.variable(0);
        let x1 = mgr.variable(1);
        // x0 AND x1 built two ways is the same node.
        let a = mgr.and(x0, x1);
        let n0 = mgr.not(x0);
        let n1 = mgr.not(x1);
        let no = mgr.or(n0, n1);
        let b = mgr.not(no);
        assert_eq!(a, b);
    }

    #[test]
    fn ite_matches_mux_semantics() {
        let mut mgr = BddManager::new(3);
        let (s, t, e) = (mgr.variable(0), mgr.variable(1), mgr.variable(2));
        let f = mgr.ite(s, t, e);
        exhaustive_check(&mgr, f, 3, |m| {
            if m & 1 == 1 {
                m & 0b10 != 0
            } else {
                m & 0b100 != 0
            }
        });
    }

    #[test]
    fn minterm_and_dataset_roundtrip() {
        let mut mgr = BddManager::new(4);
        let p = Pattern::from_index(0b1010, 4);
        let m = mgr.minterm(&p);
        exhaustive_check(&mgr, m, 4, |x| x == 0b1010);
    }

    #[test]
    fn xor_of_many_vars_shares_nodes() {
        // Parity has a linear-size BDD; this is what let Team 1's BDD learn
        // 24-XOR while trees could not.
        let mut mgr = BddManager::new(10);
        let mut f = BDD_FALSE;
        for v in 0..10 {
            let x = mgr.variable(v);
            f = mgr.xor(f, x);
        }
        assert!(mgr.size(f) <= 2 * 10);
        exhaustive_check(&mgr, f, 10, |m| m.count_ones() % 2 == 1);
    }

    #[test]
    fn one_sided_minimization_generalizes() {
        // f = x1 sampled at 4 points of a 3-var space.
        let mut ds = Dataset::new(3);
        ds.push(Pattern::from_index(0b010, 3), true);
        ds.push(Pattern::from_index(0b111, 3), true);
        ds.push(Pattern::from_index(0b000, 3), false);
        ds.push(Pattern::from_index(0b101, 3), false);
        let mut mgr = BddManager::new(3);
        let (onset, care) = mgr.from_dataset(&ds);
        let f = mgr.minimize(onset, care, MinimizeStyle::OneSided);
        exhaustive_check(&mgr, f, 3, |m| m & 0b10 != 0);
        assert_eq!(mgr.size(f), 1);
    }

    #[test]
    fn minimized_function_agrees_on_care_set() {
        // Random-ish labelled samples; all three styles must stay exact on
        // the care set.
        let mut ds = Dataset::new(6);
        for m in 0..40u64 {
            let x = (m * 37 + 11) % 64;
            ds.push(Pattern::from_index(x, 6), (x * 23 + 7) % 5 < 2);
        }
        for style in [
            MinimizeStyle::OneSided,
            MinimizeStyle::TwoSided,
            MinimizeStyle::ComplementedTwoSided,
        ] {
            let mut mgr = BddManager::new(6);
            let (onset, care) = mgr.from_dataset(&ds);
            let f = mgr.minimize(onset, care, style);
            for (p, o) in ds.iter() {
                assert_eq!(mgr.eval(f, p), o, "style {style:?} wrong on {p}");
            }
            assert!(mgr.size(f) <= mgr.size(onset));
        }
    }

    #[test]
    fn complemented_matching_learns_xor_from_samples() {
        // Samples of x0 XOR x1 over 4 vars; complemented two-sided matching
        // can collapse to the XOR structure.
        let mut ds = Dataset::new(4);
        for m in 0..16u64 {
            ds.push(Pattern::from_index(m, 4), (m ^ (m >> 1)) & 1 == 1);
        }
        let mut mgr = BddManager::new(4);
        let (onset, care) = mgr.from_dataset(&ds);
        let f = mgr.minimize(onset, care, MinimizeStyle::ComplementedTwoSided);
        exhaustive_check(&mgr, f, 4, |m| (m ^ (m >> 1)) & 1 == 1);
        assert!(mgr.size(f) <= 3);
    }

    #[test]
    fn columnar_from_dataset_matches_row_major_node_for_node() {
        // BDDs are canonical per manager: building both ways in one
        // manager must yield the *same refs*, not just equal functions.
        for (nv, stride, salt) in [(1usize, 1u64, 1u64), (4, 3, 5), (6, 7, 11), (8, 5, 23)] {
            let mut ds = Dataset::new(nv);
            for k in 0..200u64 {
                let x = (k * stride + salt) % (1 << nv);
                ds.push(Pattern::from_index(x, nv), (x * 31 + salt) % 7 < 3);
            }
            let mut mgr = BddManager::new(nv);
            let (on_rows, care_rows) = mgr.from_dataset_row_major(&ds);
            let (on_cols, care_cols) = mgr.from_dataset(&ds);
            assert_eq!(on_cols, on_rows, "onset diverges at nv={nv}");
            assert_eq!(care_cols, care_rows, "careset diverges at nv={nv}");
        }
        // Empty dataset: both constant false.
        let mut mgr = BddManager::new(3);
        assert_eq!(mgr.from_dataset(&Dataset::new(3)), (BDD_FALSE, BDD_FALSE));
    }

    #[test]
    fn to_aig_matches_bdd() {
        let mut mgr = BddManager::new(5);
        let x0 = mgr.variable(0);
        let x2 = mgr.variable(2);
        let x4 = mgr.variable(4);
        let t = mgr.xor(x0, x2);
        let f = mgr.ite(x4, t, x0);
        let aig = mgr.to_aig(f);
        for m in 0..32u64 {
            let p = Pattern::from_index(m, 5);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(aig.eval(&bits)[0], mgr.eval(f, &p), "at {m:05b}");
        }
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut mgr = BddManager::new(2);
        let x0 = mgr.variable(0);
        let x1 = mgr.variable(1);
        let f = mgr.and(x0, x1);
        assert_eq!(mgr.size(f), 2);
        assert_eq!(mgr.size(BDD_TRUE), 0);
    }
}
