//! Generator for the IWLS 2020 contest benchmark suite.
//!
//! The contest used 100 single-output functions in ten categories (paper
//! Table I): arithmetic bits (adders, dividers, multipliers, comparators,
//! square-rooters), logic cones extracted from PicoJava and MCNC designs,
//! 16-input symmetric functions, and binary classification problems derived
//! from MNIST and CIFAR-10 (Table II group comparisons). Each benchmark
//! ships as three disjoint 6400-minterm sets: training, validation, test.
//!
//! Two substitutions (documented in DESIGN.md) stand in for artifacts we do
//! not have:
//!
//! * the PicoJava/MCNC cones are replaced by seeded pseudo-random AIG cones
//!   rejection-sampled for a roughly balanced onset/offset — matching how
//!   the paper describes those benchmarks;
//! * MNIST/CIFAR images are replaced by synthetic class-prototype models
//!   (10 classes, per-sample bit noise; the CIFAR substitute uses weaker
//!   prototypes and more noise so it stays the harder category, as in the
//!   paper's Fig. 3).
//!
//! # Examples
//!
//! ```
//! use lsml_benchgen::{suite, SampleConfig};
//!
//! let all = suite();
//! assert_eq!(all.len(), 100);
//!
//! // Sample a small version of ex30 (10-bit comparator).
//! let data = all[30].sample(&SampleConfig { samples_per_split: 200, seed: 1 });
//! assert_eq!(data.train.len(), 200);
//! assert_eq!(data.train.num_inputs(), 20);
//! ```

pub mod arith;
pub mod cones;
pub mod mlgen;
mod suite;

pub use suite::{suite, BenchData, Benchmark, Category, Generator, Oracle, SampleConfig};
