//! Pseudo-random logic cones.
//!
//! Stand-ins for the PicoJava and MCNC (i10, cordic, too_large, t481)
//! outputs used in benchmarks ex50–ex73. The paper describes those cones as
//! random logic with 16–200 inputs and a "roughly balanced onset & offset";
//! we generate seeded random AIG cones and rejection-sample until the
//! sampled output bias lands in a balanced band. Downstream learners see
//! exactly what they saw in the contest: an unknown multi-level function
//! with no arithmetic regularity.

use lsml_aig::{Aig, Lit};
use lsml_pla::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random cone with `num_inputs` inputs whose onset rate over
/// random stimulus falls within `[0.35, 0.65]`. Deterministic per seed.
pub fn random_cone(num_inputs: usize, seed: u64) -> Aig {
    for attempt in 0..200u64 {
        let aig = build_candidate(num_inputs, seed.wrapping_add(attempt * 0x9e37_79b9));
        let bias = onset_rate(&aig, 2048, seed ^ 0xabcd);
        if (0.35..=0.65).contains(&bias) {
            return aig;
        }
    }
    // Deterministic fallback: parity of three inputs XORed with the last
    // candidate keeps the bias at exactly 50%.
    let mut aig = build_candidate(num_inputs, seed);
    let out = aig.outputs()[0];
    let a = aig.input(0);
    let b = aig.input(num_inputs / 2);
    let x = aig.xor(a, b);
    let f = aig.xor(out, x);
    aig.clear_outputs();
    aig.add_output(f);
    aig
}

/// One candidate cone: layered random AND/OR/XOR gates over earlier signals,
/// with the output XOR-mixing a few deep signals (XOR mixing pushes the
/// bias towards 1/2, which is where the rejection band lives).
fn build_candidate(num_inputs: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new(num_inputs);
    let mut signals: Vec<Lit> = aig.inputs();
    let gates = (num_inputs * 3).clamp(48, 640);
    for _ in 0..gates {
        let a = signals[rng.gen_range(0..signals.len())].complement_if(rng.gen_bool(0.5));
        let b = signals[rng.gen_range(0..signals.len())].complement_if(rng.gen_bool(0.5));
        let s = match rng.gen_range(0..5) {
            0 | 1 => aig.and(a, b),
            2 | 3 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        signals.push(s);
    }
    // Output: XOR of a handful of late signals.
    let tail = signals.len().saturating_sub(gates / 2);
    let picks: Vec<Lit> = (0..3)
        .map(|_| signals[rng.gen_range(tail..signals.len())])
        .collect();
    let out = aig.xor_many(&picks);
    aig.add_output(out);
    aig.cleanup();
    aig
}

/// Fraction of `samples` random patterns on which the cone outputs one.
pub fn onset_rate(aig: &Aig, samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let patterns: Vec<Pattern> = (0..samples)
        .map(|_| Pattern::random(&mut rng, aig.num_inputs()))
        .collect();
    let preds = lsml_aig::sim::eval_patterns(aig, &patterns);
    preds.iter().filter(|&&b| b).count() as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cones_are_balanced() {
        for (n, seed) in [(16usize, 0u64), (48, 1), (100, 2), (200, 3)] {
            let aig = random_cone(n, seed);
            assert_eq!(aig.num_inputs(), n);
            let bias = onset_rate(&aig, 4096, 99);
            assert!(
                (0.30..=0.70).contains(&bias),
                "cone n={n} seed={seed} bias={bias}"
            );
        }
    }

    #[test]
    fn cones_are_deterministic() {
        let a = random_cone(32, 7);
        let b = random_cone(32, 7);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = Pattern::random(&mut rng, 32);
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = random_cone(24, 1);
        let b = random_cone(24, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut differ = false;
        for _ in 0..200 {
            let p = Pattern::random(&mut rng, 24);
            let bits: Vec<bool> = p.iter().collect();
            if a.eval(&bits) != b.eval(&bits) {
                differ = true;
                break;
            }
        }
        assert!(differ);
    }

    #[test]
    fn cones_are_nontrivial() {
        let aig = random_cone(40, 13);
        assert!(aig.num_ands() > 20, "only {} gates", aig.num_ands());
    }
}
