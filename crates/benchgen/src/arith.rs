//! Multiword (bignum) arithmetic oracles.
//!
//! Little-endian `u64` word vectors model operands up to 256 bits — enough
//! for every arithmetic benchmark in the suite. These are the *reference
//! models* against which the AIG circuit builders are also property-tested.

/// `a + b` with one word of headroom.
pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len().max(b.len()) + 1;
    let mut out = vec![0u64; len];
    let mut carry = 0u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    out
}

/// Unsigned comparison `a < b`.
pub fn less_than(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len().max(b.len())).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x < y;
        }
    }
    false
}

/// Whether `a` is zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&w| w == 0)
}

/// `a - b`, assuming `a >= b` (two's-complement borrow chain).
pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len().max(b.len());
    let mut out = vec![0u64; len];
    let mut borrow = 0u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *slot = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "sub underflow: a < b");
    out
}

/// Schoolbook multiplication.
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = u128::from(x) * u128::from(y) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Bit `bit` of a word vector.
pub fn bit(a: &[u64], bit: usize) -> bool {
    a.get(bit / 64).is_some_and(|w| (w >> (bit % 64)) & 1 == 1)
}

/// Sets bit `bit` of a word vector (which must be long enough).
pub fn set_bit(a: &mut [u64], bit: usize) {
    a[bit / 64] |= 1u64 << (bit % 64);
}

/// Restoring long division of `k`-bit operands: returns `(quotient,
/// remainder)`. Division by zero follows the usual hardware convention:
/// quotient = all ones, remainder = dividend.
pub fn div_rem(a: &[u64], b: &[u64], k: usize) -> (Vec<u64>, Vec<u64>) {
    let words = k.div_ceil(64).max(1);
    if is_zero(b) {
        let mut q = vec![u64::MAX; words];
        let rem = k % 64;
        if rem != 0 {
            q[words - 1] = (1u64 << rem) - 1;
        }
        return (q, a[..words.min(a.len())].to_vec());
    }
    let mut q = vec![0u64; words];
    let mut r = vec![0u64; words + 1];
    for i in (0..k).rev() {
        // r = (r << 1) | a[i]
        for w in (1..r.len()).rev() {
            r[w] = (r[w] << 1) | (r[w - 1] >> 63);
        }
        r[0] <<= 1;
        if bit(a, i) {
            r[0] |= 1;
        }
        if !less_than(&r, b) {
            r = sub(&r, b);
            set_bit(&mut q, i);
        }
    }
    r.truncate(words);
    (q, r)
}

/// Integer square root of a `k`-bit operand: the largest `root` with
/// `root * root <= a`, returned with `k/2` bits of width.
pub fn isqrt(a: &[u64], k: usize) -> Vec<u64> {
    let half = k / 2;
    let words = half.div_ceil(64).max(1);
    let mut root = vec![0u64; words];
    for i in (0..half).rev() {
        let mut candidate = root.clone();
        set_bit(&mut candidate, i);
        let square = mul(&candidate, &candidate);
        // square <= a  <=>  !(a < square)
        if !less_than(a, &square) {
            root = candidate;
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: u128) -> Vec<u64> {
        vec![v as u64, (v >> 64) as u64]
    }

    fn v(a: &[u64]) -> u128 {
        u128::from(a[0]) | (a.get(1).map_or(0, |&x| u128::from(x)) << 64)
    }

    #[test]
    fn add_small_and_carry() {
        assert_eq!(v(&add(&w(3), &w(4))), 7);
        assert_eq!(v(&add(&w(u64::MAX as u128), &w(1))), 1u128 << 64);
    }

    #[test]
    fn sub_matches_u128() {
        for (a, b) in [(100u128, 37), (1u128 << 70, 1), (5, 5)] {
            assert_eq!(v(&sub(&w(a), &w(b))), a - b);
        }
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [
            (0u128, 7),
            (123, 456),
            (u64::MAX as u128, 3),
            (1 << 40, 1 << 23),
        ] {
            assert_eq!(v(&mul(&w(a), &w(b))[..2]), a * b);
        }
    }

    #[test]
    fn less_than_is_strict() {
        assert!(less_than(&w(3), &w(4)));
        assert!(!less_than(&w(4), &w(4)));
        assert!(!less_than(&w(5), &w(4)));
        assert!(less_than(&w(5), &w(1 << 80)));
    }

    #[test]
    fn div_rem_matches_u128() {
        for (a, b) in [(100u128, 7u128), (12345, 123), (1 << 90, 3), (42, 100)] {
            let (q, r) = div_rem(&w(a), &w(b), 128);
            assert_eq!(v(&q), a / b, "quotient of {a}/{b}");
            assert_eq!(v(&r), a % b, "remainder of {a}/{b}");
        }
    }

    #[test]
    fn div_by_zero_convention() {
        let (q, r) = div_rem(&w(99), &w(0), 16);
        assert_eq!(q[0], 0xFFFF);
        assert_eq!(r[0], 99);
    }

    #[test]
    fn isqrt_matches_reference() {
        for a in [
            0u128,
            1,
            2,
            3,
            4,
            15,
            16,
            17,
            99,
            100,
            1 << 50,
            (1 << 50) + 12345,
        ] {
            let root = v(&isqrt(&w(a), 128));
            assert!(root * root <= a, "a={a} root={root}");
            assert!((root + 1) * (root + 1) > a, "a={a} root={root}");
        }
    }

    #[test]
    fn bit_accessors() {
        let mut x = vec![0u64; 4];
        set_bit(&mut x, 0);
        set_bit(&mut x, 77);
        set_bit(&mut x, 255);
        assert!(bit(&x, 0) && bit(&x, 77) && bit(&x, 255));
        assert!(!bit(&x, 1) && !bit(&x, 78));
    }
}
