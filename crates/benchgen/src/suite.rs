//! The 100-benchmark suite (paper Tables I and II).

use std::collections::HashSet;

use lsml_aig::Aig;
use lsml_pla::{Dataset, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arith;
use crate::cones::random_cone;
use crate::mlgen::{ImageModel, GROUPS};

/// The ten benchmark categories of Table I.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// ex00–09: two MSBs of k-bit adders.
    Adder,
    /// ex10–19: MSB of k-bit dividers and remainder circuits.
    Divider,
    /// ex20–29: MSB and middle bit of k-bit multipliers.
    Multiplier,
    /// ex30–39: k-bit comparators.
    Comparator,
    /// ex40–49: LSB and middle bit of k-bit square-rooters.
    SquareRooter,
    /// ex50–59: PicoJava logic cones (random-cone substitute).
    PicoJava,
    /// ex60–69: MCNC i10 logic cones (random-cone substitute).
    I10,
    /// ex70–79: other MCNC cones + 16-input symmetric functions.
    MiscSymmetric,
    /// ex80–89: MNIST group comparisons (synthetic substitute).
    Mnist,
    /// ex90–99: CIFAR-10 group comparisons (synthetic substitute).
    Cifar,
}

impl Category {
    /// The category of benchmark `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 100`.
    pub fn of(id: usize) -> Category {
        match id {
            0..=9 => Category::Adder,
            10..=19 => Category::Divider,
            20..=29 => Category::Multiplier,
            30..=39 => Category::Comparator,
            40..=49 => Category::SquareRooter,
            50..=59 => Category::PicoJava,
            60..=69 => Category::I10,
            70..=79 => Category::MiscSymmetric,
            80..=89 => Category::Mnist,
            90..=99 => Category::Cifar,
            other => panic!("benchmark id {other} out of range"),
        }
    }
}

/// How a benchmark produces labelled examples.
#[derive(Clone, Debug)]
pub enum Generator {
    /// A deterministic oracle: uniform random input patterns labelled by a
    /// function evaluation.
    Oracle(Oracle),
    /// A generative class model (the ML benchmarks): `(model, group index)`.
    ClassModel(ImageModel, usize),
}

/// Deterministic label oracles.
#[derive(Clone, Debug)]
pub enum Oracle {
    /// Bit `bit` of the (k+1)-bit sum of two k-bit operands.
    AdderBit {
        /// Operand width.
        k: usize,
        /// Sum bit index (k = carry/MSB).
        bit: usize,
    },
    /// MSB (bit k-1) of the k-bit quotient `a / b`.
    DividerMsb {
        /// Operand width.
        k: usize,
    },
    /// MSB (bit k-1) of the k-bit remainder `a % b`.
    RemainderMsb {
        /// Operand width.
        k: usize,
    },
    /// Bit `bit` of the 2k-bit product of two k-bit operands.
    MultiplierBit {
        /// Operand width.
        k: usize,
        /// Product bit index.
        bit: usize,
    },
    /// Unsigned `a < b` over two k-bit operands.
    LessThan {
        /// Operand width.
        k: usize,
    },
    /// Bit `bit` of the (k/2)-bit integer square root of a k-bit operand.
    SqrtBit {
        /// Operand width.
        k: usize,
        /// Root bit index.
        bit: usize,
    },
    /// A fixed logic cone.
    Cone(Aig),
    /// A fully symmetric function of 16 inputs.
    Symmetric {
        /// `signature[c]` = output when `c` inputs are one.
        signature: Vec<bool>,
    },
    /// Odd parity of all inputs.
    Parity,
}

impl Oracle {
    /// Number of input variables the oracle reads.
    pub fn num_inputs(&self) -> usize {
        match self {
            Oracle::AdderBit { k, .. }
            | Oracle::DividerMsb { k }
            | Oracle::RemainderMsb { k }
            | Oracle::MultiplierBit { k, .. }
            | Oracle::LessThan { k } => 2 * k,
            Oracle::SqrtBit { k, .. } => *k,
            Oracle::Cone(aig) => aig.num_inputs(),
            Oracle::Symmetric { signature } => signature.len() - 1,
            Oracle::Parity => 16,
        }
    }

    /// Evaluates the oracle on a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern arity differs from [`Oracle::num_inputs`].
    pub fn eval(&self, p: &Pattern) -> bool {
        assert_eq!(p.len(), self.num_inputs(), "pattern arity mismatch");
        match self {
            Oracle::AdderBit { k, bit } => {
                let (a, b) = split_operands(p, *k);
                arith::bit(&arith::add(&a, &b), *bit)
            }
            Oracle::DividerMsb { k } => {
                let (a, b) = split_operands(p, *k);
                let (q, _) = arith::div_rem(&a, &b, *k);
                arith::bit(&q, k - 1)
            }
            Oracle::RemainderMsb { k } => {
                let (a, b) = split_operands(p, *k);
                let (_, r) = arith::div_rem(&a, &b, *k);
                arith::bit(&r, k - 1)
            }
            Oracle::MultiplierBit { k, bit } => {
                let (a, b) = split_operands(p, *k);
                arith::bit(&arith::mul(&a, &b), *bit)
            }
            Oracle::LessThan { k } => {
                let (a, b) = split_operands(p, *k);
                arith::less_than(&a, &b)
            }
            Oracle::SqrtBit { k, bit } => {
                let a: Vec<u64> = p.words().to_vec();
                arith::bit(&arith::isqrt(&a, *k), *bit)
            }
            Oracle::Cone(aig) => {
                let bits: Vec<bool> = p.iter().collect();
                aig.eval(&bits)[0]
            }
            Oracle::Symmetric { signature } => signature[p.count_ones()],
            Oracle::Parity => p.count_ones() % 2 == 1,
        }
    }
}

/// Splits a 2k-bit pattern into two k-bit little-endian operands (contest
/// layout: each word's inputs run LSB to MSB).
fn split_operands(p: &Pattern, k: usize) -> (Vec<u64>, Vec<u64>) {
    let words = k.div_ceil(64).max(1);
    let mut a = vec![0u64; words];
    let mut b = vec![0u64; words];
    for i in 0..k {
        if p.get(i) {
            arith::set_bit(&mut a, i);
        }
        if p.get(k + i) {
            arith::set_bit(&mut b, i);
        }
    }
    (a, b)
}

/// One of the 100 contest benchmarks.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark id, 0–99 (the paper's exNN numbering).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Table I category.
    pub category: Category,
    /// Number of input variables.
    pub num_inputs: usize,
    /// The example generator.
    pub generator: Generator,
}

/// Sampling parameters for [`Benchmark::sample`].
#[derive(Copy, Clone, Debug)]
pub struct SampleConfig {
    /// Examples per split (the contest used 6400).
    pub samples_per_split: usize,
    /// Seed for the sampling RNG.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            samples_per_split: 6400,
            seed: 0,
        }
    }
}

/// A benchmark's three splits.
#[derive(Clone, Debug)]
pub struct BenchData {
    /// Training set (given to contestants).
    pub train: Dataset,
    /// Validation set (given to contestants).
    pub valid: Dataset,
    /// Test set (held back until scoring).
    pub test: Dataset,
}

impl Benchmark {
    /// Draws disjoint train/validation/test sets. Patterns never repeat
    /// across the three splits, matching the contest protocol of sampling
    /// from the function's input space without leaking the test set.
    pub fn sample(&self, cfg: &SampleConfig) -> BenchData {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (self.id as u64) << 32);
        let n = cfg.samples_per_split;
        let mut seen: HashSet<Pattern> = HashSet::with_capacity(3 * n);
        let mut splits: Vec<Dataset> = Vec::with_capacity(3);
        for _ in 0..3 {
            let mut ds = Dataset::new(self.num_inputs);
            let mut guard = 0usize;
            while ds.len() < n {
                guard += 1;
                assert!(
                    guard < 100 * n,
                    "cannot draw {n} unique samples for benchmark {}",
                    self.id
                );
                let (p, label) = match &self.generator {
                    Generator::Oracle(oracle) => {
                        let p = Pattern::random(&mut rng, self.num_inputs);
                        let label = oracle.eval(&p);
                        (p, label)
                    }
                    Generator::ClassModel(model, group) => {
                        let (ga, gb) = GROUPS[*group];
                        let one = model.group_dataset(ga, gb, 1, &mut rng);
                        (one.pattern(0).clone(), one.output(0))
                    }
                };
                if seen.insert(p.clone()) {
                    ds.push(p, label);
                }
            }
            splits.push(ds);
        }
        let test = splits.pop().expect("three splits");
        let valid = splits.pop().expect("three splits");
        let train = splits.pop().expect("three splits");
        BenchData { train, valid, test }
    }

    /// Evaluates the ground-truth oracle, if the benchmark has one (the ML
    /// class models do not — their labels are generative).
    pub fn oracle_eval(&self, p: &Pattern) -> Option<bool> {
        match &self.generator {
            Generator::Oracle(o) => Some(o.eval(p)),
            Generator::ClassModel(..) => None,
        }
    }
}

/// The five 16-input symmetric signatures of ex75–ex79 (ABC `symfun`
/// signatures from the paper, MSB = all-ones count first).
const SYMMETRIC_SIGNATURES: [&str; 5] = [
    "00000000111111111",
    "11111100000111111",
    "00011110001111000",
    "00001110101110000",
    "00000011111000000",
];

/// Builds the complete 100-benchmark suite. Deterministic: every call
/// produces identical benchmarks (cones and image models are seeded by
/// benchmark id).
pub fn suite() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(100);
    let adder_ks = [16usize, 32, 64, 128, 256];
    // ex00-09: 2 MSBs of k-bit adders (carry = bit k, then bit k-1).
    for (i, &k) in adder_ks.iter().enumerate() {
        for (j, bit) in [k, k - 1].into_iter().enumerate() {
            let id = 2 * i + j;
            out.push(mk(
                id,
                format!("ex{id:02}-add{k}-bit{bit}"),
                Generator::Oracle(Oracle::AdderBit { k, bit }),
            ));
        }
    }
    // ex10-19: divider MSB and remainder MSB.
    for (i, &k) in adder_ks.iter().enumerate() {
        let id = 10 + 2 * i;
        out.push(mk(
            id,
            format!("ex{id:02}-div{k}-q-msb"),
            Generator::Oracle(Oracle::DividerMsb { k }),
        ));
        let id = id + 1;
        out.push(mk(
            id,
            format!("ex{id:02}-div{k}-r-msb"),
            Generator::Oracle(Oracle::RemainderMsb { k }),
        ));
    }
    // ex20-29: multiplier MSB and middle bit, k in {8,...,128}.
    for (i, &k) in [8usize, 16, 32, 64, 128].iter().enumerate() {
        for (j, bit) in [2 * k - 1, k - 1].into_iter().enumerate() {
            let id = 20 + 2 * i + j;
            out.push(mk(
                id,
                format!("ex{id:02}-mul{k}-bit{bit}"),
                Generator::Oracle(Oracle::MultiplierBit { k, bit }),
            ));
        }
    }
    // ex30-39: comparators, k = 10..=100 step 10.
    for i in 0..10usize {
        let k = 10 * (i + 1);
        let id = 30 + i;
        out.push(mk(
            id,
            format!("ex{id:02}-cmp{k}"),
            Generator::Oracle(Oracle::LessThan { k }),
        ));
    }
    // ex40-49: square-rooter LSB and middle bit.
    for (i, &k) in adder_ks.iter().enumerate() {
        for (j, bit) in [0usize, k / 4].into_iter().enumerate() {
            let id = 40 + 2 * i + j;
            out.push(mk(
                id,
                format!("ex{id:02}-sqrt{k}-bit{bit}"),
                Generator::Oracle(Oracle::SqrtBit { k, bit }),
            ));
        }
    }
    // ex50-59: PicoJava-style cones; ex60-69: i10-style cones.
    let pico_inputs = [32usize, 47, 64, 85, 16, 120, 140, 100, 170, 200];
    let i10_inputs = [18usize, 25, 40, 56, 73, 90, 110, 130, 155, 180];
    for (i, &n) in pico_inputs.iter().enumerate() {
        let id = 50 + i;
        out.push(mk(
            id,
            format!("ex{id:02}-picojava-cone{n}"),
            Generator::Oracle(Oracle::Cone(random_cone(n, 5000 + id as u64))),
        ));
    }
    for (i, &n) in i10_inputs.iter().enumerate() {
        let id = 60 + i;
        out.push(mk(
            id,
            format!("ex{id:02}-i10-cone{n}"),
            Generator::Oracle(Oracle::Cone(random_cone(n, 6000 + id as u64))),
        ));
    }
    // ex70-74: cordic (x2), too_large, t481, parity.
    for (i, (name, n)) in [
        ("cordic0", 23usize),
        ("cordic1", 23),
        ("too_large", 38),
        ("t481", 16),
    ]
    .into_iter()
    .enumerate()
    {
        let id = 70 + i;
        out.push(mk(
            id,
            format!("ex{id:02}-{name}"),
            Generator::Oracle(Oracle::Cone(random_cone(n, 7000 + id as u64))),
        ));
    }
    out.push(mk(
        74,
        "ex74-parity16".to_owned(),
        Generator::Oracle(Oracle::Parity),
    ));
    // ex75-79: the five symmetric functions.
    for (i, sig) in SYMMETRIC_SIGNATURES.iter().enumerate() {
        let id = 75 + i;
        let signature: Vec<bool> = sig.chars().map(|c| c == '1').collect();
        assert_eq!(signature.len(), 17, "16-input signature");
        out.push(mk(
            id,
            format!("ex{id:02}-sym16-{sig}"),
            Generator::Oracle(Oracle::Symmetric { signature }),
        ));
    }
    // ex80-89 MNIST-sub; ex90-99 CIFAR-sub.
    for g in 0..10usize {
        let id = 80 + g;
        out.push(mk(
            id,
            format!("ex{id:02}-mnist-g{g}"),
            Generator::ClassModel(ImageModel::mnist_like(8000), g),
        ));
    }
    for g in 0..10usize {
        let id = 90 + g;
        out.push(mk(
            id,
            format!("ex{id:02}-cifar-g{g}"),
            Generator::ClassModel(ImageModel::cifar_like(9000), g),
        ));
    }
    debug_assert_eq!(out.len(), 100);
    out
}

fn mk(id: usize, name: String, generator: Generator) -> Benchmark {
    let num_inputs = match &generator {
        Generator::Oracle(o) => o.num_inputs(),
        Generator::ClassModel(m, _) => m.num_pixels,
    };
    Benchmark {
        id,
        name,
        category: Category::of(id),
        num_inputs,
        generator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_100_benchmarks_in_order() {
        let s = suite();
        assert_eq!(s.len(), 100);
        for (i, b) in s.iter().enumerate() {
            assert_eq!(b.id, i, "id mismatch for {}", b.name);
            assert_eq!(b.category, Category::of(i));
        }
    }

    #[test]
    fn input_counts_match_table_i() {
        let s = suite();
        assert_eq!(s[0].num_inputs, 32); // 16-bit adder: 2 operands
        assert_eq!(s[9].num_inputs, 512); // 256-bit adder
        assert_eq!(s[20].num_inputs, 16); // 8-bit multiplier
        assert_eq!(s[30].num_inputs, 20); // 10-bit comparator
        assert_eq!(s[39].num_inputs, 200); // 100-bit comparator
        assert_eq!(s[40].num_inputs, 16); // 16-bit square rooter
        assert_eq!(s[74].num_inputs, 16); // parity
        assert_eq!(s[75].num_inputs, 16); // symmetric
        assert_eq!(s[80].num_inputs, 196); // mnist-sub
        assert_eq!(s[90].num_inputs, 256); // cifar-sub
        for b in &s[50..70] {
            assert!((16..=200).contains(&b.num_inputs), "{}", b.name);
        }
    }

    #[test]
    fn sampling_is_deterministic_and_disjoint() {
        let s = suite();
        let cfg = SampleConfig {
            samples_per_split: 100,
            seed: 7,
        };
        let a = s[30].sample(&cfg);
        let b = s[30].sample(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        // Disjointness across splits.
        let train: HashSet<_> = a.train.patterns().iter().cloned().collect();
        for p in a.valid.patterns().iter().chain(a.test.patterns()) {
            assert!(!train.contains(p));
        }
    }

    #[test]
    fn oracle_labels_are_consistent() {
        let s = suite();
        let cfg = SampleConfig {
            samples_per_split: 50,
            seed: 3,
        };
        for b in [
            &s[0], &s[12], &s[25], &s[33], &s[44], &s[55], &s[74], &s[77],
        ] {
            let data = b.sample(&cfg);
            for (p, o) in data.train.iter() {
                assert_eq!(b.oracle_eval(p), Some(o), "inconsistent {}", b.name);
            }
        }
    }

    #[test]
    fn comparator_oracle_matches_simple_cases() {
        let oracle = Oracle::LessThan { k: 4 };
        // a = 3 (0011), b = 5 (0101): 11000101... LSB-first per operand.
        let mut p = Pattern::zeros(8);
        p.set(0, true);
        p.set(1, true); // a = 3
        p.set(4, true);
        p.set(6, true); // b = 5
        assert!(oracle.eval(&p));
        // a = 5, b = 3.
        let mut q = Pattern::zeros(8);
        q.set(0, true);
        q.set(2, true);
        q.set(4, true);
        q.set(5, true);
        assert!(!oracle.eval(&q));
    }

    #[test]
    fn adder_oracle_carry_bit() {
        let oracle = Oracle::AdderBit { k: 4, bit: 4 };
        // a = 15, b = 1 -> sum = 16 -> carry set.
        let mut p = Pattern::zeros(8);
        for i in 0..4 {
            p.set(i, true);
        }
        p.set(4, true);
        assert!(oracle.eval(&p));
        // a = 1, b = 1 -> no carry.
        let mut q = Pattern::zeros(8);
        q.set(0, true);
        q.set(4, true);
        assert!(!oracle.eval(&q));
    }

    #[test]
    fn sqrt_oracle_middle_bit() {
        let oracle = Oracle::SqrtBit { k: 16, bit: 4 };
        // a = 400 -> isqrt = 20 = 0b10100 -> bit 4 set.
        let p = Pattern::from_index(400, 16);
        assert!(oracle.eval(&p));
        // a = 225 -> isqrt = 15 = 0b1111 -> bit 4 clear.
        let q = Pattern::from_index(225, 16);
        assert!(!oracle.eval(&q));
    }

    #[test]
    fn symmetric_signatures_parse() {
        let s = suite();
        for b in &s[75..80] {
            if let Generator::Oracle(Oracle::Symmetric { signature }) = &b.generator {
                assert_eq!(signature.len(), 17);
            } else {
                panic!("{} should be symmetric", b.name);
            }
        }
    }

    #[test]
    fn ml_benchmarks_have_both_labels() {
        let s = suite();
        let cfg = SampleConfig {
            samples_per_split: 200,
            seed: 1,
        };
        for b in [&s[80], &s[91]] {
            let data = b.sample(&cfg);
            let pos = data.train.count_positive();
            assert!(pos > 40 && pos < 160, "{}: {pos}/200 positive", b.name);
            assert!(b.oracle_eval(data.train.pattern(0)).is_none());
        }
    }

    #[test]
    fn arithmetic_benchmarks_roughly_balanced_where_expected() {
        // Adder carry of a+b over random operands is ~50%.
        let s = suite();
        let data = s[0].sample(&SampleConfig {
            samples_per_split: 500,
            seed: 2,
        });
        let rate = data.train.positive_rate();
        assert!((0.3..=0.7).contains(&rate), "carry rate {rate}");
    }
}
