//! Synthetic MNIST/CIFAR-10 substitutes.
//!
//! Benchmarks ex80–ex99 compare digit/class groups per the paper's Table II.
//! We model each dataset as ten fixed class prototypes over a binary pixel
//! grid; a sample is its class prototype with independent bit flips. The
//! MNIST substitute uses well-separated prototypes and low noise (learnable
//! to ~90%+, as in the paper); the CIFAR substitute shrinks the informative
//! pixel subset and raises the noise so accuracies land in the paper's
//! 50–75% band.

use lsml_pla::{Dataset, Pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Table II group comparisons: `(group A → label 0, group B → label 1)`.
pub const GROUPS: [(&[u8], &[u8]); 10] = [
    (&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]),
    (&[1, 3, 5, 7, 9], &[0, 2, 4, 6, 8]), // odd vs even
    (&[0, 1, 2], &[3, 4, 5]),
    (&[0, 1], &[2, 3]),
    (&[4, 5], &[6, 7]),
    (&[6, 7], &[8, 9]),
    (&[1, 7], &[3, 8]),
    (&[0, 9], &[3, 8]),
    (&[1, 3], &[7, 8]),
    (&[0, 3], &[8, 9]),
];

/// A ten-class binary-image generative model.
#[derive(Clone, Debug)]
pub struct ImageModel {
    /// Pixels per image (= benchmark input count).
    pub num_pixels: usize,
    /// Per-class prototype patterns.
    prototypes: Vec<Pattern>,
    /// Per-pixel flip probability when sampling.
    noise: f64,
}

impl ImageModel {
    /// The MNIST substitute: 196 pixels (14×14), distinct prototypes, 8%
    /// pixel noise.
    pub fn mnist_like(seed: u64) -> Self {
        ImageModel::new(196, 0.08, 1.0, seed)
    }

    /// The CIFAR substitute: 256 pixels, prototypes that differ on only a
    /// quarter of the pixels, 30% noise — deliberately hard.
    pub fn cifar_like(seed: u64) -> Self {
        ImageModel::new(256, 0.30, 0.25, seed)
    }

    /// Builds a model where only `informative` fraction of pixels carry
    /// class-specific values (the rest are shared background).
    fn new(num_pixels: usize, noise: f64, informative: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let background = Pattern::random(&mut rng, num_pixels);
        let n_info = ((num_pixels as f64) * informative).round() as usize;
        let prototypes = (0..10)
            .map(|_| {
                let mut p = background.clone();
                for pixel in 0..n_info {
                    if rng.gen_bool(0.5) {
                        p.set(pixel, !p.get(pixel));
                    }
                }
                p
            })
            .collect();
        ImageModel {
            num_pixels,
            prototypes,
            noise,
        }
    }

    /// Draws one image of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    pub fn sample(&self, class: u8, rng: &mut StdRng) -> Pattern {
        let mut p = self.prototypes[class as usize].clone();
        for pixel in 0..self.num_pixels {
            if rng.gen_bool(self.noise) {
                p.flip(pixel);
            }
        }
        p
    }

    /// Draws a labelled dataset for one Table II group comparison: classes
    /// are drawn uniformly from `group_a ∪ group_b`, labelled 0 for A and 1
    /// for B (as in the paper: "Group A results in value 0 at the output,
    /// while Group B results in value 1").
    pub fn group_dataset(
        &self,
        group_a: &[u8],
        group_b: &[u8],
        n: usize,
        rng: &mut StdRng,
    ) -> Dataset {
        let mut ds = Dataset::new(self.num_pixels);
        let all: Vec<(u8, bool)> = group_a
            .iter()
            .map(|&c| (c, false))
            .chain(group_b.iter().map(|&c| (c, true)))
            .collect();
        for _ in 0..n {
            let (class, label) = all[rng.gen_range(0..all.len())];
            ds.push(self.sample(class, rng), label);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_table_ii() {
        assert_eq!(GROUPS.len(), 10);
        // Row 1 is odd vs even.
        assert_eq!(GROUPS[1].0, &[1, 3, 5, 7, 9]);
        // Row 7 compares {0,9} with {3,8}.
        assert_eq!(GROUPS[7], (&[0u8, 9][..], &[3u8, 8][..]));
    }

    #[test]
    fn mnist_like_is_learnable_by_nearest_prototype() {
        let model = ImageModel::mnist_like(42);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = model.group_dataset(&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9], 400, &mut rng);
        // Nearest-prototype classification should be nearly perfect at 8%
        // noise.
        let acc = ds.accuracy_of(|p| {
            let best = (0..10u8)
                .min_by_key(|&c| hamming(p, &model.prototypes[c as usize]))
                .expect("ten classes");
            best >= 5
        });
        assert!(acc > 0.95, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn cifar_like_is_harder() {
        let mnist = ImageModel::mnist_like(7);
        let cifar = ImageModel::cifar_like(7);
        let mut rng = StdRng::seed_from_u64(2);
        let acc = |model: &ImageModel, rng: &mut StdRng| {
            let ds = model.group_dataset(&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9], 400, rng);
            ds.accuracy_of(|p| {
                let best = (0..10u8)
                    .min_by_key(|&c| hamming(p, &model.prototypes[c as usize]))
                    .expect("ten classes");
                best >= 5
            })
        };
        let m = acc(&mnist, &mut rng);
        let c = acc(&cifar, &mut rng);
        assert!(m > c, "mnist {m} should beat cifar {c}");
    }

    #[test]
    fn sampling_is_seeded() {
        let model = ImageModel::mnist_like(3);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(model.sample(4, &mut r1), model.sample(4, &mut r2));
    }

    fn hamming(a: &Pattern, b: &Pattern) -> usize {
        (0..a.len()).filter(|&i| a.get(i) != b.get(i)).count()
    }
}
