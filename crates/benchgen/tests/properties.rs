//! Property tests: the AIG circuit builders agree with the bignum oracles,
//! and suite sampling invariants hold.

use lsml_aig::{circuits, Aig, Lit};
use lsml_benchgen::arith;
use lsml_benchgen::{suite, SampleConfig};
use proptest::prelude::*;

fn to_bits(v: u64, k: usize) -> Vec<bool> {
    (0..k).map(|i| (v >> i) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adder_circuit_matches_bignum(a in any::<u64>(), b in any::<u64>()) {
        let k = 24;
        let a = a & ((1 << k) - 1);
        let b = b & ((1 << k) - 1);
        let aig = circuits::adder_aig(k);
        let mut input = to_bits(a, k);
        input.extend(to_bits(b, k));
        let out = aig.eval(&input);
        let sum = arith::add(&[a], &[b]);
        for (bit, &o) in out.iter().enumerate() {
            prop_assert_eq!(o, arith::bit(&sum, bit), "bit {}", bit);
        }
    }

    #[test]
    fn comparator_circuit_matches_bignum(a in any::<u64>(), b in any::<u64>()) {
        let k = 20;
        let a = a & ((1 << k) - 1);
        let b = b & ((1 << k) - 1);
        let aig = circuits::comparator_aig(k);
        let mut input = to_bits(a, k);
        input.extend(to_bits(b, k));
        prop_assert_eq!(aig.eval(&input)[0], arith::less_than(&[a], &[b]));
    }

    #[test]
    fn multiplier_circuit_matches_bignum(a in 0u64..256, b in 0u64..256) {
        let k = 8;
        let mut aig = Aig::new(2 * k);
        let la: Vec<Lit> = (0..k).map(|i| aig.input(i)).collect();
        let lb: Vec<Lit> = (0..k).map(|i| aig.input(k + i)).collect();
        let prod = circuits::multiply(&mut aig, &la, &lb);
        for p in prod {
            aig.add_output(p);
        }
        let mut input = to_bits(a, k);
        input.extend(to_bits(b, k));
        let out = aig.eval(&input);
        let reference = arith::mul(&[a], &[b]);
        for (bit, &o) in out.iter().enumerate() {
            prop_assert_eq!(o, arith::bit(&reference, bit), "bit {}", bit);
        }
    }

    #[test]
    fn div_rem_identity(a in any::<u64>(), b in 1u64..u64::MAX) {
        // a = q*b + r with r < b (64-bit operands inside 128-bit words).
        let (q, r) = arith::div_rem(&[a, 0], &[b, 0], 128);
        let qb = arith::mul(&q, &[b, 0]);
        let back = arith::add(&qb, &r);
        prop_assert_eq!(back[0], a);
        prop_assert!(arith::less_than(&r, &[b, 0]));
    }

    #[test]
    fn isqrt_is_floor_sqrt(a in any::<u64>()) {
        let root = arith::isqrt(&[a, 0], 128);
        let sq = arith::mul(&root, &root);
        prop_assert!(!arith::less_than(&[a, 0], &sq)); // root^2 <= a
        let root1 = arith::add(&root, &[1]);
        let sq1 = arith::mul(&root1, &root1);
        prop_assert!(arith::less_than(&[a, 0, 0, 0], &sq1)); // (root+1)^2 > a
    }
}

#[test]
fn every_benchmark_samples_cleanly_at_small_scale() {
    let cfg = SampleConfig {
        samples_per_split: 64,
        seed: 5,
    };
    for b in suite() {
        let data = b.sample(&cfg);
        assert_eq!(data.train.len(), 64, "{}", b.name);
        assert_eq!(data.valid.len(), 64, "{}", b.name);
        assert_eq!(data.test.len(), 64, "{}", b.name);
        assert_eq!(data.train.num_inputs(), b.num_inputs, "{}", b.name);
    }
}
