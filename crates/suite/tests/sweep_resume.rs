//! The tentpole guarantees, end to end: a sweep over a corpus containing
//! panicking, stalling, oversized and unparseable units completes with
//! every failure classified; an injected mid-sweep kill plus resume
//! reproduces the uninterrupted run's stats bit-identically; and a
//! trashed checkpoint degrades to a cold start, never a crash.

use lsml_serve::fault::FaultPlan;
use lsml_suite::checkpoint;
use lsml_suite::engine::{run, Limits, RunOutcome, SuiteConfig};
use std::fs;
use std::path::{Path, PathBuf};

/// A scratch dir unique to this test binary run.
fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("lsml-suite-resume-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// An external corpus: two valid files, one garbage netlist, one file over
/// the ingest cap. Names sort into a stable unit order.
fn write_corpus(dir: &Path) {
    let mut g = lsml_aig::Aig::new(4);
    let (a, b, c) = (g.input(0), g.input(1), g.input(2));
    let x = g.and(a, b);
    let y = g.xor(x, c);
    g.add_output(y);
    let mut aag = Vec::new();
    lsml_aig::aiger::write_aag(&g, &mut aag).unwrap();
    fs::write(dir.join("a_valid.aag"), &aag).unwrap();
    let mut bench = Vec::new();
    lsml_aig::bench::write_bench(&g, &mut bench).unwrap();
    fs::write(dir.join("b_valid.bench"), &bench).unwrap();
    fs::write(dir.join("c_garbage.bench"), b"x = FLIPFLOP(y)\n").unwrap();
    fs::write(dir.join("d_huge.aag"), vec![b'!'; 8192]).unwrap();
}

/// The gauntlet config: every failure mode armed at once.
fn gauntlet_cfg(dir: &Path) -> SuiteConfig {
    SuiteConfig {
        units_per_family: 4,
        samples: 48,
        deadline_ms: 200,
        external_dir: Some(dir.join("corpus")),
        ingest_max_bytes: 4096,
        limits: Limits {
            max_inputs: 16,
            max_nodes: 4096,
        },
        fault: FaultPlan {
            circuit_panic_period: 9,
            circuit_stall_period: 11,
            ..FaultPlan::none()
        },
        ..SuiteConfig::default()
    }
}

#[test]
fn kill_and_resume_matches_uninterrupted_run_exactly() {
    let dir = scratch("resume");
    fs::create_dir_all(dir.join("corpus")).unwrap();
    write_corpus(&dir.join("corpus"));

    // Uninterrupted reference: same sweep, no kill, no checkpoint.
    let reference = match run(&gauntlet_cfg(&dir)).unwrap() {
        RunOutcome::Completed(stats) => stats,
        RunOutcome::Killed { .. } => panic!("no kill configured"),
    };
    // 5 families x 4 + 4 external files.
    assert_eq!(reference.total_units(), 24);

    // Same sweep, killed before unit 13 with checkpoints every 5 units.
    let ckpt = dir.join("sweep.ckpt");
    let mut cfg = SuiteConfig {
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 5,
        ..gauntlet_cfg(&dir)
    };
    cfg.fault.circuit_kill_after = 13;
    assert_eq!(run(&cfg).unwrap(), RunOutcome::Killed { processed: 13 });
    let cp = checkpoint::load(&ckpt).expect("periodic checkpoint must exist");
    assert_eq!(cp.cursor, 10, "last flush before the kill at 13");

    // The supervisor restart: kill disarmed, same checkpoint.
    cfg.fault.circuit_kill_after = 0;
    let resumed = match run(&cfg).unwrap() {
        RunOutcome::Completed(stats) => stats,
        RunOutcome::Killed { .. } => panic!("kill is disarmed"),
    };
    assert_eq!(
        resumed, reference,
        "resumed stats must be bit-identical to the uninterrupted run"
    );
    let final_cp = checkpoint::load(&ckpt).unwrap();
    assert_eq!(final_cp.cursor, 24);
    assert_eq!(final_cp.stats, reference);
}

#[test]
fn gauntlet_classifies_every_failure_mode() {
    let dir = scratch("gauntlet");
    fs::create_dir_all(dir.join("corpus")).unwrap();
    write_corpus(&dir.join("corpus"));
    let stats = match run(&gauntlet_cfg(&dir)).unwrap() {
        RunOutcome::Completed(stats) => stats,
        RunOutcome::Killed { .. } => panic!("gauntlet must complete"),
    };

    assert_eq!(stats.total_units(), 24, "every unit accounted for");
    let failed: u64 = stats.families.values().map(|f| f.failed).sum();
    let timed_out: u64 = stats.families.values().map(|f| f.timed_out).sum();
    // 24 units: panics at 8, 17 (period 9); stalls at 10, 21 (period 11).
    assert_eq!(failed, 2, "injected panics classified Failed");
    assert_eq!(timed_out, 2, "injected stalls classified TimedOut");

    // The two bad external files are quarantined with reasons; the two
    // valid ones are swept (one unit at index 21 stalls — still counted
    // under external).
    assert_eq!(stats.quarantined, 2);
    let reasons: Vec<&str> = stats
        .quarantine_log
        .iter()
        .map(|(f, r)| {
            assert!(!r.is_empty(), "{f}: empty reason");
            f.as_str()
        })
        .collect();
    assert_eq!(reasons, ["c_garbage.bench", "d_huge.aag"]);
    let (_, huge_reason) = &stats.quarantine_log[1];
    assert!(huge_reason.contains("ingest cap"), "{huge_reason}");
    assert_eq!(stats.families["external"].total(), 2);

    // JSON output carries the classification.
    let json = stats.to_json();
    assert!(json.contains("\"total_units\":24"), "{json}");
    assert!(json.contains("c_garbage.bench"), "{json}");
}

#[test]
fn trashed_or_foreign_checkpoints_cold_start() {
    let dir = scratch("coldstart");
    let ckpt = dir.join("sweep.ckpt");
    let cfg = SuiteConfig {
        units_per_family: 2,
        samples: 32,
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 3,
        ..SuiteConfig::default()
    };

    // Garbage under the checkpoint name: the sweep must run from unit 0.
    fs::write(&ckpt, b"not a checkpoint at all").unwrap();
    let RunOutcome::Completed(first) = run(&cfg).unwrap() else {
        panic!("must complete");
    };
    assert_eq!(first.total_units(), 10);

    // A finished checkpoint from a *different* config (other seed) must be
    // discarded, not resumed into: the new sweep again covers all units.
    let other = SuiteConfig {
        seed: cfg.seed + 1,
        ..cfg.clone()
    };
    let RunOutcome::Completed(second) = run(&other).unwrap() else {
        panic!("must complete");
    };
    assert_eq!(
        second.total_units(),
        10,
        "foreign checkpoint must not shortcut the sweep"
    );
}
