//! Circuit families for generated sweep units.
//!
//! A family is a *distribution* over truth functions: unit `i` of a family
//! derives a unit seed from `(sweep_seed, family, i)` and materializes one
//! concrete oracle from it. Everything downstream — sampling, training,
//! compilation — is a pure function of that seed, which is what makes
//! checkpoint resume exact: the cursor alone reconstructs any unit.

use lsml_aig::fxhash::{fnv1a_mix, FNV_OFFSET};
use lsml_benchgen::cones::random_cone;
use lsml_benchgen::Oracle;
use lsml_pla::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The family distributions of the default sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    /// Arithmetic: sum bits of `k`-bit adders, `k` and the bit varying.
    Adder,
    /// Arithmetic: unsigned `a < b` comparators of varying width.
    Comparator,
    /// Seeded pseudo-random logic cones (the PicoJava/MCNC stand-in).
    Cone,
    /// Fully symmetric functions with random count signatures.
    Symmetric,
    /// Random DNF formulas of varying term count and literal width.
    Dnf,
}

/// One named family of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilySpec {
    /// Stable name (stats key; part of the config fingerprint).
    pub name: String,
    /// The distribution units draw from.
    pub kind: FamilyKind,
}

/// One materialized truth function: either a `lsml-benchgen` oracle or a
/// DNF formula evaluated directly.
pub enum UnitOracle {
    /// A contest-style oracle.
    Bench(Oracle),
    /// `terms` in disjunctive normal form; each term is a conjunction of
    /// `(variable, phase)` literals.
    Dnf {
        /// Input variable count.
        num_inputs: usize,
        /// The conjunctive terms.
        terms: Vec<Vec<(usize, bool)>>,
    },
}

impl UnitOracle {
    /// Input arity of the function.
    pub fn num_inputs(&self) -> usize {
        match self {
            UnitOracle::Bench(o) => o.num_inputs(),
            UnitOracle::Dnf { num_inputs, .. } => *num_inputs,
        }
    }

    /// Evaluates the function on one pattern.
    pub fn eval(&self, p: &Pattern) -> bool {
        match self {
            UnitOracle::Bench(o) => o.eval(p),
            UnitOracle::Dnf { terms, .. } => terms
                .iter()
                .any(|t| t.iter().all(|&(v, phase)| p.get(v) == phase)),
        }
    }
}

impl FamilySpec {
    /// The unit seed of unit `index` of this family under `sweep_seed`:
    /// counter-derived, so resuming at a cursor needs no RNG stream state —
    /// re-deriving the seed *is* the stream state.
    pub fn unit_seed(&self, sweep_seed: u64, index: u64) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_mix(h, sweep_seed);
        for b in self.name.bytes() {
            h = fnv1a_mix(h, b as u64);
        }
        fnv1a_mix(h, index)
    }

    /// Materializes the oracle of unit `index`.
    pub fn oracle(&self, sweep_seed: u64, index: u64) -> UnitOracle {
        let seed = self.unit_seed(sweep_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);
        match self.kind {
            FamilyKind::Adder => {
                let k = rng.gen_range(3usize..7);
                let bit = rng.gen_range(0usize..=k);
                UnitOracle::Bench(Oracle::AdderBit { k, bit })
            }
            FamilyKind::Comparator => {
                let k = rng.gen_range(3usize..8);
                UnitOracle::Bench(Oracle::LessThan { k })
            }
            FamilyKind::Cone => {
                let ni = rng.gen_range(6usize..11);
                UnitOracle::Bench(Oracle::Cone(random_cone(ni, rng.gen())))
            }
            FamilyKind::Symmetric => {
                let ni = rng.gen_range(8usize..13);
                let signature: Vec<bool> = (0..=ni).map(|_| rng.gen()).collect();
                UnitOracle::Bench(Oracle::Symmetric { signature })
            }
            FamilyKind::Dnf => {
                let ni = rng.gen_range(8usize..14);
                let n_terms = rng.gen_range(3usize..9);
                let terms = (0..n_terms)
                    .map(|_| {
                        let width = rng.gen_range(2usize..5.min(ni));
                        // Distinct variables per term via partial shuffle.
                        let mut vars: Vec<usize> = (0..ni).collect();
                        for i in 0..width {
                            let j = rng.gen_range(i..vars.len());
                            vars.swap(i, j);
                        }
                        vars[..width].iter().map(|&v| (v, rng.gen())).collect()
                    })
                    .collect();
                UnitOracle::Dnf {
                    num_inputs: ni,
                    terms,
                }
            }
        }
    }
}

/// The default five-family sweep.
pub fn default_families() -> Vec<FamilySpec> {
    [
        ("adder", FamilyKind::Adder),
        ("comparator", FamilyKind::Comparator),
        ("cone", FamilyKind::Cone),
        ("symmetric", FamilyKind::Symmetric),
        ("dnf", FamilyKind::Dnf),
    ]
    .into_iter()
    .map(|(name, kind)| FamilySpec {
        name: name.into(),
        kind,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_seeds_are_stable_and_distinct() {
        let fams = default_families();
        let a = fams[0].unit_seed(7, 0);
        assert_eq!(a, fams[0].unit_seed(7, 0), "same inputs, same seed");
        assert_ne!(a, fams[0].unit_seed(7, 1), "index must matter");
        assert_ne!(a, fams[1].unit_seed(7, 0), "family must matter");
        assert_ne!(a, fams[0].unit_seed(8, 0), "sweep seed must matter");
    }

    #[test]
    fn oracles_are_deterministic_in_the_seed() {
        for fam in default_families() {
            let a = fam.oracle(13, 5);
            let b = fam.oracle(13, 5);
            assert_eq!(a.num_inputs(), b.num_inputs());
            let ni = a.num_inputs();
            assert!((6..=14).contains(&ni), "{}: {ni} inputs", fam.name);
            for m in 0..64u64 {
                let p = Pattern::from_index(m, ni);
                assert_eq!(a.eval(&p), b.eval(&p), "{} diverged at {m}", fam.name);
            }
        }
    }

    #[test]
    fn dnf_oracle_matches_hand_evaluation() {
        let o = UnitOracle::Dnf {
            num_inputs: 4,
            terms: vec![vec![(0, true), (1, false)], vec![(2, true), (3, true)]],
        };
        // (x0 & !x1) | (x2 & x3)
        for m in 0..16u64 {
            let p = Pattern::from_index(m, 4);
            let want = (p.get(0) && !p.get(1)) || (p.get(2) && p.get(3));
            assert_eq!(o.eval(&p), want, "pattern {m:04b}");
        }
    }
}
