//! Hardened external circuit ingestion.
//!
//! # Contract
//!
//! [`read_circuit`] is the sweep's trust boundary for files it does not
//! control. The contract, which the sweep engine and its tests rely on:
//!
//! * **Never panics, never aborts** — the underlying parsers
//!   ([`lsml_aig::aiger::read_aag`], [`lsml_aig::aiger::read_aig`],
//!   [`lsml_aig::bench::read_bench`]) are fuzz-proven never-panic with
//!   header-bound allocation caps, and this module adds a file-size cap
//!   checked *before* any byte is read.
//! * **Structured failure** — every defect maps to an [`IngestError`]
//!   variant carrying the reason. The engine records a failing file as
//!   `Quarantined` with that reason in the sweep stats and moves on; a bad
//!   file can never abort a sweep.
//! * **Bounded resources** — files larger than the caller's byte cap
//!   (`LSML_INGEST_MAX_BYTES`, see the knob table in [`lsml_aig::par`]) are
//!   rejected as [`IngestError::TooLarge`] without being read; parsed
//!   graphs are additionally subject to the engine's node/input governor.
//!
//! # Format detection
//!
//! Matching the `circuitcount --format auto` convention, the format comes
//! from the file extension (`.aag`, `.aig`, `.bench`) when recognized, and
//! from content sniffing (the `aag `/`aig ` header magic, else BENCH)
//! otherwise.

use std::fmt;
use std::fs;
use std::path::Path;

use lsml_aig::aig::Aig;
use lsml_aig::aiger::{read_aag, read_aig};
use lsml_aig::bench::read_bench;

/// Why an external file was quarantined instead of swept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The file exceeds the ingestion byte cap (checked before reading).
    TooLarge {
        /// Size on disk.
        bytes: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The file could not be read from disk.
    Io(String),
    /// The file's bytes failed its format's parser.
    Parse {
        /// The detected format (`aag` / `aig` / `bench`).
        format: &'static str,
        /// The parser's structured error.
        reason: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::TooLarge { bytes, cap } => {
                write!(f, "{bytes} bytes exceeds the {cap}-byte ingest cap")
            }
            IngestError::Io(e) => write!(f, "io: {e}"),
            IngestError::Parse { format, reason } => write!(f, "{format}: {reason}"),
        }
    }
}

/// The format a file will be parsed as.
fn detect_format(path: &Path, head: &[u8]) -> &'static str {
    match path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .as_deref()
    {
        Some("aag") => "aag",
        Some("aig") => "aig",
        Some("bench") => "bench",
        // Unrecognized extension: sniff the AIGER header magics, else treat
        // as BENCH (whose parser rejects non-netlists with a ParseError).
        _ => {
            if head.starts_with(b"aag ") {
                "aag"
            } else if head.starts_with(b"aig ") {
                "aig"
            } else {
                "bench"
            }
        }
    }
}

/// Reads one external circuit file under the module's
/// [hardening contract](self): size-capped, format-auto-detected,
/// never-panicking. `max_bytes` is the file-size cap
/// (`LSML_INGEST_MAX_BYTES`).
///
/// # Errors
///
/// Returns the [`IngestError`] the engine quarantines the file with.
pub fn read_circuit(path: &Path, max_bytes: u64) -> Result<Aig, IngestError> {
    let meta = fs::metadata(path).map_err(|e| IngestError::Io(e.to_string()))?;
    if meta.len() > max_bytes {
        return Err(IngestError::TooLarge {
            bytes: meta.len(),
            cap: max_bytes,
        });
    }
    let bytes = fs::read(path).map_err(|e| IngestError::Io(e.to_string()))?;
    let format = detect_format(path, &bytes);
    let parsed = match format {
        "aag" => read_aag(bytes.as_slice()),
        "aig" => read_aig(bytes.as_slice()),
        _ => read_bench(bytes.as_slice()),
    };
    parsed.map_err(|e| IngestError::Parse {
        format,
        reason: e.to_string(),
    })
}

/// The default ingestion byte cap, honoring `LSML_INGEST_MAX_BYTES`
/// (default 8 MiB — generous for AIGER/BENCH text, small enough that a
/// rogue file cannot stall the sweep on I/O alone).
pub fn max_bytes_from_env() -> u64 {
    std::env::var("LSML_INGEST_MAX_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(8 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_aig::aiger::write_aag;
    use lsml_aig::bench::write_bench;
    use std::io::Write;

    fn tmp_dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("lsml-ingest-test");
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let x = g.xor(a, b);
        let f = g.mux(c, x, !a);
        g.add_output(f);
        g
    }

    #[test]
    fn reads_all_three_formats_by_extension() {
        let d = tmp_dir();
        let g = sample();
        let (mut aag, mut bench) = (Vec::new(), Vec::new());
        write_aag(&g, &mut aag).unwrap();
        write_bench(&g, &mut bench).unwrap();
        let mut aig_bytes = Vec::new();
        lsml_aig::aiger::write_aig(&g, &mut aig_bytes).unwrap();
        for (name, bytes) in [("u.aag", &aag), ("u.aig", &aig_bytes), ("u.bench", &bench)] {
            let p = d.join(name);
            fs::File::create(&p).unwrap().write_all(bytes).unwrap();
            let h = read_circuit(&p, 1 << 20).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(h.num_inputs(), 3, "{name}");
            for m in 0..8u64 {
                let bits = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
                assert_eq!(h.eval(&bits), g.eval(&bits), "{name} at {m:03b}");
            }
        }
    }

    #[test]
    fn sniffs_format_without_extension() {
        let d = tmp_dir();
        let g = sample();
        let mut aag = Vec::new();
        write_aag(&g, &mut aag).unwrap();
        let p = d.join("mystery_circuit");
        fs::File::create(&p).unwrap().write_all(&aag).unwrap();
        assert!(read_circuit(&p, 1 << 20).is_ok());
    }

    #[test]
    fn caps_quarantine_and_errors_are_structured() {
        let d = tmp_dir();
        // Oversized: rejected before reading.
        let p = d.join("big.aag");
        fs::File::create(&p)
            .unwrap()
            .write_all(&[b'x'; 512])
            .unwrap();
        match read_circuit(&p, 100) {
            Err(IngestError::TooLarge {
                bytes: 512,
                cap: 100,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Missing: Io.
        assert!(matches!(
            read_circuit(&d.join("nope.aag"), 100),
            Err(IngestError::Io(_))
        ));
        // Garbage: Parse with the detected format named.
        let p = d.join("junk.bench");
        fs::File::create(&p)
            .unwrap()
            .write_all(b"f = DFF(a)\n")
            .unwrap();
        match read_circuit(&p, 1 << 20) {
            Err(IngestError::Parse {
                format: "bench",
                reason,
            }) => {
                assert!(reason.contains("DFF"), "{reason}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
