//! The streaming sweep engine: construct → compile → score → discard.
//!
//! A sweep is a single global sequence of *units*: first
//! `families × units_per_family` generated circuits (family-major, so unit
//! `i` maps to family `i / units_per_family`, index `i % units_per_family`),
//! then the external files of `external_dir` in sorted name order. Each
//! unit is reconstructed from the sweep seed and its index alone —
//! nothing is retained between units except the [`SuiteStats`]
//! accumulator, which is what keeps a 100k-unit sweep in constant memory
//! and makes the checkpoint cursor a complete resume point.
//!
//! # Isolation boundary
//!
//! Every unit runs inside `catch_unwind` + [`with_token`]:
//!
//! * a panic (real or injected) classifies the unit `Failed`;
//! * the per-circuit deadline ([`SuiteConfig::deadline_ms`]) fires the
//!   token and the unit classifies `TimedOut` — and because the compile
//!   caches skip inserts under a fired token, a timed-out compile is never
//!   memoized;
//! * the resource governor ([`Limits`]) rejects oversized units as
//!   `Skipped` before any expensive work;
//! * an unparseable external file is `Quarantined` with its reason.
//!
//! Nothing short of `SIGKILL` aborts the sweep — and that case is what the
//! checkpoints are for.
//!
//! # Fault injection
//!
//! The [`FaultPlan`]'s per-circuit points are decided by global unit index,
//! so a fault schedule is a pure function of `LSML_FAULT_SEED`:
//! `circuit_panic_period` / `circuit_stall_period` fire inside the
//! isolation boundary (exercising the real containment paths), and
//! `circuit_kill_after` returns [`RunOutcome::Killed`] *before* processing
//! that unit and *without* flushing a checkpoint — the harshest crash the
//! resume path must survive. A resuming caller disarms the kill
//! (`circuit_kill_after = 0`) or the engine will faithfully die at the
//! same index again.

use crate::checkpoint::{self, Checkpoint};
use crate::family::{FamilySpec, UnitOracle};
use crate::ingest;
use crate::stats::{SuiteStats, UnitClass};
use lsml_aig::cancel::{with_token, CancelToken};
use lsml_aig::Aig;
use lsml_core::problem::LearnedCircuit;
use lsml_core::SizeBudget;
use lsml_dtree::tree::{DecisionTree, TreeConfig};
use lsml_pla::{Dataset, Pattern};
use lsml_serve::fault::FaultPlan;
use lsml_serve::snapshot::fnv1a;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

/// The resource governor's caps: units past either bound classify
/// `Skipped` before any expensive work happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum input arity a unit may have.
    pub max_inputs: usize,
    /// Maximum AND-gate count of the circuit handed to the compiler.
    pub max_nodes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_inputs: 24,
            max_nodes: 4096,
        }
    }
}

/// One sweep's full configuration.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// The generated circuit families, swept in order.
    pub families: Vec<FamilySpec>,
    /// Generated units per family.
    pub units_per_family: u64,
    /// Directory of external `.aag`/`.aig`/`.bench` files to ingest after
    /// the generated units (`None` = generated only).
    pub external_dir: Option<PathBuf>,
    /// The sweep seed every unit seed derives from.
    pub seed: u64,
    /// Per-circuit deadline in milliseconds (`LSML_SUITE_DEADLINE_MS`).
    pub deadline_ms: u64,
    /// AND-gate budget handed to the compiler.
    pub node_limit: usize,
    /// Training and test sample count per generated unit.
    pub samples: usize,
    /// Checkpoint file (`None` = no checkpoints, no resume).
    pub checkpoint_path: Option<PathBuf>,
    /// Flush a checkpoint every N units (`LSML_SUITE_CHECKPOINT_EVERY`;
    /// 0 disables periodic flushes, the final flush still happens).
    pub checkpoint_every: u64,
    /// The resource governor's caps.
    pub limits: Limits,
    /// Ingestion byte cap for external files (`LSML_INGEST_MAX_BYTES`).
    pub ingest_max_bytes: u64,
    /// Deterministic fault schedule (see [`FaultPlan`]).
    pub fault: FaultPlan,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            families: crate::family::default_families(),
            units_per_family: 20,
            external_dir: None,
            seed: 1,
            deadline_ms: 5_000,
            node_limit: 300,
            samples: 256,
            checkpoint_path: None,
            checkpoint_every: 64,
            limits: Limits::default(),
            ingest_max_bytes: 8 << 20,
            fault: FaultPlan::none(),
        }
    }
}

impl SuiteConfig {
    /// Fingerprint of everything that shapes the sweep's *results*:
    /// families, unit counts, seed, budgets, deadline, governor caps, and
    /// the resolved external file list. A checkpoint from a different
    /// fingerprint is discarded — resuming must never splice stats from
    /// two different sweeps. Fault plan and checkpoint cadence are
    /// deliberately excluded: they change *when* the sweep stops, not what
    /// the units compute, and resume-after-kill relies on the disarmed
    /// plan fingerprinting identically.
    fn fingerprint(&self, externals: &[PathBuf]) -> u64 {
        let mut bytes = Vec::new();
        for v in [
            self.units_per_family,
            self.seed,
            self.deadline_ms,
            self.node_limit as u64,
            self.samples as u64,
            self.limits.max_inputs as u64,
            self.limits.max_nodes as u64,
            self.ingest_max_bytes,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for fam in &self.families {
            bytes.extend_from_slice(fam.name.as_bytes());
            bytes.push(0);
            bytes.push(fam.kind as u8);
        }
        for p in externals {
            bytes.extend_from_slice(p.to_string_lossy().as_bytes());
            bytes.push(0);
        }
        fnv1a(&bytes)
    }

    fn generated_units(&self) -> u64 {
        self.families.len() as u64 * self.units_per_family
    }
}

/// How a sweep ended.
#[derive(Debug, PartialEq)]
pub enum RunOutcome {
    /// Every unit processed; the final stats (also flushed to the
    /// checkpoint, when one is configured).
    Completed(SuiteStats),
    /// The fault plan's `circuit_kill_after` fired: the process "died"
    /// before unit `processed`, with no checkpoint flush for the units
    /// since the last periodic one. Resume by calling [`run`] again with
    /// the kill disarmed.
    Killed {
        /// Units fully processed before the kill.
        processed: u64,
    },
}

/// What one unit's work function reports back across the isolation
/// boundary.
struct UnitOutcome {
    class: UnitClass,
    accuracy: Option<f64>,
    size: Option<u64>,
}

impl UnitOutcome {
    fn bare(class: UnitClass) -> UnitOutcome {
        UnitOutcome {
            class,
            accuracy: None,
            size: None,
        }
    }
}

/// Runs (or resumes) a sweep. See the [module docs](self) for the unit
/// sequence, isolation guarantees and fault semantics.
///
/// # Errors
///
/// Only environment failures surface as `Err`: an unreadable external
/// directory or an unwritable checkpoint path. Per-unit failures of any
/// kind are classified into the stats, never errors.
pub fn run(cfg: &SuiteConfig) -> io::Result<RunOutcome> {
    let externals = list_externals(cfg)?;
    let total = cfg.generated_units() + externals.len() as u64;
    let fingerprint = cfg.fingerprint(&externals);

    let (mut cursor, mut stats) = match cfg.checkpoint_path.as_deref().and_then(checkpoint::load) {
        Some(cp) if cp.config_fingerprint == fingerprint && cp.cursor <= total => {
            (cp.cursor, cp.stats)
        }
        // Missing, torn, corrupt, version-skewed, or from a different
        // sweep: cold-start from unit 0.
        _ => (0, SuiteStats::default()),
    };

    while cursor < total {
        // The injected crash: die *before* this unit, *without* flushing.
        if cfg.fault.circuit_kill_after != 0 && cursor == cfg.fault.circuit_kill_after {
            return Ok(RunOutcome::Killed { processed: cursor });
        }
        process_unit(cfg, &externals, cursor, &mut stats);
        cursor += 1;
        if cfg.checkpoint_every != 0 && cursor % cfg.checkpoint_every == 0 {
            flush(cfg, fingerprint, cursor, &stats)?;
        }
    }
    flush(cfg, fingerprint, cursor, &stats)?;
    Ok(RunOutcome::Completed(stats))
}

fn flush(cfg: &SuiteConfig, fingerprint: u64, cursor: u64, stats: &SuiteStats) -> io::Result<()> {
    if let Some(path) = &cfg.checkpoint_path {
        let cp = Checkpoint {
            config_fingerprint: fingerprint,
            cursor,
            stats: stats.clone(),
        };
        checkpoint::save(path, &cp, &cfg.fault)?;
    }
    Ok(())
}

/// The external files of `external_dir`, sorted by file name for a stable
/// global unit order.
fn list_externals(cfg: &SuiteConfig) -> io::Result<Vec<PathBuf>> {
    let Some(dir) = &cfg.external_dir else {
        return Ok(Vec::new());
    };
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    Ok(files)
}

fn process_unit(cfg: &SuiteConfig, externals: &[PathBuf], index: u64, stats: &mut SuiteStats) {
    let plan = &cfg.fault;
    // 1-based so period N means "every Nth unit", matching the daemon's
    // request fault points.
    let inject_panic =
        plan.circuit_panic_period != 0 && (index + 1).is_multiple_of(plan.circuit_panic_period);
    let inject_stall =
        plan.circuit_stall_period != 0 && (index + 1).is_multiple_of(plan.circuit_stall_period);
    let token = CancelToken::with_budget(Duration::from_millis(cfg.deadline_ms));

    let n_gen = cfg.generated_units();
    if index < n_gen {
        let fam = &cfg.families[(index / cfg.units_per_family) as usize];
        let unit = index % cfg.units_per_family;
        let outcome = isolated(&token, inject_panic, inject_stall, || {
            generated_unit(cfg, fam, unit, &token)
        });
        stats
            .family_mut(&fam.name)
            .record(outcome.class, outcome.accuracy, outcome.size);
    } else {
        let path = &externals[(index - n_gen) as usize];
        // Ingestion runs inside the same boundary: the parsers are proven
        // never-panic, but a quarantine decision still deserves the belt
        // *and* the suspenders.
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_token(&token, || {
                if inject_panic {
                    panic!("injected circuit fault (LSML_FAULT_SEED={})", plan.seed);
                }
                if inject_stall {
                    return Ok(stall_until_fired(&token));
                }
                ingest::read_circuit(path, cfg.ingest_max_bytes)
                    .map(|aig| external_unit(cfg, aig, &token))
            })
        }));
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        match result {
            Ok(Ok(outcome)) => {
                stats
                    .family_mut("external")
                    .record(outcome.class, outcome.accuracy, outcome.size);
            }
            Ok(Err(err)) => stats.record_quarantine(&name, &err.to_string()),
            Err(_) => stats
                .family_mut("external")
                .record(UnitClass::Failed, None, None),
        }
    }
}

/// Runs `work` inside the unit isolation boundary, applying the injected
/// faults *inside* it so they exercise the real containment paths.
fn isolated(
    token: &CancelToken,
    inject_panic: bool,
    inject_stall: bool,
    work: impl FnOnce() -> UnitOutcome,
) -> UnitOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_token(token, || {
            if inject_panic {
                panic!("injected circuit fault");
            }
            if inject_stall {
                return stall_until_fired(token);
            }
            work()
        })
    }));
    result.unwrap_or_else(|_| UnitOutcome::bare(UnitClass::Failed))
}

/// An injected stall: a diverging unit that only the deadline can stop.
/// Sleeping until the token fires (rather than for a fixed time) makes the
/// classification deterministic — the unit always ends `TimedOut`, on fast
/// and slow machines alike.
fn stall_until_fired(token: &CancelToken) -> UnitOutcome {
    while !token.is_cancelled() {
        thread::sleep(Duration::from_millis(1));
    }
    UnitOutcome::bare(UnitClass::TimedOut)
}

/// One generated unit: materialize the oracle, sample, train, compile,
/// score, discard.
fn generated_unit(
    cfg: &SuiteConfig,
    fam: &FamilySpec,
    unit: u64,
    token: &CancelToken,
) -> UnitOutcome {
    let oracle = fam.oracle(cfg.seed, unit);
    let ni = oracle.num_inputs();
    if ni > cfg.limits.max_inputs {
        return UnitOutcome::bare(UnitClass::Skipped);
    }
    let unit_seed = fam.unit_seed(cfg.seed, unit);
    let (train, test) = sample_datasets(&oracle, unit_seed, cfg.samples);
    if token.is_cancelled() {
        return UnitOutcome::bare(UnitClass::TimedOut);
    }
    let tree = DecisionTree::train(
        &train,
        &TreeConfig {
            max_depth: Some(8),
            seed: unit_seed,
            ..TreeConfig::default()
        },
    );
    let aig = tree.to_aig();
    if aig.num_ands() > cfg.limits.max_nodes {
        return UnitOutcome::bare(UnitClass::Skipped);
    }
    if token.is_cancelled() {
        return UnitOutcome::bare(UnitClass::TimedOut);
    }
    compiled_outcome(cfg, aig, "suite-dtree", Some(&test), token)
}

/// One ingested unit: the parsed graph goes straight to the governor and
/// compiler (no oracle, so no accuracy).
fn external_unit(cfg: &SuiteConfig, aig: Aig, token: &CancelToken) -> UnitOutcome {
    if aig.num_inputs() > cfg.limits.max_inputs || aig.num_ands() > cfg.limits.max_nodes {
        return UnitOutcome::bare(UnitClass::Skipped);
    }
    compiled_outcome(cfg, aig, "suite-external", None, token)
}

/// Compile + classify + (optionally) score. The shared tail of both unit
/// kinds.
fn compiled_outcome(
    cfg: &SuiteConfig,
    aig: Aig,
    method: &str,
    test: Option<&Dataset>,
    token: &CancelToken,
) -> UnitOutcome {
    let budget = SizeBudget::exact(cfg.node_limit);
    let (circuit, verdict) = LearnedCircuit::compile_with_verdict(aig, method, &budget);
    if token.is_cancelled() {
        // A deadline that fired mid-compile: the result is a valid but
        // unfinished optimization, and the caches have already refused to
        // memoize it. Classify by the deadline, not the partial verdict.
        return UnitOutcome::bare(UnitClass::TimedOut);
    }
    let class = match verdict {
        lsml_core::BudgetVerdict::ExactFit => UnitClass::Ok,
        lsml_core::BudgetVerdict::Approximated => UnitClass::Approximated,
        lsml_core::BudgetVerdict::OverBudget { .. } => UnitClass::OverBudget,
    };
    UnitOutcome {
        class,
        accuracy: test.map(|t| circuit.accuracy(t)),
        size: Some(circuit.and_gates() as u64),
    }
}

/// Unit-seeded train/test sampling. Both sets are pure functions of the
/// unit seed, so a resumed sweep rebuilds them exactly.
fn sample_datasets(oracle: &UnitOracle, unit_seed: u64, samples: usize) -> (Dataset, Dataset) {
    let ni = oracle.num_inputs();
    let mut rng = StdRng::seed_from_u64(unit_seed ^ 0x5A17_D47A);
    let mut build = |n: usize| {
        let mut ds = Dataset::new(ni);
        for _ in 0..n {
            let p = Pattern::random(&mut rng, ni);
            let y = oracle.eval(&p);
            ds.push(p, y);
        }
        ds
    };
    let train = build(samples);
    let test = build(samples);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SuiteConfig {
        SuiteConfig {
            units_per_family: 3,
            samples: 64,
            ..SuiteConfig::default()
        }
    }

    #[test]
    fn clean_sweep_classifies_every_unit() {
        let cfg = small_cfg();
        let RunOutcome::Completed(stats) = run(&cfg).unwrap() else {
            panic!("no kill configured, must complete");
        };
        assert_eq!(stats.total_units(), cfg.generated_units());
        assert_eq!(stats.families.len(), cfg.families.len());
        for (name, fam) in &stats.families {
            assert_eq!(fam.total(), 3, "{name}");
            assert_eq!(fam.failed + fam.timed_out, 0, "{name} must be clean");
        }
    }

    #[test]
    fn sweeps_are_deterministic() {
        let cfg = small_cfg();
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_panics_are_contained_and_classified() {
        let cfg = SuiteConfig {
            fault: FaultPlan {
                circuit_panic_period: 4,
                ..FaultPlan::none()
            },
            ..small_cfg()
        };
        let RunOutcome::Completed(stats) = run(&cfg).unwrap() else {
            panic!("panics must not abort the sweep");
        };
        let failed: u64 = stats.families.values().map(|f| f.failed).sum();
        // 15 units, every 4th panics: units 3, 7, 11.
        assert_eq!(failed, 3);
        assert_eq!(stats.total_units(), cfg.generated_units());
    }

    #[test]
    fn injected_stalls_time_out_deterministically() {
        let cfg = SuiteConfig {
            deadline_ms: 30,
            fault: FaultPlan {
                circuit_stall_period: 7,
                ..FaultPlan::none()
            },
            ..small_cfg()
        };
        let RunOutcome::Completed(stats) = run(&cfg).unwrap() else {
            panic!("stalls must not abort the sweep");
        };
        let timed_out: u64 = stats.families.values().map(|f| f.timed_out).sum();
        // 15 units, every 7th stalls: units 6, 13.
        assert_eq!(timed_out, 2);
    }

    #[test]
    fn governor_skips_oversized_units() {
        let cfg = SuiteConfig {
            limits: Limits {
                max_inputs: 0,
                max_nodes: 0,
            },
            ..small_cfg()
        };
        let RunOutcome::Completed(stats) = run(&cfg).unwrap() else {
            panic!("governor must not abort the sweep");
        };
        for (name, fam) in &stats.families {
            assert_eq!(fam.skipped, fam.total(), "{name} all units over caps");
        }
    }

    #[test]
    fn kill_fires_before_the_indexed_unit() {
        let cfg = SuiteConfig {
            fault: FaultPlan {
                circuit_kill_after: 5,
                ..FaultPlan::none()
            },
            ..small_cfg()
        };
        assert_eq!(run(&cfg).unwrap(), RunOutcome::Killed { processed: 5 });
    }
}
