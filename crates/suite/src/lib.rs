//! `lsml-suite` — the streaming sweep engine: construct → compile → score →
//! discard over thousands of generated and externally ingested circuits in
//! constant memory, surviving everything a 100k-circuit unattended run can
//! throw at it.
//!
//! The paper's generalization story ("does learned logic transfer across
//! circuit families?") needs sweeps far beyond the contest's 100
//! benchmarks. At that scale, three failure modes dominate and this crate
//! is the robustness answer to each:
//!
//! 1. **Pathological circuits.** One panicking, diverging or oversized unit
//!    must not kill hours of progress. Every unit runs inside an isolation
//!    boundary: `catch_unwind` containment (→ `Failed`), a per-circuit
//!    deadline via [`lsml_aig::cancel::CancelToken`] (→ `TimedOut`, and
//!    timed-out compiles are never memoized), and a resource governor with
//!    input/node caps (→ `Skipped`). See [`engine`].
//! 2. **Hostile external files.** Real benchmark dumps contain truncated,
//!    corrupt, and adversarial files. [`ingest`] parses `.aag`/`.aig`/
//!    `.bench` under a fuzz-proven never-panic contract and quarantines
//!    failures with a reason instead of aborting the sweep.
//! 3. **Process death.** SIGTERM, OOM-kill, a power cut. [`checkpoint`]
//!    persists cursor + accumulated stats every N circuits in the
//!    checksummed temp+fsync+atomic-rename format of PR 9's snapshots, and
//!    a resumed sweep reproduces the uninterrupted run's stats
//!    *bit-identically* (proven in CI by an injected mid-sweep kill).
//!
//! Faults themselves are deterministic: the `LSML_FAULT_SEED` plan
//! ([`lsml_serve::fault::FaultPlan`]) gained per-circuit panic/stall/kill
//! fault points, so every CI failure replays locally.
//!
//! Results stream into `BENCH_suite.json`: accuracy and size distributions
//! by family plus failure-class counts ([`stats`]).
//!
//! Runtime knobs (`LSML_SUITE_*`, `LSML_INGEST_*`) are documented in the
//! consolidated table in [`lsml_aig::par`].

pub mod checkpoint;
pub mod engine;
pub mod family;
pub mod ingest;
pub mod stats;

pub use engine::{run, Limits, RunOutcome, SuiteConfig};
pub use family::{default_families, FamilyKind, FamilySpec};
pub use stats::SuiteStats;
