//! `lsml-suite` — run a streaming circuit sweep from the command line.
//!
//! Configuration is entirely environment-driven (`LSML_SUITE_*`,
//! `LSML_INGEST_MAX_BYTES`, `LSML_FAULT_SEED`; see the knob table in
//! `lsml_aig::par`). The binary runs the sweep, auto-resumes once if the
//! fault plan's injected kill fires (disarming the kill, exactly as a
//! supervisor restarting a dead process would), and writes the final stats
//! to the output JSON.

use lsml_suite::engine::{run, RunOutcome, SuiteConfig};
use lsml_suite::ingest;
use std::path::PathBuf;
use std::process::ExitCode;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_path(name: &str) -> Option<PathBuf> {
    std::env::var(name)
        .ok()
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let cfg = SuiteConfig {
        units_per_family: env_u64("LSML_SUITE_UNITS", 20),
        seed: env_u64("LSML_SUITE_SEED", 1),
        deadline_ms: env_u64("LSML_SUITE_DEADLINE_MS", 5_000),
        samples: env_u64("LSML_SUITE_SAMPLES", 256) as usize,
        node_limit: env_u64("LSML_SUITE_NODE_LIMIT", 300) as usize,
        external_dir: env_path("LSML_SUITE_EXTERNAL"),
        checkpoint_path: env_path("LSML_SUITE_CHECKPOINT"),
        checkpoint_every: env_u64("LSML_SUITE_CHECKPOINT_EVERY", 64),
        ingest_max_bytes: ingest::max_bytes_from_env(),
        fault: lsml_serve::fault::FaultPlan::from_env(),
        ..SuiteConfig::default()
    };
    let out = env_path("LSML_SUITE_OUT").unwrap_or_else(|| PathBuf::from("BENCH_suite.json"));

    let mut attempt = cfg.clone();
    let stats = loop {
        match run(&attempt) {
            Ok(RunOutcome::Completed(stats)) => break stats,
            Ok(RunOutcome::Killed { processed }) => {
                eprintln!(
                    "lsml-suite: injected kill after {processed} units (LSML_FAULT_SEED={}); resuming",
                    attempt.fault.seed
                );
                if attempt.checkpoint_path.is_none() {
                    eprintln!("lsml-suite: no checkpoint configured, resume restarts from unit 0");
                }
                // The supervisor's restart: same config, kill disarmed.
                attempt.fault.circuit_kill_after = 0;
            }
            Err(e) => {
                eprintln!("lsml-suite: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let json = stats.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("lsml-suite: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "lsml-suite: {} units swept, {} quarantined -> {}",
        stats.total_units(),
        stats.quarantined,
        out.display()
    );
    ExitCode::SUCCESS
}
