//! Streaming sweep statistics.
//!
//! The whole point of the streaming engine is that per-circuit artifacts are
//! discarded; what survives a 100k-circuit sweep is this accumulator:
//! per-family failure-class counts, accuracy distribution (moments + a
//! 10-bin histogram) and compiled-size distribution, plus a bounded
//! quarantine log for rejected external files.
//!
//! Stats are part of the checkpoint payload, so they (de)serialize through
//! the same bounds-checked [`Wire`] reader as the rest of the format, with
//! `f64`s stored as IEEE bits — resume must reproduce the uninterrupted
//! run's stats *bit-identically*, and round-tripping through decimal would
//! break that.

use lsml_serve::protocol::Wire;
use std::collections::BTreeMap;

/// How one sweep unit ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitClass {
    /// Compiled within budget, exactly.
    Ok,
    /// Compiled, but approximation traded accuracy for size.
    Approximated,
    /// Compiled, but the result exceeds the node budget.
    OverBudget,
    /// The unit panicked inside its isolation boundary.
    Failed,
    /// The unit hit its per-circuit deadline.
    TimedOut,
    /// The resource governor rejected the unit before any work.
    Skipped,
}

/// Number of accuracy histogram bins (bin `i` covers `[i/10, (i+1)/10)`,
/// with 1.0 landing in the last bin).
pub const ACC_BINS: usize = 10;

/// Cap on retained quarantine log entries (the *count* keeps climbing).
pub const MAX_QUARANTINE_LOG: usize = 64;

/// Accumulated results for one family (or for the `external` pseudo-family).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FamilyStats {
    /// Units per terminal class.
    pub ok: u64,
    /// See [`UnitClass::Approximated`].
    pub approximated: u64,
    /// See [`UnitClass::OverBudget`].
    pub over_budget: u64,
    /// See [`UnitClass::Failed`].
    pub failed: u64,
    /// See [`UnitClass::TimedOut`].
    pub timed_out: u64,
    /// See [`UnitClass::Skipped`].
    pub skipped: u64,
    /// Scored units (accuracy was measured).
    pub acc_n: u64,
    /// Sum of accuracies, accumulated in unit order.
    pub acc_sum: f64,
    /// Lowest accuracy seen.
    pub acc_min: f64,
    /// Highest accuracy seen.
    pub acc_max: f64,
    /// 10-bin accuracy histogram.
    pub acc_hist: [u64; ACC_BINS],
    /// Compiled units (size was measured).
    pub size_n: u64,
    /// Sum of compiled AND-gate counts.
    pub size_sum: u64,
    /// Largest compiled circuit.
    pub size_max: u64,
}

impl FamilyStats {
    /// Folds one finished unit in. `accuracy`/`size` are present only for
    /// units that got far enough to measure them.
    pub fn record(&mut self, class: UnitClass, accuracy: Option<f64>, size: Option<u64>) {
        match class {
            UnitClass::Ok => self.ok += 1,
            UnitClass::Approximated => self.approximated += 1,
            UnitClass::OverBudget => self.over_budget += 1,
            UnitClass::Failed => self.failed += 1,
            UnitClass::TimedOut => self.timed_out += 1,
            UnitClass::Skipped => self.skipped += 1,
        }
        if let Some(a) = accuracy {
            if self.acc_n == 0 {
                self.acc_min = a;
                self.acc_max = a;
            } else {
                self.acc_min = self.acc_min.min(a);
                self.acc_max = self.acc_max.max(a);
            }
            self.acc_n += 1;
            self.acc_sum += a;
            let bin = ((a * ACC_BINS as f64) as usize).min(ACC_BINS - 1);
            self.acc_hist[bin] += 1;
        }
        if let Some(s) = size {
            self.size_n += 1;
            self.size_sum += s;
            self.size_max = self.size_max.max(s);
        }
    }

    /// Units of every class recorded into this family.
    pub fn total(&self) -> u64 {
        self.ok + self.approximated + self.over_budget + self.failed + self.timed_out + self.skipped
    }

    fn encode(&self, out: &mut Vec<u8>) {
        for c in [
            self.ok,
            self.approximated,
            self.over_budget,
            self.failed,
            self.timed_out,
            self.skipped,
            self.acc_n,
            self.acc_sum.to_bits(),
            self.acc_min.to_bits(),
            self.acc_max.to_bits(),
        ] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &h in &self.acc_hist {
            out.extend_from_slice(&h.to_le_bytes());
        }
        for c in [self.size_n, self.size_sum, self.size_max] {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn decode(w: &mut Wire<'_>) -> Result<FamilyStats, String> {
        let mut s = FamilyStats {
            ok: w.u64()?,
            approximated: w.u64()?,
            over_budget: w.u64()?,
            failed: w.u64()?,
            timed_out: w.u64()?,
            skipped: w.u64()?,
            acc_n: w.u64()?,
            acc_sum: f64::from_bits(w.u64()?),
            acc_min: f64::from_bits(w.u64()?),
            acc_max: f64::from_bits(w.u64()?),
            ..FamilyStats::default()
        };
        for h in &mut s.acc_hist {
            *h = w.u64()?;
        }
        s.size_n = w.u64()?;
        s.size_sum = w.u64()?;
        s.size_max = w.u64()?;
        Ok(s)
    }

    fn to_json(&self) -> String {
        let mean = if self.acc_n > 0 {
            self.acc_sum / self.acc_n as f64
        } else {
            0.0
        };
        let hist: Vec<String> = self.acc_hist.iter().map(|h| h.to_string()).collect();
        let mean_size = if self.size_n > 0 {
            self.size_sum as f64 / self.size_n as f64
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"ok\":{},\"approximated\":{},\"over_budget\":{},",
                "\"failed\":{},\"timed_out\":{},\"skipped\":{},",
                "\"accuracy\":{{\"n\":{},\"mean\":{},\"min\":{},\"max\":{},\"hist\":[{}]}},",
                "\"size\":{{\"n\":{},\"mean\":{},\"max\":{}}}}}"
            ),
            self.ok,
            self.approximated,
            self.over_budget,
            self.failed,
            self.timed_out,
            self.skipped,
            self.acc_n,
            mean,
            if self.acc_n > 0 { self.acc_min } else { 0.0 },
            if self.acc_n > 0 { self.acc_max } else { 0.0 },
            hist.join(","),
            self.size_n,
            mean_size,
            self.size_max,
        )
    }
}

/// The whole sweep's accumulator. `PartialEq` is exact (f64s compared as
/// written), which is what the kill-and-resume determinism assertions use.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteStats {
    /// Per-family results, keyed by family name (externally ingested files
    /// accumulate under `"external"`). `BTreeMap` for deterministic order.
    pub families: BTreeMap<String, FamilyStats>,
    /// Total quarantined external files (unbounded count).
    pub quarantined: u64,
    /// The first [`MAX_QUARANTINE_LOG`] quarantine `(file, reason)` pairs.
    pub quarantine_log: Vec<(String, String)>,
}

impl SuiteStats {
    /// The accumulator for `family`, created empty on first touch.
    pub fn family_mut(&mut self, family: &str) -> &mut FamilyStats {
        self.families.entry(family.to_string()).or_default()
    }

    /// Records a rejected external file (bounded log, unbounded count).
    pub fn record_quarantine(&mut self, file: &str, reason: &str) {
        self.quarantined += 1;
        if self.quarantine_log.len() < MAX_QUARANTINE_LOG {
            self.quarantine_log
                .push((file.to_string(), reason.to_string()));
        }
    }

    /// Units processed across the whole sweep. Quarantine is its own
    /// terminal state (a quarantined file is not also recorded under a
    /// family), so this is the family totals plus the quarantine count.
    pub fn total_units(&self) -> u64 {
        self.families.values().map(|f| f.total()).sum::<u64>() + self.quarantined
    }

    /// Serializes into `out` (checkpoint payload fragment).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.families.len() as u32).to_le_bytes());
        for (name, fam) in &self.families {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            fam.encode(out);
        }
        out.extend_from_slice(&self.quarantined.to_le_bytes());
        out.extend_from_slice(&(self.quarantine_log.len() as u32).to_le_bytes());
        for (file, reason) in &self.quarantine_log {
            for s in [file, reason] {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Bounds-checked decode; any defect is an `Err` (→ cold start).
    pub fn decode(w: &mut Wire<'_>) -> Result<SuiteStats, String> {
        let mut stats = SuiteStats::default();
        let n_fam = w.u32()? as usize;
        for _ in 0..n_fam {
            let name = read_string(w)?;
            stats.families.insert(name, FamilyStats::decode(w)?);
        }
        stats.quarantined = w.u64()?;
        let n_log = w.u32()? as usize;
        if n_log > MAX_QUARANTINE_LOG {
            return Err(format!("quarantine log claims {n_log} entries"));
        }
        for _ in 0..n_log {
            let file = read_string(w)?;
            let reason = read_string(w)?;
            stats.quarantine_log.push((file, reason));
        }
        Ok(stats)
    }

    /// Renders the `BENCH_suite.json` document.
    pub fn to_json(&self) -> String {
        let fams: Vec<String> = self
            .families
            .iter()
            .map(|(name, f)| format!("{}:{}", json_string(name), f.to_json()))
            .collect();
        let log: Vec<String> = self
            .quarantine_log
            .iter()
            .map(|(file, reason)| {
                format!(
                    "{{\"file\":{},\"reason\":{}}}",
                    json_string(file),
                    json_string(reason)
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"lsml-suite-v1\",\"total_units\":{},",
                "\"families\":{{{}}},",
                "\"quarantined\":{{\"count\":{},\"entries\":[{}]}}}}"
            ),
            self.total_units(),
            fams.join(","),
            self.quarantined,
            log.join(","),
        )
    }
}

fn read_string(w: &mut Wire<'_>) -> Result<String, String> {
    let len = w.u32()? as usize;
    if len > 1 << 16 {
        return Err(format!("string of {len} bytes in stats"));
    }
    String::from_utf8(w.bytes(len)?.to_vec()).map_err(|e| e.to_string())
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteStats {
        let mut s = SuiteStats::default();
        let f = s.family_mut("adder");
        f.record(UnitClass::Ok, Some(1.0), Some(12));
        f.record(UnitClass::Approximated, Some(0.83), Some(40));
        f.record(UnitClass::TimedOut, None, None);
        s.family_mut("dnf").record(UnitClass::Failed, None, None);
        s.record_quarantine("junk.bench", "bench: unknown gate");
        s
    }

    #[test]
    fn records_classes_and_distributions() {
        let s = sample();
        let f = &s.families["adder"];
        assert_eq!((f.ok, f.approximated, f.timed_out), (1, 1, 1));
        assert_eq!(f.acc_n, 2);
        assert_eq!(f.acc_min, 0.83);
        assert_eq!(f.acc_max, 1.0);
        assert_eq!(f.acc_hist[9], 1, "1.0 clamps into the last bin");
        assert_eq!(f.acc_hist[8], 1, "0.83 in [0.8, 0.9)");
        assert_eq!((f.size_n, f.size_sum, f.size_max), (2, 52, 40));
        assert_eq!(s.total_units(), 5, "4 units + 1 quarantined");
    }

    #[test]
    fn encode_decode_round_trip_is_exact() {
        let s = sample();
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        let mut w = Wire::new(&bytes);
        let d = SuiteStats::decode(&mut w).unwrap();
        assert_eq!(w.remaining(), 0);
        assert_eq!(d, s);

        // Truncations never panic, always Err.
        for cut in 0..bytes.len() {
            let mut w = Wire::new(&bytes[..cut]);
            assert!(SuiteStats::decode(&mut w).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let mut s = sample();
        s.record_quarantine("we\"ird\\name\n", "why");
        let j = s.to_json();
        assert!(j.starts_with("{\"schema\":\"lsml-suite-v1\""));
        assert!(j.contains("\"adder\":{\"ok\":1"));
        assert!(j.contains("\"we\\\"ird\\\\name\\n\""));
        assert!(j.contains("\"count\":2"));
        // Balanced braces/brackets (cheap well-formedness check; the repo
        // has no JSON parser to vendor).
        let (mut depth, mut ok) = (0i64, true);
        let mut in_str = false;
        let mut esc = false;
        for c in j.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => {
                    depth -= 1;
                    ok &= depth >= 0;
                }
                _ => {}
            }
        }
        assert!(ok && depth == 0 && !in_str, "unbalanced JSON: {j}");
    }

    #[test]
    fn quarantine_log_is_bounded() {
        let mut s = SuiteStats::default();
        for i in 0..(MAX_QUARANTINE_LOG + 10) {
            s.record_quarantine(&format!("f{i}"), "r");
        }
        assert_eq!(s.quarantine_log.len(), MAX_QUARANTINE_LOG);
        assert_eq!(s.quarantined, (MAX_QUARANTINE_LOG + 10) as u64);
    }
}
