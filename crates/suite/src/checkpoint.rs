//! Resumable sweep checkpoints.
//!
//! Every N circuits the engine persists `(config fingerprint, cursor,
//! stats)` in the same crash-safe discipline as PR 9's cache snapshots:
//! checksummed payload, temp file, `fsync`, atomic rename, directory
//! `fsync`. Because unit seeds are counter-derived ([`crate::family`]),
//! the cursor *is* the RNG stream state — nothing else needs saving for a
//! resumed sweep to be bit-identical to an uninterrupted one.
//!
//! Loading never trusts the file: any defect (missing, torn, bit-flipped,
//! version skew, or a checkpoint from a *different sweep configuration*)
//! yields `None` and the sweep restarts from unit 0. A bad checkpoint
//! costs progress, never correctness and never a panic.

use crate::stats::SuiteStats;
use lsml_serve::fault::FaultPlan;
use lsml_serve::protocol::Wire;
use lsml_serve::snapshot::fnv1a;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// File magic: "LSML" + "SWP" (sweep) + format generation.
pub const MAGIC: &[u8; 8] = b"LSMLSWP1";
/// Bumped on any layout change; a mismatch restarts from unit 0.
pub const VERSION: u32 = 1;

/// One persisted sweep position.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the sweep configuration that wrote this checkpoint.
    /// A resume under a different config (families, unit counts, seed,
    /// budgets…) must not splice mismatched stats together, so a mismatch
    /// discards the checkpoint.
    pub config_fingerprint: u64,
    /// Units fully processed; the resume point. Unit `cursor` is the next
    /// one to run.
    pub cursor: u64,
    /// Stats accumulated over units `0..cursor`.
    pub stats: SuiteStats,
}

impl Checkpoint {
    /// Serializes to the on-disk format (header + payload + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        payload.extend_from_slice(&self.cursor.to_le_bytes());
        self.stats.encode(&mut payload);
        let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out
    }

    /// Decodes and verifies checkpoint bytes; must never panic on
    /// arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, String> {
        let mut w = Wire::new(bytes);
        if w.bytes(MAGIC.len())? != MAGIC {
            return Err("bad magic".into());
        }
        let version = w.u32()?;
        if version != VERSION {
            return Err(format!("checkpoint version {version}, expected {VERSION}"));
        }
        let payload_len = w.u64()? as usize;
        if w.remaining() != payload_len + 8 {
            return Err(format!(
                "torn checkpoint: header says {payload_len}B payload + 8B checksum, file has {}B",
                w.remaining()
            ));
        }
        let payload = w.bytes(payload_len)?;
        let want = w.u64()?;
        let got = fnv1a(payload);
        if want != got {
            return Err(format!(
                "checksum mismatch: stored {want:#x}, computed {got:#x}"
            ));
        }
        let mut p = Wire::new(payload);
        let cp = Checkpoint {
            config_fingerprint: p.u64()?,
            cursor: p.u64()?,
            stats: SuiteStats::decode(&mut p)?,
        };
        if p.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", p.remaining()));
        }
        Ok(cp)
    }
}

/// Writes `cp` to `path` crash-safely (temp + fsync + atomic rename +
/// directory fsync). The fault plan's snapshot faults apply here too:
/// `snapshot_corrupt` flips a payload bit (the checksum must catch it on
/// load), `snapshot_kill_mid_write` abandons a half-written temp file
/// without renaming (the target name never holds a torn checkpoint).
pub fn save(path: &Path, cp: &Checkpoint, fault: &FaultPlan) -> io::Result<()> {
    let mut bytes = cp.encode();
    if fault.snapshot_corrupt && !bytes.is_empty() {
        let i = bytes.len() / 2;
        bytes[i] ^= 0x10;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        if fault.snapshot_kill_mid_write {
            f.write_all(&bytes[..bytes.len() / 2])?;
            return Ok(());
        }
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads a checkpoint, or `None` for *any* failure — missing file, torn
/// write, corruption, version skew. The caller treats `None` as "start
/// from unit 0"; it is never an error.
pub fn load(path: &Path) -> Option<Checkpoint> {
    let bytes = fs::read(path).ok()?;
    Checkpoint::decode(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UnitClass;

    fn sample() -> Checkpoint {
        let mut stats = SuiteStats::default();
        stats
            .family_mut("cone")
            .record(UnitClass::Ok, Some(0.97), Some(33));
        stats.record_quarantine("bad.aig", "aig: truncated");
        Checkpoint {
            config_fingerprint: 0xC0FFEE,
            cursor: 41,
            stats,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn save_load_and_fault_paths() {
        let dir = std::env::temp_dir().join("lsml-suite-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let _ = fs::remove_file(&path);

        save(&path, &sample(), &FaultPlan::none()).unwrap();
        assert_eq!(load(&path).unwrap(), sample());

        let corrupt = FaultPlan {
            snapshot_corrupt: true,
            ..FaultPlan::none()
        };
        save(&path, &sample(), &corrupt).unwrap();
        assert!(load(&path).is_none(), "bit flip must not load");

        let _ = fs::remove_file(&path);
        let kill = FaultPlan {
            snapshot_kill_mid_write: true,
            ..FaultPlan::none()
        };
        save(&path, &sample(), &kill).unwrap();
        assert!(!path.exists(), "killed write must never reach the target");
        assert!(load(&path).is_none());
        let _ = fs::remove_file(path.with_extension("tmp"));
    }

    #[test]
    fn garbage_truncation_and_wrong_magic_never_panic() {
        assert!(Checkpoint::decode(b"").is_err());
        assert!(Checkpoint::decode(b"LSMLSNP1").is_err(), "snapshot magic");
        assert!(Checkpoint::decode(&[0xFF; 64]).is_err());
        let good = sample().encode();
        for cut in 0..good.len() {
            assert!(Checkpoint::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(Checkpoint::decode(&flipped).is_err());
    }
}
