//! A blocking client for the daemon, used by the tests, the bench load
//! generator, and anyone scripting the protocol.
//!
//! One request at a time (send, then wait for the matching response); the
//! wire protocol itself allows pipelining, but lockstep keeps the client
//! trivially correct and is what the load generator wants for latency
//! measurements anyway.

use crate::protocol::{
    encode_datasets, encode_request, parse_response, read_frame, write_frame, FrameError, Op,
    Status, Wire, DEFAULT_MAX_FRAME,
};
use lsml_aig::aiger::{read_aig, write_aig};
use lsml_aig::Aig;
use lsml_pla::Dataset;
use std::io::{self};
use std::net::{TcpStream, ToSocketAddrs};

/// What a request can come back as.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (daemon gone, connection reset...).
    Io(io::Error),
    /// The daemon answered with a non-Ok status.
    Server(Status, String),
    /// The daemon's Ok response body did not decode (protocol skew).
    Decode(String),
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server(s, m) => write!(f, "server {s:?}: {m}"),
            ClientError::Decode(m) => write!(f, "bad response body: {m}"),
        }
    }
}

/// The winner a `SelectBest` returns.
#[derive(Debug)]
pub struct SelectBestReply {
    /// The deadline fired; this is the best candidate compiled *so far*,
    /// not necessarily the best in the batch.
    pub partial: bool,
    /// AND-gate count of the winner.
    pub and_gates: u32,
    /// Validation accuracy of the winner.
    pub accuracy: f64,
    /// The winner itself.
    pub aig: Aig,
}

/// A blocking connection to the daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u32,
    /// Deadline attached to subsequent requests (ms; 0 = none).
    pub deadline_ms: u32,
    max_frame: usize,
}

impl Client {
    /// Connects (TCP, Nagle off so single-frame requests leave promptly).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            deadline_ms: 0,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and waits for its response. Exposed raw so the
    /// fuzzer and tests can poke odd corners; the typed helpers below wrap
    /// it.
    pub fn request(&mut self, op: Op, body: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let frame = encode_request(id, self.deadline_ms, op, body);
        write_frame(&mut self.stream, &frame)?;
        loop {
            let payload = match read_frame(&mut self.stream, self.max_frame) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
                Err(FrameError::Oversized(n)) => {
                    return Err(ClientError::Decode(format!("{n}B response frame")))
                }
            };
            let (rid, status, body) = parse_response(&payload).map_err(ClientError::Decode)?;
            // Lockstep means any other id is a stale response to a request
            // whose deadline we already gave up on — skip it.
            if rid == id {
                return Ok((status, body.to_vec()));
            }
        }
    }

    fn request_ok(&mut self, op: Op, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        match self.request(op, body)? {
            (Status::Ok, body) => Ok(body),
            (status, body) => Err(ClientError::Server(
                status,
                String::from_utf8_lossy(&body).into_owned(),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request_ok(Op::Ping, &[]).map(|_| ())
    }

    /// Installs this connection's datasets and synthesis parameters.
    pub fn load_dataset(
        &mut self,
        train: &Dataset,
        valid: &Dataset,
        seed: u64,
        node_limit: u32,
    ) -> Result<(), ClientError> {
        let body = encode_datasets(train, valid, seed, node_limit);
        self.request_ok(Op::LoadDataset, &body).map(|_| ())
    }

    /// Registers a single-output candidate; returns its batch id.
    pub fn add_candidate(&mut self, aig: &Aig) -> Result<u32, ClientError> {
        let mut body = Vec::new();
        write_aig(aig, &mut body).expect("Vec write cannot fail");
        let resp = self.request_ok(Op::AddCandidate, &body)?;
        Wire::new(&resp).u32().map_err(ClientError::Decode)
    }

    /// Validation accuracies of every candidate (one shared simulation
    /// server-side).
    pub fn accuracies(&mut self) -> Result<Vec<f64>, ClientError> {
        let resp = self.request_ok(Op::Accuracies, &[])?;
        let mut w = Wire::new(&resp);
        let n = w.u32().map_err(ClientError::Decode)? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(w.f64().map_err(ClientError::Decode)?);
        }
        Ok(out)
    }

    /// Compiles and returns the best candidate under `node_limit` (0 =
    /// session default), honoring [`Client::deadline_ms`].
    pub fn select_best(&mut self, node_limit: u32) -> Result<SelectBestReply, ClientError> {
        let resp = self.request_ok(Op::SelectBest, &node_limit.to_le_bytes())?;
        let mut w = Wire::new(&resp);
        let partial = w.u8().map_err(ClientError::Decode)? != 0;
        let and_gates = w.u32().map_err(ClientError::Decode)?;
        let accuracy = w.f64().map_err(ClientError::Decode)?;
        let len = w.u32().map_err(ClientError::Decode)? as usize;
        let aig_bytes = w.bytes(len).map_err(ClientError::Decode)?;
        let aig = read_aig(aig_bytes).map_err(|e| ClientError::Decode(format!("{e:?}")))?;
        Ok(SelectBestReply {
            partial,
            and_gates,
            accuracy,
            aig,
        })
    }

    /// Boosts on the session's train set and registers the round prefixes
    /// as candidates; returns (first id, count).
    pub fn learn(&mut self, rounds: u32) -> Result<(u32, u32), ClientError> {
        let resp = self.request_ok(Op::Learn, &rounds.to_le_bytes())?;
        let mut w = Wire::new(&resp);
        let first = w.u32().map_err(ClientError::Decode)?;
        let count = w.u32().map_err(ClientError::Decode)?;
        Ok((first, count))
    }

    /// Server counters as JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let resp = self.request_ok(Op::Stats, &[])?;
        Ok(String::from_utf8_lossy(&resp).into_owned())
    }

    /// Asks the daemon to drain, snapshot and stop.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request_ok(Op::Shutdown, &[]).map(|_| ())
    }

    /// Sends raw bytes as-is (no framing) — the fuzzer's hatch.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame, if any.
    pub fn read_response(&mut self) -> Result<Option<(u32, Status, Vec<u8>)>, ClientError> {
        match read_frame(&mut self.stream, self.max_frame) {
            Ok(Some(p)) => {
                let (id, status, body) = parse_response(&p).map_err(ClientError::Decode)?;
                Ok(Some((id, status, body.to_vec())))
            }
            Ok(None) => Ok(None),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameError::Oversized(n)) => Err(ClientError::Decode(format!("{n}B frame"))),
        }
    }
}
