//! Crash-safe warm-start persistence for the synthesis caches.
//!
//! On graceful shutdown the daemon serializes the sharded compile and
//! fixpoint caches (PR 8) to a single checksummed snapshot file; on boot it
//! reloads them so a restarted daemon answers repeat compiles from cache —
//! *hit-identically* to the live cache it replaced (pinned by proptest in
//! `tests/warm_start.rs`).
//!
//! Crash-safety is the classic discipline: encode to bytes, write to a
//! sibling temp file, `fsync`, then atomically rename over the target (and
//! `fsync` the directory on Unix so the rename itself is durable). A crash
//! at any point leaves either the old snapshot or a stray temp file — never
//! a half-written snapshot under the real name.
//!
//! Loading **never** trusts the file: magic, version, length and an FNV-1a
//! checksum over the payload are verified before a byte is decoded, and
//! every decode path is bounds-checked ([`crate::protocol::Wire`]). Torn,
//! truncated or bit-flipped snapshots are rejected in favor of a cold start
//! — a bad snapshot costs warm-up time, never correctness and never a
//! crash (pinned by corruption proptests in `tests/snapshot_props.rs`).

use crate::fault::FaultPlan;
use crate::protocol::Wire;
use lsml_aig::aiger::{read_aig, write_aig};
use lsml_aig::opt::{fixpoint_cache_export, fixpoint_cache_import};
use lsml_core::compile::{compile_cache_export, compile_cache_import, CompileCacheEntry};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// File magic: "LSML" + "SNP" + format generation.
pub const MAGIC: &[u8; 8] = b"LSMLSNP1";
/// Bumped on any layout change; a mismatch cold-starts.
pub const VERSION: u32 = 1;

/// An in-memory image of both caches.
#[derive(Default)]
pub struct Snapshot {
    /// Fixpoint-cache keys (graph fingerprint, pipeline fingerprint).
    pub fixpoint_keys: Vec<(u128, u64)>,
    /// Full compile-cache entries (key + optimized graph).
    pub compile_entries: Vec<SnapshotCompileEntry>,
}

/// One compile-cache entry in snapshot form. Mirrors
/// [`CompileCacheEntry`] but owns a comparable, encodable row.
pub struct SnapshotCompileEntry {
    /// Structural fingerprint of the canonicalized input cone.
    pub graph_fingerprint: u128,
    /// Fingerprint of the budget + pipeline configuration.
    pub budget_fingerprint: u64,
    /// The memoized optimized graph, AIGER-encoded in the file.
    pub aig: lsml_aig::Aig,
    /// Whether approximation traded accuracy away.
    pub approximated: bool,
}

// `Aig` has no PartialEq/Debug of its own; snapshot equality compares graphs
// by structural fingerprint, which is exactly the identity the cache keys on.
impl PartialEq for SnapshotCompileEntry {
    fn eq(&self, other: &Self) -> bool {
        self.graph_fingerprint == other.graph_fingerprint
            && self.budget_fingerprint == other.budget_fingerprint
            && self.approximated == other.approximated
            && self.aig.structural_fingerprint() == other.aig.structural_fingerprint()
    }
}

impl std::fmt::Debug for SnapshotCompileEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCompileEntry")
            .field("graph_fingerprint", &self.graph_fingerprint)
            .field("budget_fingerprint", &self.budget_fingerprint)
            .field("ands", &self.aig.num_ands())
            .field("approximated", &self.approximated)
            .finish()
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.fixpoint_keys == other.fixpoint_keys && self.compile_entries == other.compile_entries
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("fixpoint_keys", &self.fixpoint_keys.len())
            .field("compile_entries", &self.compile_entries)
            .finish()
    }
}

/// FNV-1a over bytes — small, dependency-free, and plenty to catch torn
/// writes and bit flips (this is corruption *detection*, not security).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// Captures the current global cache contents. Export order is sorted by
    /// key, so identical cache contents always produce identical bytes.
    pub fn capture() -> Snapshot {
        Snapshot {
            fixpoint_keys: fixpoint_cache_export(),
            compile_entries: compile_cache_export()
                .into_iter()
                .map(|e| SnapshotCompileEntry {
                    graph_fingerprint: e.graph_fingerprint,
                    budget_fingerprint: e.budget_fingerprint,
                    aig: e.aig,
                    approximated: e.approximated,
                })
                .collect(),
        }
    }

    /// Installs the snapshot into the global caches through the normal
    /// budget-enforcing insert paths (an oversized snapshot triggers the
    /// caches' own eviction, it cannot blow the memory budget).
    pub fn install(self) {
        fixpoint_cache_import(&self.fixpoint_keys);
        compile_cache_import(self.compile_entries.into_iter().map(|e| CompileCacheEntry {
            graph_fingerprint: e.graph_fingerprint,
            budget_fingerprint: e.budget_fingerprint,
            aig: e.aig,
            approximated: e.approximated,
        }));
    }

    /// Serializes to the on-disk format (header + payload + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.fixpoint_keys.len() as u32).to_le_bytes());
        for &(g, p) in &self.fixpoint_keys {
            payload.extend_from_slice(&g.to_le_bytes());
            payload.extend_from_slice(&p.to_le_bytes());
        }
        payload.extend_from_slice(&(self.compile_entries.len() as u32).to_le_bytes());
        for e in &self.compile_entries {
            payload.extend_from_slice(&e.graph_fingerprint.to_le_bytes());
            payload.extend_from_slice(&e.budget_fingerprint.to_le_bytes());
            payload.push(e.approximated as u8);
            let mut aig_bytes = Vec::new();
            write_aig(&e.aig, &mut aig_bytes).expect("Vec write cannot fail");
            payload.extend_from_slice(&(aig_bytes.len() as u32).to_le_bytes());
            payload.extend_from_slice(&aig_bytes);
        }
        let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out
    }

    /// Decodes and verifies a snapshot file's bytes. Any defect — bad magic,
    /// version skew, truncation, checksum mismatch, malformed AIGER —
    /// returns `Err` (→ cold start); this function must never panic on
    /// arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
        let mut w = Wire::new(bytes);
        if w.bytes(MAGIC.len())? != MAGIC {
            return Err("bad magic".into());
        }
        let version = w.u32()?;
        if version != VERSION {
            return Err(format!("snapshot version {version}, expected {VERSION}"));
        }
        let payload_len = w.u64()? as usize;
        if w.remaining() != payload_len + 8 {
            return Err(format!(
                "torn snapshot: header says {payload_len}B payload + 8B checksum, file has {}B",
                w.remaining()
            ));
        }
        let payload = w.bytes(payload_len)?;
        let want = w.u64()?;
        let got = fnv1a(payload);
        if want != got {
            return Err(format!(
                "checksum mismatch: stored {want:#x}, computed {got:#x}"
            ));
        }
        let mut p = Wire::new(payload);
        let n_fix = p.u32()? as usize;
        let mut fixpoint_keys = Vec::with_capacity(n_fix.min(1 << 20));
        for _ in 0..n_fix {
            fixpoint_keys.push((p.u128()?, p.u64()?));
        }
        let n_compile = p.u32()? as usize;
        let mut compile_entries = Vec::with_capacity(n_compile.min(1 << 16));
        for _ in 0..n_compile {
            let graph_fingerprint = p.u128()?;
            let budget_fingerprint = p.u64()?;
            let approximated = p.u8()? != 0;
            let len = p.u32()? as usize;
            let aig_bytes = p.bytes(len)?;
            let aig = read_aig(aig_bytes).map_err(|e| format!("entry AIGER: {e:?}"))?;
            compile_entries.push(SnapshotCompileEntry {
                graph_fingerprint,
                budget_fingerprint,
                aig,
                approximated,
            });
        }
        if p.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", p.remaining()));
        }
        Ok(Snapshot {
            fixpoint_keys,
            compile_entries,
        })
    }

    /// Total entries across both caches.
    pub fn len(&self) -> usize {
        self.fixpoint_keys.len() + self.compile_entries.len()
    }

    /// Whether the snapshot holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writes `snap` to `path` crash-safely (temp + fsync + rename). The fault
/// plan can corrupt the bytes (simulating a torn/bit-flipped write) or
/// abandon the write mid-way (simulating a kill) — both leave the *target*
/// path in a state `load` handles: the corrupt bytes fail the checksum, the
/// abandoned write never reaches the target name at all.
pub fn save(path: &Path, snap: &Snapshot, fault: &FaultPlan) -> io::Result<()> {
    let mut bytes = snap.encode();
    if fault.snapshot_corrupt && !bytes.is_empty() {
        // Flip one payload bit; the checksum must catch it on load.
        let i = bytes.len() / 2;
        bytes[i] ^= 0x10;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        if fault.snapshot_kill_mid_write {
            // Simulated kill: half the bytes land, no fsync, no rename. The
            // stray temp file must never be mistaken for a snapshot.
            f.write_all(&bytes[..bytes.len() / 2])?;
            return Ok(());
        }
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable: fsync the containing directory.
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads a snapshot, or `None` for *any* failure — missing file, torn
/// write, corruption, version skew. The caller treats `None` as a cold
/// start; it is never an error.
pub fn load(path: &Path) -> Option<Snapshot> {
    let bytes = fs::read(path).ok()?;
    Snapshot::decode(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut aig = lsml_aig::Aig::new(3);
        let (a, b) = (aig.input(0), aig.input(1));
        let x = aig.xor(a, b);
        aig.add_output(x);
        Snapshot {
            fixpoint_keys: vec![(1, 2), (3, 4)],
            compile_entries: vec![SnapshotCompileEntry {
                graph_fingerprint: 0xDEAD,
                budget_fingerprint: 0xBEEF,
                aig,
                approximated: false,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample();
        let bytes = s.encode();
        let d = Snapshot::decode(&bytes).unwrap();
        assert_eq!(d, s);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn save_load_atomic_and_fault_paths() {
        let dir = std::env::temp_dir().join("lsml-snap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.snap");
        let _ = fs::remove_file(&path);

        // Clean save → loads back.
        save(&path, &sample(), &FaultPlan::none()).unwrap();
        assert_eq!(load(&path).unwrap(), sample());

        // Corrupting fault → checksum rejects → cold start (None).
        let corrupt = FaultPlan {
            snapshot_corrupt: true,
            ..FaultPlan::none()
        };
        save(&path, &sample(), &corrupt).unwrap();
        assert!(load(&path).is_none(), "bit flip must not load");

        // Mid-write kill → target untouched (here: still the corrupt one),
        // only a stray temp file.
        let _ = fs::remove_file(&path);
        let kill = FaultPlan {
            snapshot_kill_mid_write: true,
            ..FaultPlan::none()
        };
        save(&path, &sample(), &kill).unwrap();
        assert!(!path.exists(), "killed write must never reach the target");
        assert!(load(&path).is_none());
        let _ = fs::remove_file(path.with_extension("tmp"));
    }

    #[test]
    fn garbage_and_truncation_never_panic() {
        assert!(Snapshot::decode(b"").is_err());
        assert!(Snapshot::decode(b"LSMLSNP9").is_err());
        let good = sample().encode();
        for cut in [1, 8, 12, 20, good.len() - 1] {
            assert!(Snapshot::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(Snapshot::decode(&flipped).is_err());
    }
}
