//! Bounded, fairness-aware request queue feeding the worker threads.
//!
//! This is the admission-control heart of the daemon:
//!
//! * **Bounded** — at most `capacity` queued requests; a full queue sheds
//!   ([`ShedReason::QueueFull`]) instead of growing without bound. Admission
//!   never blocks, so the accept path cannot be wedged by slow workers.
//! * **Fair** — each client gets its own FIFO sub-queue and workers pop
//!   round-robin across clients, so one chatty client cannot starve the
//!   rest. On top of that, each client has a token budget
//!   ([`ShedReason::ClientBudget`]): outstanding work is charged by op cost
//!   and a client over budget is shed until its work completes.
//! * **Drainable** — [`RequestQueue::drain`] flips the queue into a
//!   non-admitting state and blocks until every queued *and in-flight*
//!   request has completed; [`RequestQueue::shutdown`] then releases the
//!   blocked workers. This is the graceful-SIGTERM path.
//!
//! All synchronization goes through the `loom::sync` facade, so the
//! sleep/wake protocol (two condvars: `cv_work` for workers, `cv_idle` for
//! drainers) is exhaustively model-checked under `--cfg lsml_loom` — see
//! `tests/loom_queue.rs` for the no-lost-wakeup and no-shutdown-hang models.

use loom::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a request was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The global queue is at capacity.
    QueueFull,
    /// This client already has a full token budget of work outstanding.
    ClientBudget,
    /// The server is draining (or stopped) and admits nothing new.
    Draining,
}

/// What a worker got from [`RequestQueue::pop_blocking`].
pub enum Popped<T> {
    /// A unit of work. The worker must call
    /// [`RequestQueue::complete`]`(client, cost)` when done — success,
    /// panic-caught, or shed-late — or drain will hang.
    Job {
        /// Admitting client, for the completion call.
        client: u64,
        /// Token cost charged at admission, refunded by `complete`.
        cost: u64,
        /// The request itself.
        item: T,
    },
    /// The queue is shut down; the worker thread should exit.
    Shutdown,
}

struct Inner<T> {
    /// Per-client FIFO sub-queues, in first-seen order. Empty sub-queues are
    /// removed so the round-robin cursor only visits live clients.
    queues: Vec<(u64, VecDeque<(u64, T)>)>,
    /// Round-robin position over `queues`.
    cursor: usize,
    /// Total queued items (sum of sub-queue lengths).
    queued: usize,
    /// Popped but not yet completed.
    in_flight: usize,
    /// Outstanding token cost per client (admitted + in-flight).
    spent: Vec<(u64, u64)>,
    /// No new admissions; workers keep draining what is queued.
    draining: bool,
    /// Workers should exit once the queue is empty.
    shutdown: bool,
}

impl<T> Inner<T> {
    fn spent_mut(&mut self, client: u64) -> &mut u64 {
        if let Some(i) = self.spent.iter().position(|&(c, _)| c == client) {
            return &mut self.spent[i].1;
        }
        self.spent.push((client, 0));
        &mut self.spent.last_mut().expect("just pushed").1
    }
}

/// The bounded multi-client queue. See the module docs for the contract.
pub struct RequestQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Workers park here waiting for work (or shutdown).
    cv_work: Condvar,
    /// Drainers park here waiting for quiescence (queued == in_flight == 0).
    cv_idle: Condvar,
    capacity: usize,
    client_tokens: u64,
}

impl<T> RequestQueue<T> {
    /// A queue admitting at most `capacity` requests, with `client_tokens`
    /// of outstanding cost allowed per client.
    pub fn new(capacity: usize, client_tokens: u64) -> RequestQueue<T> {
        RequestQueue {
            inner: Mutex::new(Inner {
                queues: Vec::new(),
                cursor: 0,
                queued: 0,
                in_flight: 0,
                spent: Vec::new(),
                draining: false,
                shutdown: false,
            }),
            cv_work: Condvar::new(),
            cv_idle: Condvar::new(),
            capacity,
            client_tokens,
        }
    }

    /// Admits a request or says why not — never blocks. A client with
    /// nothing outstanding may exceed the token budget with a single big
    /// request (otherwise an expensive op could never be admitted at all);
    /// with anything outstanding, the budget is a hard line.
    pub fn try_push(&self, client: u64, cost: u64, item: T) -> Result<(), ShedReason> {
        let mut st = self.inner.lock().expect("queue lock");
        if st.draining || st.shutdown {
            return Err(ShedReason::Draining);
        }
        if st.queued >= self.capacity {
            return Err(ShedReason::QueueFull);
        }
        let budget = self.client_tokens;
        let spent = st.spent_mut(client);
        if *spent > 0 && *spent + cost > budget {
            return Err(ShedReason::ClientBudget);
        }
        *spent += cost;
        match st.queues.iter_mut().find(|(c, _)| *c == client) {
            Some((_, q)) => q.push_back((cost, item)),
            None => {
                let mut q = VecDeque::new();
                q.push_back((cost, item));
                st.queues.push((client, q));
            }
        }
        st.queued += 1;
        drop(st);
        self.cv_work.notify_one();
        Ok(())
    }

    /// Blocks until work is available (round-robin across clients) or the
    /// queue shuts down. Draining does **not** wake idle workers — they keep
    /// sleeping until `shutdown` releases them, while busy workers finish
    /// the backlog.
    pub fn pop_blocking(&self) -> Popped<T> {
        let mut st = self.inner.lock().expect("queue lock");
        loop {
            if st.queued > 0 {
                let slot = st.cursor % st.queues.len();
                let (client, cost, item, now_empty) = {
                    let (c, q) = &mut st.queues[slot];
                    let (cost, item) = q.pop_front().expect("non-empty sub-queue");
                    (*c, cost, item, q.is_empty())
                };
                if now_empty {
                    // The cursor stays at `slot`, which now names the next
                    // client — removal itself advances the round-robin.
                    st.queues.remove(slot);
                } else {
                    st.cursor = slot + 1;
                }
                st.queued -= 1;
                st.in_flight += 1;
                return Popped::Job { client, cost, item };
            }
            if st.shutdown {
                return Popped::Shutdown;
            }
            st = self.cv_work.wait(st).expect("queue lock");
        }
    }

    /// Refunds a completed (or abandoned) request's tokens and, at
    /// quiescence, wakes drainers. Must be called exactly once per popped
    /// job, on every exit path — the server wraps request execution in
    /// `catch_unwind` precisely so a panicking request still completes.
    pub fn complete(&self, client: u64, cost: u64) {
        let mut st = self.inner.lock().expect("queue lock");
        st.in_flight -= 1;
        if let Some(i) = st.spent.iter().position(|&(c, _)| c == client) {
            st.spent[i].1 = st.spent[i].1.saturating_sub(cost);
            if st.spent[i].1 == 0 {
                st.spent.remove(i);
            }
        }
        let quiescent = st.queued == 0 && st.in_flight == 0;
        drop(st);
        if quiescent {
            self.cv_idle.notify_all();
        }
    }

    /// Stops admission and blocks until the queue is quiescent (nothing
    /// queued, nothing in flight). Call [`RequestQueue::shutdown`] after to
    /// release the workers. Unbounded by construction — the server bounds it
    /// by cancelling in-flight tokens from a watchdog instead of using
    /// timed waits (the loom facade deliberately has no `wait_timeout`).
    pub fn drain(&self) {
        let mut st = self.inner.lock().expect("queue lock");
        st.draining = true;
        while st.queued > 0 || st.in_flight > 0 {
            st = self.cv_idle.wait(st).expect("queue lock");
        }
    }

    /// Releases every parked worker; each returns [`Popped::Shutdown`] once
    /// the backlog is gone.
    pub fn shutdown(&self) {
        let mut st = self.inner.lock().expect("queue lock");
        st.shutdown = true;
        st.draining = true;
        drop(st);
        self.cv_work.notify_all();
    }

    /// Queued (not yet popped) request count.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").queued
    }
}

#[cfg(all(test, not(lsml_loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_client_round_robin_across() {
        let q = RequestQueue::new(16, 100);
        // Client 1 floods first, client 2 adds one; round-robin alternates.
        q.try_push(1, 1, "a1").unwrap();
        q.try_push(1, 1, "a2").unwrap();
        q.try_push(2, 1, "b1").unwrap();
        let mut order = Vec::new();
        for _ in 0..3 {
            match q.pop_blocking() {
                Popped::Job { client, cost, item } => {
                    order.push(item);
                    q.complete(client, cost);
                }
                Popped::Shutdown => panic!("not shut down"),
            }
        }
        assert_eq!(order, vec!["a1", "b1", "a2"], "fair interleave");
    }

    #[test]
    fn capacity_and_budget_shed() {
        let q = RequestQueue::new(2, 10);
        q.try_push(1, 8, ()).unwrap();
        // Outstanding 8 + 8 > 10: client budget sheds first.
        assert_eq!(q.try_push(1, 8, ()), Err(ShedReason::ClientBudget));
        // A different client is fine.
        q.try_push(2, 8, ()).unwrap();
        // Now the global capacity sheds everyone.
        assert_eq!(q.try_push(3, 1, ()), Err(ShedReason::QueueFull));
        // An idle client may exceed the budget with one oversized request.
        let q2 = RequestQueue::<()>::new(4, 4);
        q2.try_push(9, 100, ()).unwrap();
        assert_eq!(q2.try_push(9, 1, ()), Err(ShedReason::ClientBudget));
    }

    #[test]
    fn drain_waits_for_in_flight_then_shutdown_releases() {
        let q = Arc::new(RequestQueue::new(4, 100));
        q.try_push(1, 1, ()).unwrap();
        let (client, cost) = match q.pop_blocking() {
            Popped::Job { client, cost, .. } => (client, cost),
            Popped::Shutdown => panic!("not shut down"),
        };
        // Drain from another thread; it must not return while the job is in
        // flight.
        let qd = Arc::clone(&q);
        let drainer = std::thread::spawn(move || qd.drain());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!drainer.is_finished(), "drain must wait for in-flight work");
        assert_eq!(q.try_push(2, 1, ()), Err(ShedReason::Draining));
        q.complete(client, cost);
        drainer.join().unwrap();
        q.shutdown();
        assert!(matches!(q.pop_blocking(), Popped::Shutdown));
    }
}
