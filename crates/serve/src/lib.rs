//! Synthesis-as-a-service: a fault-tolerant resident daemon over the
//! engine's batched compile path.
//!
//! The IWLS-2020-contest framing of this repo is batch-oriented — load a
//! problem, learn, compile, score. This crate wraps the same engine in a
//! long-lived server so repeated synthesis work amortizes the PR 8 sharded
//! caches across requests *and restarts*:
//!
//! * [`protocol`] — hand-rolled length-prefixed TCP frames (no registry
//!   deps, so no serde/tonic/tokio); every decode path is a `Result`.
//! * [`queue`] — bounded admission with per-client fairness; overload sheds
//!   explicitly ([`protocol::Status::Overloaded`]), never hangs. The
//!   condvar sleep/wake protocol is loom-model-checked.
//! * [`server`] — the daemon: deadline cancellation at pass boundaries
//!   (partial-best-so-far for timed-out `SelectBest`), panic isolation at
//!   the request boundary, graceful drain on SIGTERM.
//! * [`snapshot`] — crash-safe cache persistence (temp + fsync + atomic
//!   rename, checksummed); torn or bit-flipped snapshots cold-start, never
//!   crash.
//! * [`fault`] — the deterministic fault-injection harness
//!   (`LSML_FAULT_SEED`) that CI runs the daemon under.
//! * [`client`] — a blocking client for tests and the bench load generator.
//!
//! Environment knobs (`LSML_SERVE_*`, `LSML_FAULT_SEED`) are documented in
//! the [`lsml_aig::par`] knob table, next to the engine's `LSML_*` family.
//!
//! # Example
//!
//! ```
//! use lsml_serve::client::Client;
//! use lsml_serve::server::{Server, ServerConfig};
//! use lsml_pla::{Dataset, Pattern};
//!
//! let server = Server::start(ServerConfig::for_tests()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // AND-of-3 truth table, split into train/valid.
//! let mut train = Dataset::new(3);
//! let mut valid = Dataset::new(3);
//! for m in 0..8u64 {
//!     let ds = if m % 2 == 0 { &mut train } else { &mut valid };
//!     ds.push(Pattern::from_index(m, 3), m == 7);
//! }
//! client.load_dataset(&train, &valid, 0, 100).unwrap();
//! client.learn(4).unwrap();
//! let best = client.select_best(0).unwrap();
//! assert!(best.and_gates <= 100);
//! client.shutdown_server().unwrap();
//! server.shutdown_and_join();
//! ```

pub mod client;
pub mod fault;
pub mod protocol;
pub mod queue;
pub mod server;
#[cfg(unix)]
pub mod signal;
pub mod snapshot;

pub use client::Client;
pub use fault::FaultPlan;
pub use server::{Server, ServerConfig};
