//! Minimal SIGTERM/SIGINT handling for the daemon binary.
//!
//! No `libc` crate (no registry), so the handler is installed through a
//! direct `signal(2)` FFI declaration. The handler does the only thing an
//! async-signal-safe handler may do here: set a flag. The daemon's main
//! loop polls [`termination_requested`] and runs the graceful
//! drain-snapshot-stop sequence from ordinary thread context.
//!
//! This file is the one deliberate exception to the serve crate's
//! `loom::sync` facade rule (see the lint's scope list): a signal handler
//! must be async-signal-safe, which rules out anything but a plain
//! `std::sync::atomic` static — and a process-level signal flag is not an
//! interleaving the loom model explores anyway.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been received since [`install`].
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Test/driver hook: simulate a received signal.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::Relaxed);
}

extern "C" fn on_signal(_signum: i32) {
    // SAFETY-adjacent note: only the atomic store — no allocation, no
    // locking, no I/O — may happen in signal context.
    TERMINATE.store(true, Ordering::Relaxed);
}

/// Installs the flag-setting handler for SIGTERM and SIGINT.
pub fn install() {
    extern "C" {
        // POSIX `signal(2)`. Declared by hand because the container has no
        // registry access for the libc crate; the ABI (int, function
        // pointer) matches every platform this repo targets.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is async-signal-safe (single relaxed atomic
    // store), and `signal` is the documented POSIX entry point for
    // installing it. Replacing the default handler for these two signals
    // is the binary's explicit purpose.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        install();
        // `request_termination` is the in-process stand-in for a delivered
        // signal; the real handler does the identical store.
        request_termination();
        assert!(termination_requested());
    }
}
