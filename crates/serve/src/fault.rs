//! Deterministic fault injection for the daemon.
//!
//! Robustness claims that are never exercised rot. The daemon therefore
//! carries its chaos monkey with it: a [`FaultPlan`], derived
//! deterministically from `LSML_FAULT_SEED`, that makes workers panic on a
//! schedule, stalls requests past their deadlines, corrupts snapshot
//! writes, and abandons snapshot writes mid-way. The integration tests and
//! the `serve` bench run the daemon *with faults on* and assert it keeps
//! serving — the same seed always injects the same faults, so a CI failure
//! replays locally.
//!
//! The five injected failure classes (mirroring `tests/daemon_faults.rs`):
//!
//! 1. **Panics** inside request execution (every `panic_period`-th request).
//! 2. **Stalls** (`slow_ms` sleeps) that push requests past their deadline.
//! 3. **Malformed frames** — driven by the fuzzer/client, not the plan.
//! 4. **Snapshot corruption** — a bit flip in the written snapshot.
//! 5. **Mid-write kill** — a snapshot write abandoned half-way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The injection schedule. `Default`/[`FaultPlan::none`] injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for [`FaultPlan::none`]).
    pub seed: u64,
    /// Every Nth executed request panics (0 = never).
    pub panic_period: u64,
    /// Every Nth executed request stalls for `slow_ms` first (0 = never).
    pub slow_period: u64,
    /// Stall length in milliseconds.
    pub slow_ms: u64,
    /// Corrupt one bit of every snapshot write.
    pub snapshot_corrupt: bool,
    /// Abandon every snapshot write half-way (no rename).
    pub snapshot_kill_mid_write: bool,
    /// Every Nth sweep circuit panics inside its isolation boundary
    /// (0 = never). Consumed by `lsml-suite`, not the daemon.
    pub circuit_panic_period: u64,
    /// Every Nth sweep circuit stalls until its deadline fires (0 = never).
    pub circuit_stall_period: u64,
    /// Hard-kill the sweep *before* processing this 0-based circuit index
    /// (0 = never) — the crash the resumable checkpoints exist for.
    pub circuit_kill_after: u64,
}

impl FaultPlan {
    /// No faults — the production plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives a plan from a seed. Panics and stalls are always on (that is
    /// the point of a fault seed); periods and the snapshot faults vary with
    /// the seed so different seeds explore different schedules.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000F_A017_5EED);
        // New draws append after the existing ones so a given seed keeps
        // injecting the same daemon schedule it always has.
        FaultPlan {
            seed,
            panic_period: rng.gen_range(3u64..9),
            slow_period: rng.gen_range(4u64..11),
            slow_ms: rng.gen_range(20u64..60),
            snapshot_corrupt: rng.gen::<u64>() % 2 == 0,
            snapshot_kill_mid_write: rng.gen::<u64>() % 2 == 0,
            circuit_panic_period: rng.gen_range(11u64..31),
            circuit_stall_period: rng.gen_range(17u64..47),
            circuit_kill_after: rng.gen_range(40u64..400),
        }
    }

    /// Reads `LSML_FAULT_SEED`; unset, empty or `0` means no faults.
    pub fn from_env() -> FaultPlan {
        match std::env::var("LSML_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            Some(seed) if seed != 0 => FaultPlan::from_seed(seed),
            _ => FaultPlan::none(),
        }
    }

    /// Whether any request-path fault is armed.
    pub fn armed(&self) -> bool {
        self.panic_period != 0 || self.slow_period != 0
    }
}

/// What the injector decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    None,
    /// Panic inside the (caught) execution boundary.
    Panic,
    /// Sleep this many milliseconds before executing.
    Slow(u64),
}

/// Per-server injector: counts executed requests and applies the plan's
/// periods. The counter is a facade atomic so the whole crate stays
/// model-checkable.
pub struct FaultInjector {
    plan: FaultPlan,
    counter: loom::sync::atomic::AtomicU64,
}

impl FaultInjector {
    /// An injector following `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            counter: loom::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fault for the next request. Panics win over stalls when
    /// both periods hit (a panicking request has no use for a stall).
    pub fn on_request(&self) -> FaultAction {
        if !self.plan.armed() {
            return FaultAction::None;
        }
        let n = self
            .counter
            .fetch_add(1, loom::sync::atomic::Ordering::Relaxed)
            + 1;
        if self.plan.panic_period != 0 && n.is_multiple_of(self.plan.panic_period) {
            return FaultAction::Panic;
        }
        if self.plan.slow_period != 0 && n.is_multiple_of(self.plan.slow_period) {
            return FaultAction::Slow(self.plan.slow_ms);
        }
        FaultAction::None
    }
}

#[cfg(all(test, not(lsml_loom)))]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::from_seed(17);
        let b = FaultPlan::from_seed(17);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.armed());
        // A fault seed always arms the per-circuit sweep faults too.
        assert!(a.circuit_panic_period != 0);
        assert!(a.circuit_stall_period != 0);
        assert!(a.circuit_kill_after != 0);
        let c = FaultPlan::from_seed(18);
        // Different seeds give different schedules (period ranges overlap,
        // so compare the whole plan).
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        assert!(!FaultPlan::none().armed());
    }

    #[test]
    fn injector_follows_the_periods() {
        let plan = FaultPlan {
            seed: 1,
            panic_period: 3,
            slow_period: 4,
            slow_ms: 10,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let acts: Vec<FaultAction> = (0..12).map(|_| inj.on_request()).collect();
        // Request 3, 6, 9, 12 panic; 4, 8 stall (12 is claimed by the panic).
        assert_eq!(acts[2], FaultAction::Panic);
        assert_eq!(acts[3], FaultAction::Slow(10));
        assert_eq!(acts[5], FaultAction::Panic);
        assert_eq!(acts[7], FaultAction::Slow(10));
        assert_eq!(acts[11], FaultAction::Panic);
        assert_eq!(acts[0], FaultAction::None);
        let none = FaultInjector::new(FaultPlan::none());
        assert!((0..8).all(|_| none.on_request() == FaultAction::None));
    }
}
