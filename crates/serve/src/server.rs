//! The resident synthesis daemon.
//!
//! Thread architecture (all plain threads; heavy ops fan out over the
//! work-stealing pool from whichever worker runs them):
//!
//! ```text
//! accept thread ──► reader thread per connection ──► RequestQueue (bounded)
//!                      │  (parses frames, admits)        │
//!                      ◄── responses (shared write half) ◄┴─ N worker threads
//! ```
//!
//! Robustness invariants, each pinned by a test:
//!
//! * **Overload sheds, never hangs** — admission happens on the reader
//!   thread via [`RequestQueue::try_push`], which never blocks; a full
//!   queue answers [`Status::Overloaded`] immediately.
//! * **Deadlines cancel cooperatively** — each request carries a
//!   [`CancelToken`]; the engine polls it at pass boundaries, so a
//!   timed-out `SelectBest` still returns the best candidate compiled so
//!   far ([`lsml_core::compile::CompileBatch::select_best`]).
//! * **Panics are isolated** — request execution runs under
//!   `catch_unwind`; a panicking request (injected or real) produces a
//!   [`Status::Panicked`] response and the worker returns to the queue.
//! * **Shutdown drains then snapshots** — [`Server::begin_shutdown`] stops
//!   admission, bounds the drain with a watchdog that fires every
//!   in-flight token, then persists the caches crash-safely
//!   ([`crate::snapshot`]).
//!
//! Every synchronization primitive goes through the `loom::sync` facade
//! (enforced by the source lint), so the daemon builds — and its queue
//! model-checks — under `--cfg lsml_loom`.

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::protocol::{
    self, encode_response, parse_request, read_frame, write_frame, FrameError, Op, RequestHeader,
    Status, DEFAULT_MAX_FRAME,
};
use crate::queue::{Popped, RequestQueue, ShedReason};
use crate::snapshot::{self, Snapshot};
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::Mutex;
use lsml_aig::aiger::{read_aig, write_aig};
use lsml_aig::cancel::CancelToken;
use lsml_core::compile::{CompileBatch, SizeBudget};
use lsml_core::problem::NODE_LIMIT;
use lsml_dtree::boost::{GradientBoost, GradientBoostConfig};
use lsml_pla::Dataset;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Everything the daemon reads from the environment, overridable directly
/// in tests. See `lsml_aig::par` for the knob table.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`LSML_SERVE_ADDR`, default `127.0.0.1:7171`; tests
    /// use port 0 for an OS-assigned port).
    pub addr: String,
    /// Worker threads popping the request queue (`LSML_SERVE_WORKERS`).
    pub workers: usize,
    /// Bounded queue capacity (`LSML_SERVE_QUEUE`).
    pub queue_capacity: usize,
    /// Per-client outstanding-cost budget (`LSML_SERVE_CLIENT_TOKENS`).
    pub client_tokens: u64,
    /// Maximum frame payload (`LSML_SERVE_MAX_FRAME`).
    pub max_frame: usize,
    /// Snapshot file for warm starts (`LSML_SERVE_SNAPSHOT`; `None` = off).
    pub snapshot_path: Option<PathBuf>,
    /// Drain watchdog: after this many milliseconds of graceful drain,
    /// in-flight tokens are cancelled (`LSML_SERVE_DRAIN_MS`).
    pub drain_ms: u64,
    /// Fault-injection plan (`LSML_FAULT_SEED`).
    pub fault: FaultPlan,
}

impl ServerConfig {
    /// The environment-driven production configuration.
    pub fn from_env() -> ServerConfig {
        let num = |k: &str, d: u64| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(d)
        };
        ServerConfig {
            addr: std::env::var("LSML_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7171".into()),
            workers: num("LSML_SERVE_WORKERS", 4).max(1) as usize,
            queue_capacity: num("LSML_SERVE_QUEUE", 64).max(1) as usize,
            client_tokens: num("LSML_SERVE_CLIENT_TOKENS", 16).max(1),
            // Bounded both ways: below 64 bytes no handshake frame fits;
            // above 1 GiB a hostile knob value defeats the cap's purpose.
            max_frame: num("LSML_SERVE_MAX_FRAME", DEFAULT_MAX_FRAME as u64).clamp(64, 1 << 30)
                as usize,
            snapshot_path: std::env::var("LSML_SERVE_SNAPSHOT")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from),
            drain_ms: num("LSML_SERVE_DRAIN_MS", 5000),
            fault: FaultPlan::from_env(),
        }
    }

    /// A small, fast configuration for in-process tests: OS-assigned port,
    /// two workers, no snapshot, no faults.
    pub fn for_tests() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 32,
            client_tokens: 16,
            max_frame: DEFAULT_MAX_FRAME,
            snapshot_path: None,
            drain_ms: 500,
            fault: FaultPlan::none(),
        }
    }
}

/// Monotonic counters the `Stats` op reports. All facade atomics: the
/// counters are written from reader, worker and shutdown threads alike.
pub struct Counters {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests fully executed (any status).
    pub completed: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// Panics caught at the request boundary (injected or real).
    pub panics_caught: AtomicU64,
    /// Requests that hit their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Undecodable frames/requests answered `Malformed`.
    pub malformed: AtomicU64,
    /// Snapshots written on shutdown.
    pub snapshots_saved: AtomicU64,
    /// Cache entries installed from a snapshot at boot.
    pub warm_entries: AtomicU64,
    /// 1 when a configured snapshot failed to load (torn/corrupt/missing).
    pub cold_start: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            snapshots_saved: AtomicU64::new(0),
            warm_entries: AtomicU64::new(0),
            cold_start: AtomicU64::new(0),
        }
    }

    /// Hand-rolled JSON (no serde in the container).
    pub fn json(&self, queue_depth: usize) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"accepted\":{},\"completed\":{},\"shed\":{},\"panics_caught\":{},",
                "\"deadline_exceeded\":{},\"malformed\":{},\"snapshots_saved\":{},",
                "\"warm_entries\":{},\"cold_start\":{},\"queue_depth\":{}}}"
            ),
            g(&self.accepted),
            g(&self.completed),
            g(&self.shed),
            g(&self.panics_caught),
            g(&self.deadline_exceeded),
            g(&self.malformed),
            g(&self.snapshots_saved),
            g(&self.warm_entries),
            g(&self.cold_start),
            queue_depth,
        )
    }
}

/// Per-connection synthesis state, guarded by a facade mutex so pipelined
/// requests of one session serialize.
#[derive(Default)]
struct Session {
    train: Option<Dataset>,
    valid: Option<Dataset>,
    batch: Option<CompileBatch>,
    node_limit: usize,
    seed: u64,
}

/// The response write half of a connection, shared by every job the
/// connection admitted (clients may pipeline, responses interleave by id).
struct OutStream {
    stream: Mutex<TcpStream>,
}

impl OutStream {
    /// Best-effort send: a vanished client is the client's problem, never
    /// the worker's.
    fn send(&self, payload: &[u8]) {
        let mut s = self.stream.lock().expect("out lock");
        let _ = write_frame(&mut *s, payload);
    }
}

/// One admitted request.
struct Job {
    header: RequestHeader,
    body: Vec<u8>,
    session: Arc<Mutex<Session>>,
    out: Arc<OutStream>,
    token: CancelToken,
    serial: u64,
}

struct Shared {
    cfg: ServerConfig,
    queue: RequestQueue<Job>,
    counters: Counters,
    injector: FaultInjector,
    /// Accept thread stops admitting new connections.
    stop_accepting: AtomicBool,
    /// Set once by whichever path initiates shutdown (op, signal, test).
    shutting_down: AtomicBool,
    /// Drain + snapshot finished; workers released.
    stopped: AtomicBool,
    /// In-flight cancellation tokens, for the drain watchdog.
    active: Mutex<Vec<(u64, CancelToken)>>,
    serial: AtomicU64,
    next_client: AtomicU64,
}

impl Shared {
    fn register(&self, serial: u64, token: CancelToken) {
        self.active
            .lock()
            .expect("active lock")
            .push((serial, token));
    }

    fn unregister(&self, serial: u64) {
        let mut a = self.active.lock().expect("active lock");
        a.retain(|(s, _)| *s != serial);
    }

    /// Idempotent entry to the graceful sequence; the heavy lifting runs on
    /// a dedicated thread so callers (reader threads, signal pollers) never
    /// block on the drain.
    fn begin_shutdown(self: &Arc<Shared>) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop_accepting.store(true, Ordering::SeqCst);
        let shared = Arc::clone(self);
        thread::spawn(move || shared.run_shutdown());
    }

    fn run_shutdown(self: Arc<Shared>) {
        // Watchdog: the queue's drain is unbounded by design (no timed
        // waits through the facade), so boundedness comes from firing every
        // in-flight token after `drain_ms` — cooperative cancellation then
        // shrinks the remaining work to "finish the current pass".
        let watchdog = {
            let shared = Arc::clone(&self);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(shared.cfg.drain_ms));
                for (_, t) in shared.active.lock().expect("active lock").iter() {
                    t.cancel();
                }
            })
        };
        self.queue.drain();
        if let Some(path) = &self.cfg.snapshot_path {
            let snap = Snapshot::capture();
            if snapshot::save(path, &snap, &self.cfg.fault).is_ok() {
                self.counters
                    .snapshots_saved
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.queue.shutdown();
        self.stopped.store(true, Ordering::SeqCst);
        // The watchdog holds only an Arc and a sleep; reap it when the
        // drain outlived it, leave it to finish otherwise.
        if watchdog.is_finished() {
            let _ = watchdog.join();
        }
    }
}

/// A running daemon. Dropping without [`Server::shutdown_and_join`] begins
/// (but does not wait for) a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Boots the daemon: warm-starts the caches from the configured
    /// snapshot (cold-starting on *any* load failure), binds the listener,
    /// and spawns the accept + worker threads.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let counters = Counters::new();
        if let Some(path) = &cfg.snapshot_path {
            match snapshot::load(path) {
                Some(snap) => {
                    counters
                        .warm_entries
                        .fetch_add(snap.len() as u64, Ordering::Relaxed);
                    snap.install();
                }
                None => {
                    counters.cold_start.store(1, Ordering::Relaxed);
                }
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: RequestQueue::new(cfg.queue_capacity, cfg.client_tokens),
            counters,
            injector: FaultInjector::new(cfg.fault.clone()),
            stop_accepting: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            active: Mutex::new(Vec::new()),
            serial: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
            local_addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live counters.
    pub fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// Currently queued (unstarted) requests.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Starts the graceful sequence without waiting for it.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether the graceful sequence has fully finished.
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }

    /// Graceful stop: drain, snapshot, release and join every thread.
    pub fn shutdown_and_join(mut self) {
        self.shared.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Responses are small framed writes; leaving Nagle on costs
                // ~40ms per lockstep round-trip to delayed ACKs.
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                // Reader threads are detached: they exit on EOF/error, and a
                // draining queue sheds everything they admit.
                thread::spawn(move || reader_loop(&shared, stream, client));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, client: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(OutStream {
        stream: Mutex::new(write_half),
    });
    let session = Arc::new(Mutex::new(Session::default()));
    loop {
        let payload = match read_frame(&mut stream, shared.cfg.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF at a frame boundary: the client hung up.
            Ok(None) => return,
            Err(FrameError::Oversized(n)) => {
                // The oversized payload was never read, so the stream
                // position is unrecoverable mid-conversation: answer and
                // close.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                out.send(&encode_response(
                    0,
                    Status::Malformed,
                    format!("frame of {n} bytes exceeds limit").as_bytes(),
                ));
                return;
            }
            // Torn frame or dead peer; nothing sensible to answer.
            Err(FrameError::Io(_)) => return,
        };
        let (header, body) = match parse_request(&payload) {
            Ok(x) => x,
            Err(e) => {
                // Framing is still in sync — answer Malformed and keep the
                // connection.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                out.send(&encode_response(0, Status::Malformed, e.as_bytes()));
                continue;
            }
        };
        if header.op == Op::Shutdown {
            out.send(&encode_response(header.req_id, Status::Ok, b""));
            shared.begin_shutdown();
            continue;
        }
        let token = if header.deadline_ms > 0 {
            CancelToken::with_budget(Duration::from_millis(header.deadline_ms as u64))
        } else {
            CancelToken::new()
        };
        let job = Job {
            header,
            body: body.to_vec(),
            session: Arc::clone(&session),
            out: Arc::clone(&out),
            token,
            serial: shared.serial.fetch_add(1, Ordering::Relaxed),
        };
        match shared.queue.try_push(client, header.op.cost(), job) {
            Ok(()) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(reason) => {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                let (status, msg) = match reason {
                    ShedReason::QueueFull => (Status::Overloaded, "queue full"),
                    ShedReason::ClientBudget => (Status::Overloaded, "client over budget"),
                    ShedReason::Draining => (Status::ShuttingDown, "draining"),
                };
                out.send(&encode_response(header.req_id, status, msg.as_bytes()));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_blocking() {
            Popped::Shutdown => return,
            Popped::Job { client, cost, item } => {
                shared.register(item.serial, item.token.clone());
                let response = execute(shared, &item);
                item.out.send(&response);
                shared.unregister(item.serial);
                // Completion is unconditional — a panicked request must
                // still refund its tokens or drain would hang.
                shared.queue.complete(client, cost);
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs one request to a response payload. This is the panic-isolation
/// boundary: everything inside (including the engine's pool fan-outs, whose
/// panics propagate here via the pool's join) is caught and answered as
/// [`Status::Panicked`].
fn execute(shared: &Arc<Shared>, job: &Job) -> Vec<u8> {
    let h = job.header;
    match shared.injector.on_request() {
        FaultAction::Slow(ms) => thread::sleep(Duration::from_millis(ms)),
        FaultAction::Panic => {
            // Panic *inside* the catch boundary below, so injected panics
            // exercise the same isolation path as real ones.
            let seed = shared.injector.plan().seed;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                panic!("injected fault (LSML_FAULT_SEED={seed})")
            }));
            shared
                .counters
                .panics_caught
                .fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(caught.expect_err("the closure always panics"));
            return encode_response(h.req_id, Status::Panicked, msg.as_bytes());
        }
        FaultAction::None => {}
    }
    // A deadline that fired while the request sat in the queue (or during an
    // injected stall): answer without doing the work.
    if job.token.is_cancelled() {
        shared
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        return encode_response(
            h.req_id,
            Status::DeadlineExceeded,
            b"deadline fired before execution",
        );
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        lsml_aig::cancel::with_token(&job.token, || dispatch(shared, job))
    }));
    match result {
        Ok(Ok((status, body))) => {
            if status == Status::DeadlineExceeded {
                shared
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
            encode_response(h.req_id, status, &body)
        }
        Ok(Err((status, msg))) => {
            if status == Status::Malformed {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            }
            encode_response(h.req_id, status, msg.as_bytes())
        }
        Err(payload) => {
            shared
                .counters
                .panics_caught
                .fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(payload);
            encode_response(h.req_id, Status::Panicked, msg.as_bytes())
        }
    }
}

type OpResult = Result<(Status, Vec<u8>), (Status, String)>;

fn malformed<T>(msg: impl Into<String>) -> Result<T, (Status, String)> {
    Err((Status::Malformed, msg.into()))
}

fn dispatch(shared: &Arc<Shared>, job: &Job) -> OpResult {
    let body = &job.body[..];
    match job.header.op {
        Op::Ping => Ok((Status::Ok, Vec::new())),
        Op::Stats => {
            let json = shared.counters.json(shared.queue.depth());
            Ok((Status::Ok, json.into_bytes()))
        }
        Op::Shutdown => {
            // Normally intercepted on the reader thread; honor it here too
            // in case a future path queues it.
            shared.begin_shutdown();
            Ok((Status::Ok, Vec::new()))
        }
        Op::LoadDataset => {
            let (train, valid, seed, node_limit) =
                protocol::decode_datasets(body).map_err(|e| (Status::Malformed, e))?;
            let node_limit = if node_limit == 0 {
                NODE_LIMIT
            } else {
                node_limit as usize
            };
            let mut budget = SizeBudget::exact(node_limit);
            budget.seed = seed;
            let mut s = job.session.lock().expect("session lock");
            s.batch = Some(
                CompileBatch::new(train.num_inputs(), &budget)
                    .with_sweep_columns(train.bit_columns()),
            );
            s.node_limit = node_limit;
            s.seed = seed;
            s.train = Some(train);
            s.valid = Some(valid);
            Ok((Status::Ok, Vec::new()))
        }
        Op::AddCandidate => {
            let aig = match read_aig(body) {
                Ok(a) => a,
                Err(e) => return malformed(format!("candidate AIGER: {e:?}")),
            };
            if aig.outputs().len() != 1 {
                return malformed(format!(
                    "candidates need exactly 1 output, got {}",
                    aig.outputs().len()
                ));
            }
            let mut s = job.session.lock().expect("session lock");
            let Some(batch) = s.batch.as_mut() else {
                return Err((Status::Error, "no dataset loaded".into()));
            };
            // `CompileBatch::add_aig` panics on arity mismatch; the protocol
            // boundary validates first so a client mistake is a Malformed
            // response, not a caught panic.
            if aig.num_inputs() != batch.shared().num_inputs() {
                return malformed(format!(
                    "candidate has {} inputs, session has {}",
                    aig.num_inputs(),
                    batch.shared().num_inputs()
                ));
            }
            let id = batch.add_aig(&aig, "served");
            Ok((Status::Ok, (id as u32).to_le_bytes().to_vec()))
        }
        Op::Accuracies => {
            let s = job.session.lock().expect("session lock");
            let (Some(batch), Some(valid)) = (s.batch.as_ref(), s.valid.as_ref()) else {
                return Err((Status::Error, "no dataset loaded".into()));
            };
            let accs = batch.accuracies(valid);
            let mut out = Vec::with_capacity(4 + 8 * accs.len());
            out.extend_from_slice(&(accs.len() as u32).to_le_bytes());
            for a in accs {
                out.extend_from_slice(&a.to_le_bytes());
            }
            Ok((Status::Ok, out))
        }
        Op::SelectBest => {
            let mut w = protocol::Wire::new(body);
            let node_limit = w.u32().map_err(|e| (Status::Malformed, e))?;
            let mut s = job.session.lock().expect("session lock");
            let session_limit = s.node_limit;
            let valid = s.valid.clone();
            let (Some(batch), Some(valid)) = (s.batch.as_mut(), valid) else {
                return Err((Status::Error, "no dataset loaded".into()));
            };
            let limit = if node_limit == 0 {
                session_limit
            } else {
                node_limit as usize
            };
            let circuit = batch.select_best(&valid, limit);
            // A fired deadline means partial-best-so-far: flag it so the
            // client knows a rerun without a deadline might do better.
            let partial = job.token.is_cancelled();
            let mut out = Vec::new();
            out.push(partial as u8);
            out.extend_from_slice(&(circuit.and_gates() as u32).to_le_bytes());
            out.extend_from_slice(&circuit.accuracy(&valid).to_le_bytes());
            let mut aig_bytes = Vec::new();
            write_aig(&circuit.aig, &mut aig_bytes).expect("Vec write cannot fail");
            out.extend_from_slice(&(aig_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&aig_bytes);
            Ok((Status::Ok, out))
        }
        Op::Learn => {
            let mut w = protocol::Wire::new(body);
            let rounds = w.u32().map_err(|e| (Status::Malformed, e))?;
            if rounds == 0 || rounds > 512 {
                return malformed(format!("rounds {rounds} outside 1..=512"));
            }
            let mut s = job.session.lock().expect("session lock");
            let Some(train) = s.train.clone() else {
                return Err((Status::Error, "no dataset loaded".into()));
            };
            let cfg = GradientBoostConfig {
                n_rounds: rounds as usize,
                ..GradientBoostConfig::default()
            };
            let gb = GradientBoost::train(&train, &cfg);
            let batch = s.batch.as_mut().expect("batch exists whenever train does");
            let mut first = None;
            let mut count = 0u32;
            for t in 1..=gb.n_trees() {
                let lit = gb.emit_into(batch.shared(), t);
                let id = batch.add_cone(lit, format!("gb-r{t}"));
                first.get_or_insert(id);
                count += 1;
            }
            let mut out = Vec::with_capacity(8);
            out.extend_from_slice(&(first.unwrap_or(0) as u32).to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            Ok((Status::Ok, out))
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request panicked".into()
    }
}
