//! The wire protocol: length-prefixed frames over TCP, hand-rolled.
//!
//! The build environment has no registry access, so there is no serde, no
//! tonic, no tokio — the daemon speaks a deliberately small binary protocol
//! that a fuzzer can cover exhaustively:
//!
//! ```text
//! frame    := u32 LE payload length | payload
//! request  := u32 LE request id | u32 LE deadline_ms (0 = none) | u8 opcode | body
//! response := u32 LE request id | u8 status | body
//! ```
//!
//! Every decode path returns `Result`, never panics: a malformed frame is a
//! client bug the server answers with [`Status::Malformed`], not a unit of
//! work that can take a worker down. Frames above the configured limit are
//! rejected before the payload is read so a hostile length prefix cannot
//! balloon memory.

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (overridable via
/// `LSML_SERVE_MAX_FRAME`); datasets are the largest legitimate payload and
/// sit far below this.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Request opcodes. The numeric values are the wire format — append only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness / latency probe. Empty body.
    Ping = 0,
    /// Install the session's train/valid datasets (body: [`encode_datasets`]).
    LoadDataset = 1,
    /// Add one candidate circuit (body: binary AIGER, single output).
    AddCandidate = 2,
    /// Validation accuracy of every candidate from one shared simulation.
    Accuracies = 3,
    /// Pick and compile the best candidate (body: u32 node_limit, 0 = session
    /// default). Honors the request deadline with partial-best-so-far.
    SelectBest = 4,
    /// Train gradient boosting on the session's train set and register the
    /// round prefixes as candidates (body: u32 rounds).
    Learn = 5,
    /// Server counters as a JSON object. Empty body.
    Stats = 6,
    /// Graceful shutdown: drain, snapshot, stop. Empty body.
    Shutdown = 7,
}

impl Op {
    /// Decodes an opcode byte; unknown values are a malformed request.
    pub fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0 => Op::Ping,
            1 => Op::LoadDataset,
            2 => Op::AddCandidate,
            3 => Op::Accuracies,
            4 => Op::SelectBest,
            5 => Op::Learn,
            6 => Op::Stats,
            7 => Op::Shutdown,
            _ => return None,
        })
    }

    /// Admission cost in client tokens — heavier ops spend more of a
    /// client's budget so one batch-compiling client cannot starve pingers.
    pub fn cost(self) -> u64 {
        match self {
            Op::Ping | Op::Stats | Op::Shutdown => 1,
            Op::LoadDataset | Op::AddCandidate | Op::Accuracies => 2,
            Op::SelectBest | Op::Learn => 8,
        }
    }
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; body is op-specific.
    Ok = 0,
    /// Load-shed at admission (queue full or client over budget). Body:
    /// UTF-8 reason. Retry later.
    Overloaded = 1,
    /// The request's deadline fired. For `SelectBest` the body may still
    /// carry a partial result (flagged in the Ok path instead when one
    /// exists); otherwise body is a UTF-8 message.
    DeadlineExceeded = 2,
    /// The request could not be decoded or violated a protocol invariant.
    Malformed = 3,
    /// The request panicked inside the engine; the worker survived. Body:
    /// UTF-8 panic message.
    Panicked = 4,
    /// A non-panic server-side failure (e.g. op needs a dataset that was
    /// never loaded). Body: UTF-8 message.
    Error = 5,
    /// The server is draining and admits no new work.
    ShuttingDown = 6,
}

impl Status {
    /// Decodes a status byte (client side).
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::DeadlineExceeded,
            3 => Status::Malformed,
            4 => Status::Panicked,
            5 => Status::Error,
            6 => Status::ShuttingDown,
            _ => return None,
        })
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Transport error (includes mid-frame EOF: the peer died between the
    /// length prefix and the payload).
    Io(io::Error),
    /// The declared length exceeds the configured cap; the stream position
    /// is still sound (nothing past the prefix was consumed) but the only
    /// safe continuation is to answer with an error and close.
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

/// Reads one frame. `Ok(None)` is a clean EOF **at a frame boundary** (the
/// peer hung up between requests); EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len = [0u8; 4];
    // Distinguish boundary EOF from mid-prefix EOF by reading the first byte
    // separately.
    match r.read(&mut len[..1]).map_err(FrameError::Io)? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len[1..]).map_err(FrameError::Io)?,
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > max_frame {
        return Err(FrameError::Oversized(n));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A parsed request header; the body follows in the frame.
#[derive(Clone, Copy, Debug)]
pub struct RequestHeader {
    /// Client-chosen id echoed in the response (clients may pipeline).
    pub req_id: u32,
    /// Deadline budget in milliseconds; 0 means none.
    pub deadline_ms: u32,
    /// What to do.
    pub op: Op,
}

/// Splits a request frame into header and body. Errors are protocol
/// violations the server answers with [`Status::Malformed`].
pub fn parse_request(payload: &[u8]) -> Result<(RequestHeader, &[u8]), String> {
    if payload.len() < 9 {
        return Err(format!(
            "request header needs 9 bytes, got {}",
            payload.len()
        ));
    }
    let req_id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let deadline_ms = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
    let op = Op::from_u8(payload[8]).ok_or_else(|| format!("unknown opcode {}", payload[8]))?;
    Ok((
        RequestHeader {
            req_id,
            deadline_ms,
            op,
        },
        &payload[9..],
    ))
}

/// Builds a request frame payload.
pub fn encode_request(req_id: u32, deadline_ms: u32, op: Op, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body.len());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&deadline_ms.to_le_bytes());
    out.push(op as u8);
    out.extend_from_slice(body);
    out
}

/// Builds a response frame payload.
pub fn encode_response(req_id: u32, status: Status, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(status as u8);
    out.extend_from_slice(body);
    out
}

/// Splits a response frame into (request id, status, body).
pub fn parse_response(payload: &[u8]) -> Result<(u32, Status, &[u8]), String> {
    if payload.len() < 5 {
        return Err(format!(
            "response header needs 5 bytes, got {}",
            payload.len()
        ));
    }
    let req_id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let status =
        Status::from_u8(payload[4]).ok_or_else(|| format!("unknown status {}", payload[4]))?;
    Ok((req_id, status, &payload[5..]))
}

/// A bounds-checked cursor over a byte slice. Every accessor returns
/// `Result` so truncated bodies surface as [`Status::Malformed`], never as a
/// slice-index panic — the protocol fuzzer leans on this.
pub struct Wire<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Wire<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Wire<'a> {
        Wire { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: wanted {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    /// Takes a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Takes a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Takes a little-endian u128.
    pub fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(
            self.bytes(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Takes a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Packs train + valid datasets for [`Op::LoadDataset`]:
/// `u32 num_inputs | u64 seed | u32 node_limit | u32 n_train | u32 n_valid |`
/// then per example `ceil(num_inputs/8)` packed input bytes + 1 label byte.
pub fn encode_datasets(
    train: &lsml_pla::Dataset,
    valid: &lsml_pla::Dataset,
    seed: u64,
    node_limit: u32,
) -> Vec<u8> {
    assert_eq!(train.num_inputs(), valid.num_inputs(), "arity mismatch");
    let n = train.num_inputs();
    let stride = n.div_ceil(8);
    let mut out = Vec::with_capacity(20 + (train.len() + valid.len()) * (stride + 1));
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&node_limit.to_le_bytes());
    out.extend_from_slice(&(train.len() as u32).to_le_bytes());
    out.extend_from_slice(&(valid.len() as u32).to_le_bytes());
    for ds in [train, valid] {
        for (p, label) in ds.iter() {
            let mut packed = vec![0u8; stride];
            for i in 0..n {
                if p.get(i) {
                    packed[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&packed);
            out.push(label as u8);
        }
    }
    out
}

/// Decodes an [`Op::LoadDataset`] body. Inverse of [`encode_datasets`].
pub fn decode_datasets(
    body: &[u8],
) -> Result<(lsml_pla::Dataset, lsml_pla::Dataset, u64, u32), String> {
    let mut w = Wire::new(body);
    let n = w.u32()? as usize;
    if n == 0 || n > 4096 {
        return Err(format!("unreasonable input count {n}"));
    }
    let seed = w.u64()?;
    let node_limit = w.u32()?;
    let n_train = w.u32()? as usize;
    let n_valid = w.u32()? as usize;
    let stride = n.div_ceil(8);
    // Reject before allocating: the remaining bytes must match exactly.
    let need = (n_train + n_valid) * (stride + 1);
    if w.remaining() != need {
        return Err(format!(
            "dataset body: expected {need} bytes of examples, have {}",
            w.remaining()
        ));
    }
    let mut read_ds = |count: usize| -> Result<lsml_pla::Dataset, String> {
        let mut ds = lsml_pla::Dataset::new(n);
        for _ in 0..count {
            let packed = w.bytes(stride)?;
            let label = w.u8()?;
            let bits: Vec<bool> = (0..n)
                .map(|i| (packed[i / 8] >> (i % 8)) & 1 == 1)
                .collect();
            ds.push(lsml_pla::Pattern::from_bools(&bits), label != 0);
        }
        Ok(ds)
    };
    let train = read_ds(n_train)?;
    let valid = read_ds(n_valid)?;
    Ok((train, valid, seed, node_limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsml_pla::{Dataset, Pattern};

    #[test]
    fn frame_round_trip_and_boundary_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        match read_frame(&mut &buf[..], 10) {
            Err(FrameError::Oversized(100)) => {}
            other => panic!("wanted Oversized, got {other:?}"),
        }
        // A frame cut off mid-payload is an Io error, not a hang or a panic.
        let torn = &buf[..20];
        assert!(matches!(
            read_frame(&mut &torn[..], 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn request_response_round_trip() {
        let p = encode_request(7, 250, Op::SelectBest, &[1, 2, 3]);
        let (h, body) = parse_request(&p).unwrap();
        assert_eq!(h.req_id, 7);
        assert_eq!(h.deadline_ms, 250);
        assert_eq!(h.op, Op::SelectBest);
        assert_eq!(body, &[1, 2, 3]);

        let r = encode_response(7, Status::Ok, b"done");
        let (id, st, body) = parse_response(&r).unwrap();
        assert_eq!((id, st), (7, Status::Ok));
        assert_eq!(body, b"done");
    }

    #[test]
    fn short_and_unknown_requests_are_malformed() {
        assert!(parse_request(&[0u8; 8]).is_err());
        assert!(parse_request(&encode_request(1, 0, Op::Ping, &[])[..8]).is_err());
        let mut bad = encode_request(1, 0, Op::Ping, &[]);
        bad[8] = 200; // unknown opcode
        assert!(parse_request(&bad).is_err());
        assert!(parse_response(&[0u8; 4]).is_err());
    }

    #[test]
    fn wire_cursor_never_reads_past_end() {
        let mut w = Wire::new(&[1, 2, 3]);
        assert_eq!(w.u8().unwrap(), 1);
        assert!(w.u32().is_err());
        assert_eq!(w.remaining(), 2, "failed read consumes nothing");
    }

    #[test]
    fn datasets_round_trip() {
        let mut train = Dataset::new(10);
        let mut valid = Dataset::new(10);
        for m in 0..64u64 {
            train.push(Pattern::from_index(m * 3 % 1024, 10), m % 3 == 0);
            valid.push(Pattern::from_index(m * 7 % 1024, 10), m % 2 == 0);
        }
        let body = encode_datasets(&train, &valid, 42, 5000);
        let (t2, v2, seed, limit) = decode_datasets(&body).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(limit, 5000);
        assert_eq!(t2.len(), train.len());
        assert_eq!(v2.len(), valid.len());
        for i in 0..train.len() {
            assert_eq!(t2.pattern(i), train.pattern(i));
            assert_eq!(t2.output(i), train.output(i));
        }
        for i in 0..valid.len() {
            assert_eq!(v2.pattern(i), valid.pattern(i));
            assert_eq!(v2.output(i), valid.output(i));
        }
        // Truncating the examples region is rejected, not mis-read.
        assert!(decode_datasets(&body[..body.len() - 1]).is_err());
    }
}
