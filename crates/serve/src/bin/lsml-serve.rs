//! The `lsml-serve` daemon binary.
//!
//! Boots the server from the `LSML_SERVE_*` environment (see the knob table
//! in `lsml_aig::par`), then sits in a poll loop until either a SIGTERM /
//! SIGINT arrives or a client sends the Shutdown op — both run the same
//! graceful sequence: stop admitting, drain (bounded by the watchdog),
//! snapshot the caches, stop.

use lsml_serve::server::{Server, ServerConfig};
use std::time::Duration;

fn main() {
    let cfg = ServerConfig::from_env();
    #[cfg(unix)]
    lsml_serve::signal::install();
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lsml-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    eprintln!(
        "lsml-serve: listening on {} ({} workers, queue {}, faults {})",
        server.local_addr(),
        cfg.workers,
        cfg.queue_capacity,
        if cfg.fault.armed() {
            format!("seed {}", cfg.fault.seed)
        } else {
            "off".into()
        }
    );
    loop {
        #[cfg(unix)]
        if lsml_serve::signal::termination_requested() {
            eprintln!("lsml-serve: signal received, draining");
            server.begin_shutdown();
        }
        if server.is_stopped() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.counters().json(0);
    server.shutdown_and_join();
    eprintln!("lsml-serve: stopped; {stats}");
}
