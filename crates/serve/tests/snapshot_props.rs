//! Property tests for the snapshot wire format: encode/decode is lossless,
//! and *no* corrupted byte stream ever decodes (or panics) — it cold-starts.
//!
//! These drive the pure [`Snapshot::encode`]/[`Snapshot::decode`] pair, so
//! they are free of the global caches and can fuzz aggressively.

use lsml_aig::{Aig, Lit};
use lsml_serve::snapshot::{Snapshot, SnapshotCompileEntry};
use proptest::prelude::*;

const NUM_INPUTS: usize = 5;

/// Folds a generated op list into a small AIG (same scheme as the cache
/// property tests).
fn build(ops: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new(NUM_INPUTS);
    let mut pool: Vec<Lit> = g.inputs();
    for &(kind, a, b) in ops {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let lit = match kind % 4 {
            0 => g.and(x, y),
            1 => g.and(x, !y),
            2 => g.xor(x, y),
            _ => !g.and(!x, !y),
        };
        pool.push(lit);
    }
    g.add_output(*pool.last().unwrap());
    g
}

/// The generated raw material for one snapshot: fixpoint keys (u128 widened
/// from u64 pairs — the vendored proptest has no u128 `any`) and compile
/// entries.
type FixKeys = Vec<(u64, u64, u64)>;
type Entries = Vec<(Vec<(u8, u16, u16)>, u64, u64, bool)>;

fn snapshot_from(fix: &FixKeys, entries: &Entries) -> Snapshot {
    Snapshot {
        fixpoint_keys: fix
            .iter()
            .map(|&(hi, lo, p)| (((hi as u128) << 64) | lo as u128, p))
            .collect(),
        compile_entries: entries
            .iter()
            .map(|(ops, g, b, approx)| SnapshotCompileEntry {
                graph_fingerprint: ((*g as u128) << 64) | *b as u128,
                budget_fingerprint: *b,
                aig: build(ops),
                approximated: *approx,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity (keys, flags, and graphs — graphs
    /// compared by structural fingerprint, the identity the cache keys on).
    #[test]
    fn encode_decode_round_trips(
        fix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..20),
        entries in proptest::collection::vec(
            (
                proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..12),
                any::<u64>(),
                any::<u64>(),
                any::<bool>(),
            ),
            0..6,
        ),
    ) {
        let snap = snapshot_from(&fix, &entries);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &snap);
        // Determinism: identical contents encode to identical bytes.
        prop_assert_eq!(snapshot_from(&fix, &entries).encode(), bytes);
    }

    /// Any truncation — torn write, partial disk — is rejected cleanly.
    #[test]
    fn truncation_is_rejected(
        fix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
    ) {
        let snap = snapshot_from(&fix, &Entries::new());
        let bytes = snap.encode();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(
            Snapshot::decode(&bytes[..cut]).is_err(),
            "truncated snapshot (cut {} of {}) must not decode",
            cut, bytes.len()
        );
    }

    /// Any single flipped bit — magic, version, length, payload or
    /// checksum — is rejected cleanly (the checksum guards the payload, the
    /// header checks guard the rest).
    #[test]
    fn bit_flips_are_rejected(
        fix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..12),
        entries in proptest::collection::vec(
            (
                proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..8),
                any::<u64>(),
                any::<u64>(),
                any::<bool>(),
            ),
            0..3,
        ),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let snap = snapshot_from(&fix, &entries);
        let mut bytes = snap.encode();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "bit {} of byte {} flipped and the snapshot still decoded",
            bit, pos
        );
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Snapshot::decode(&bytes);
    }
}
